"""Tests for the evaluation harness and experiment entry points."""

import json

import pytest

from repro.eval.harness import ExperimentResult, format_table, save_results
from repro.eval import experiments as E


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty)"

    def test_alignment_and_union_of_keys(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert len(lines) == 4

    def test_large_numbers_have_separators(self):
        text = format_table([{"n": 1_234_567}])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.12345, "y": 3.14159}])
        assert "0.1234" in text or "0.1235" in text
        assert "3.14" in text


class TestExperimentResult:
    def test_render_contains_parts(self):
        r = ExperimentResult(
            "t", "Title", rows=[{"a": 1}], paper_reference={"x": 2}, notes="n"
        )
        text = r.render()
        assert "Title" in text and "paper reference" in text and "note: n" in text

    def test_save(self, tmp_path):
        r = ExperimentResult("t", "Title", rows=[{"a": 1}])
        path = tmp_path / "out.json"
        save_results([r], path)
        data = json.loads(path.read_text())
        assert data[0]["experiment_id"] == "t"
        assert data[0]["rows"] == [{"a": 1}]


@pytest.mark.slow
class TestExperimentsSmoke:
    """Each experiment runs end-to-end on a two-dataset suite and keeps the
    paper's qualitative shape.  (The full-suite runs live in benchmarks/.)"""

    SUITE = ("LJGrp", "Frndstr")

    def test_table1(self):
        r = E.table1(datasets=self.SUITE)
        assert r.rows[-1]["dataset"] == "Average"
        assert r.rows[0]["hub edges %"] > 40

    def test_table7(self):
        r = E.table7(datasets=self.SUITE)
        assert all("growth %" in row for row in r.rows)

    def test_table8(self):
        r = E.table8(datasets=self.SUITE)
        assert all(0 <= row["H2H density %"] <= 100 for row in r.rows)

    def test_table9(self):
        r = E.table9(datasets=("Twtr10",), threads=16)
        row = r.rows[0]
        assert row["squared tiling idle %"] < row["edge balanced idle %"]

    def test_fig4(self):
        r = E.fig4(datasets=("LJGrp",))
        assert r.rows[0]["LLC reduction x"] > 1.0

    def test_fig5(self):
        r = E.fig5(datasets=("LJGrp",))
        assert r.rows[0]["instruction reduction x"] > 1.0

    def test_fig6(self):
        r = E.fig6(datasets=("LJGrp",))
        row = r.rows[0]
        total = row["preprocess %"] + row["hhh+hhn %"] + row["hnn %"] + row["nnn %"]
        assert total == pytest.approx(100.0, abs=0.5)

    def test_fig7(self):
        r = E.fig7(datasets=self.SUITE)
        assert r.rows[-1]["dataset"] == "Average"

    def test_fig8(self):
        r = E.fig8(datasets=self.SUITE)
        per = {row["dataset"]: row["HE edges %"] for row in r.rows[:-1]}
        assert per["Frndstr"] < per["LJGrp"]

    def test_fig9(self):
        r = E.fig9(dataset="LJGrp")
        shares = [row["cumulative access %"] for row in r.rows]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(100.0, abs=0.01)

    def test_modeled_caching(self):
        # memoised artefacts: same object returned
        assert E._lotus("LJGrp") is E._lotus("LJGrp")
        assert E._replay("LJGrp", "SkyLakeX", "lotus") is E._replay(
            "LJGrp", "SkyLakeX", "lotus"
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            E._opcounts("LJGrp", "bogus")
