"""Tests for the intersection kernels — all four families must agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi
from repro.tc.intersect import (
    INTERSECT_KERNELS,
    batch_intersect_counts,
    batch_pairwise_counts,
    intersect_count_binary,
    intersect_count_bitmap,
    intersect_count_hash,
    intersect_count_merge,
    merge_join_cost,
    merge_join_touched,
)

sorted_arrays = st.lists(st.integers(0, 60), max_size=40).map(
    lambda xs: np.array(sorted(set(xs)), dtype=np.int64)
)


class TestScalarKernels:
    CASES = [
        ([], [], 0),
        ([1, 2, 3], [], 0),
        ([1, 3, 5], [2, 4, 6], 0),
        ([1, 2, 3], [1, 2, 3], 3),
        ([1, 2, 3, 9], [2, 9], 2),
        ([5], [5], 1),
    ]

    @pytest.mark.parametrize("name,kernel", sorted(INTERSECT_KERNELS.items()))
    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_known_cases(self, name, kernel, a, b, expected):
        a = np.array(a, dtype=np.int64)
        b = np.array(b, dtype=np.int64)
        assert kernel(a, b) == expected, name

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_kernels_agree(self, a, b):
        expected = len(set(a.tolist()) & set(b.tolist()))
        for name, kernel in INTERSECT_KERNELS.items():
            assert kernel(a, b) == expected, name

    def test_galloping_extreme_ratio(self):
        big = np.arange(0, 10_000, 3, dtype=np.int64)
        small = np.array([0, 2999, 2001, 9999], dtype=np.int64)
        small.sort()
        from repro.tc.intersect import intersect_count_galloping

        expected = len(set(small.tolist()) & set(big.tolist()))
        assert intersect_count_galloping(small, big) == expected

    def test_adaptive_dispatches_both_ways(self):
        from repro.tc.intersect import intersect_count_adaptive

        a = np.arange(4, dtype=np.int64)
        big = np.arange(0, 1000, 2, dtype=np.int64)
        assert intersect_count_adaptive(a, big) == 2  # binary path
        assert intersect_count_adaptive(a, a) == 4    # merge path

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert intersect_count_binary(a, b) == intersect_count_binary(b, a)


class TestBitmapUniverse:
    """The explicit-``universe`` contract of the bitmap kernel.

    Regression for the crash found by the differential fuzzer: with a
    caller-supplied universe smaller than ``b.max()+1`` the kernel raised
    ``IndexError`` instead of treating out-of-universe probes as misses.
    """

    def test_b_outside_universe_contributes_zero(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([3, 5, 70, 99], dtype=np.int64)
        # universe holds every element of a but not of b -> no crash,
        # out-of-universe b elements are plain misses
        assert intersect_count_bitmap(a, b, universe=6) == 2

    def test_all_b_outside_universe(self):
        a = np.array([0, 1], dtype=np.int64)
        b = np.array([10, 11], dtype=np.int64)
        assert intersect_count_bitmap(a, b, universe=2) == 0

    def test_a_outside_universe_raises(self):
        a = np.array([1, 9], dtype=np.int64)
        b = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError, match="universe=4"):
            intersect_count_bitmap(a, b, universe=4)

    def test_empty_inputs_ignore_universe(self):
        empty = np.array([], dtype=np.int64)
        big = np.array([100], dtype=np.int64)
        # empty short-circuits before the universe check
        assert intersect_count_bitmap(empty, big, universe=1) == 0
        assert intersect_count_bitmap(big, empty, universe=1) == 0

    def test_default_universe_infers_from_both(self):
        a = np.array([2], dtype=np.int64)
        b = np.array([2, 1000], dtype=np.int64)
        assert intersect_count_bitmap(a, b) == 1

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_tight_universe_matches_merge(self, a, b):
        universe = int(a.max()) + 1 if a.size else 1
        assert intersect_count_bitmap(a, b, universe=universe) == (
            intersect_count_merge(a, b)
        )


class TestMergeJoinCost:
    def _literal_cost(self, a, b):
        i = j = steps = 0
        while i < len(a) and j < len(b):
            steps += 1
            if a[i] == b[j]:
                i += 1
                j += 1
            elif a[i] < b[j]:
                i += 1
            else:
                j += 1
        return steps

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=80)
    def test_matches_literal_loop(self, a, b):
        assert merge_join_cost(a, b) == self._literal_cost(a, b)

    def test_empty(self):
        assert merge_join_cost(np.array([]), np.array([1, 2])) == 0

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=40)
    def test_touched_bounds(self, a, b):
        ta, tb = merge_join_touched(a, b)
        assert 0 <= ta <= a.size
        assert 0 <= tb <= b.size
        if a.size and b.size:
            # a merge must touch at least one element of each list
            assert ta >= 1 and tb >= 1


class TestBatchKernels:
    def test_batch_intersect_counts(self, er_small):
        g = er_small
        og = g.orient_lower()
        v = int(np.argmax(og.degrees()))
        row = og.neighbors(v)
        counts = batch_intersect_counts(og.indptr, og.indices, row, row.astype(np.int64))
        expected = [
            intersect_count_merge(row, og.neighbors(int(u))) for u in row
        ]
        np.testing.assert_array_equal(counts, expected)

    def test_batch_empty_rows(self):
        indptr = np.array([0, 0, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.uint32)
        out = batch_intersect_counts(indptr, indices, np.array([0, 1]), np.array([0, 1]))
        np.testing.assert_array_equal(out, [0, 2])

    def test_batch_empty_query(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.uint32)
        out = batch_intersect_counts(indptr, indices, np.array([], dtype=np.int64), np.array([0]))
        np.testing.assert_array_equal(out, [0])

    def test_batch_no_rows(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.uint32)
        assert batch_intersect_counts(indptr, indices, np.array([0]), np.array([], dtype=np.int64)).size == 0

    def test_pairwise_matches_scalar(self, er_medium):
        g = er_medium
        edges = g.edges()
        expected = sum(
            intersect_count_merge(g.neighbors(int(u)), g.neighbors(int(v)))
            for u, v in edges
        )
        got = batch_pairwise_counts(
            g.indptr, g.indices, g.indptr, g.indices, edges[:, 0], edges[:, 1]
        )
        assert got == expected

    def test_pairwise_empty(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.uint32)
        assert (
            batch_pairwise_counts(
                indptr, indices, indptr, indices,
                np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            )
            == 0
        )

    def test_pairwise_asymmetric_structures(self):
        """A and B may be different CSR structures."""
        ip_a = np.array([0, 3], dtype=np.int64)
        ix_a = np.array([1, 5, 9], dtype=np.uint32)
        ip_b = np.array([0, 2], dtype=np.int64)
        ix_b = np.array([5, 9], dtype=np.uint32)
        got = batch_pairwise_counts(ip_a, ix_a, ip_b, ix_b, np.array([0]), np.array([0]))
        assert got == 2
