"""End-to-end integration: dataset -> LOTUS -> traces -> replay -> model.

One test per pipeline stage chain, asserting cross-module consistency
(the quantities that flow between subsystems must agree exactly).
"""

import numpy as np
import pytest

from repro.core import build_lotus_graph, count_hhh_hhn, lotus_count_from_structure
from repro.graph import load_dataset
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    MemoryHierarchy,
    SKYLAKEX,
    forward_opcounts,
    forward_trace,
    lotus_opcounts,
    lotus_trace,
    modeled_seconds,
)
from repro.memsim.trace import _phase1_pairs, h2h_access_lines
from repro.tc import count_triangles_forward, count_triangles_matrix


@pytest.fixture(scope="module")
def pipeline():
    name = "LJGrp"
    g = load_dataset(name)
    oriented = apply_degree_ordering(g)[0].orient_lower()
    lotus = build_lotus_graph(g)
    return g, oriented, lotus


class TestCrossModuleConsistency:
    def test_counts_agree_across_stacks(self, pipeline):
        g, oriented, lotus = pipeline
        assert (
            count_triangles_matrix(g)
            == count_triangles_forward(g).triangles
            == lotus_count_from_structure(lotus).total
        )

    def test_phase1_probes_equal_pair_enumeration(self, pipeline):
        """The trace builder and the counting kernel must enumerate the
        same number of H2H probes."""
        _, _, lotus = pipeline
        deg = lotus.he.degrees()
        expected_pairs = int((deg * (deg - 1) // 2).sum())
        _, bits = _phase1_pairs(lotus)
        assert bits.size == expected_pairs
        assert h2h_access_lines(lotus).size == expected_pairs

    def test_phase1_hits_equal_triangle_count(self, pipeline):
        """H2H probe hits == HHH + HHN (Algorithm 3 lines 3-6)."""
        _, _, lotus = pipeline
        _, bits = _phase1_pairs(lotus)
        h2h = lotus.h2h
        hits = int(
            np.count_nonzero(
                (h2h.data[bits >> 3] >> (bits & 7).astype(np.uint8)) & 1
            )
        )
        hhh, hhn = count_hhh_hhn(lotus)
        assert hits == hhh + hhn

    def test_trace_replay_cost_model_chain(self, pipeline):
        """The full chain runs and preserves the headline ordering."""
        _, oriented, lotus = pipeline
        machine = SKYLAKEX.scaled(833)  # LJGrp per-dataset scale
        hf = MemoryHierarchy(machine)
        hf.access_lines(forward_trace(oriented))
        hl = MemoryHierarchy(machine)
        hl.access_lines(lotus_trace(lotus))
        tf = modeled_seconds(forward_opcounts(oriented), hf.stats(), machine)
        tl = modeled_seconds(lotus_opcounts(lotus), hl.stats(), machine)
        assert tl.seconds_parallel < tf.seconds_parallel
        assert hl.stats().llc_misses < hf.stats().llc_misses
        assert hl.stats().dtlb_misses < hf.stats().dtlb_misses

    def test_traces_are_deterministic(self, pipeline):
        _, oriented, lotus = pipeline
        np.testing.assert_array_equal(forward_trace(oriented), forward_trace(oriented))
        np.testing.assert_array_equal(lotus_trace(lotus), lotus_trace(lotus))

    def test_opcounts_loads_bounded_by_trace_bytes(self, pipeline):
        """Sanity: modelled element loads and trace cacheline volumes agree
        within the line-packing factor (4-byte elements, 64-byte lines)."""
        _, oriented, _ = pipeline
        loads = forward_opcounts(oriented).loads
        trace_lines = forward_trace(oriented).size
        assert trace_lines <= loads  # >= 1 element read per traced line
        assert loads <= trace_lines * 16 * 3  # <= 16 elems/line (+ slack)
