"""Tests for the sharded multi-process distributed runtime.

Covers exactness (per-phase parity with the sequential counter and the
dense-matrix oracle), the simulator-vs-runtime differential contract
(``simulate_distributed_tc`` predicts the measured ``dist.*`` traffic),
failure semantics (shard crash, deadline), telemetry stitching, and the
serve-engine integration.
"""

import numpy as np
import pytest

from repro.core.count import count_triangles_lotus, lotus_count_from_structure
from repro.core.structure import LotusConfig, build_lotus_graph
from repro.dist import (
    PARTITIONERS,
    ShardFailedError,
    lotus_rank,
    resolve_partitioner,
    run_distributed_count,
    simulate_distributed_tc,
)
from repro.graph import erdos_renyi, powerlaw_chung_lu
from repro.obs import use_registry
from repro.parallel.backend import run_phase1
from repro.parallel.procpool import FAULT_EXIT_CODE
from repro.tc import count_triangles_matrix

CONFIG = LotusConfig(hub_count=48)


@pytest.fixture(scope="module")
def skew_graph():
    return powerlaw_chung_lu(900, 8.0, exponent=2.1, seed=13)


@pytest.fixture(scope="module")
def skew_counts(skew_graph):
    lotus = build_lotus_graph(skew_graph, CONFIG)
    return lotus_count_from_structure(lotus, backend="sequential")


class TestExactness:
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    def test_per_phase_parity(self, partitioner, skew_graph, skew_counts):
        run = run_distributed_count(
            skew_graph, config=CONFIG, shards=3, partitioner=partitioner
        )
        assert run.counts == skew_counts
        assert run.counts.total == count_triangles_matrix(skew_graph)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_shard_count_invariance(self, shards, skew_graph, skew_counts):
        run = run_distributed_count(skew_graph, config=CONFIG, shards=shards)
        assert run.counts == skew_counts
        assert run.shards == shards
        assert run.per_shard_triangles.size == shards
        assert run.per_shard_triangles.sum() == run.counts.total

    def test_empty_graph_inline(self):
        g = erdos_renyi(12, 0.0, seed=1)
        run = run_distributed_count(g, config=CONFIG, shards=3)
        assert run.counts.total == 0
        assert run.bytes_exchanged == 0
        assert run.per_shard_triangles.sum() == 0

    def test_count_triangles_lotus_entrypoint(self, skew_graph, skew_counts):
        result = count_triangles_lotus(
            skew_graph, config=CONFIG, backend="distributed", workers=2
        )
        assert result.triangles == skew_counts.total
        assert result.extra["backend"] == "distributed"
        assert result.extra["shards"] == 2
        assert result.extra["counts"] == skew_counts
        assert "distributed" in result.phases


class TestSimulatorDifferential:
    """The simulator and the runtime share ``repro.dist.plan``, so the
    simulator's predicted traffic must match the measured ``dist.*``
    metrics (ISSUE tolerance: exact, since both count the same arcs)."""

    @pytest.mark.parametrize("partitioner", ["hash", "block"])
    def test_predicted_traffic_matches_measured(self, partitioner, skew_graph):
        rank, _hub = lotus_rank(skew_graph, CONFIG)
        owner = PARTITIONERS[partitioner](skew_graph, 3)
        sim = simulate_distributed_tc(skew_graph, owner, 3, rank=rank)
        run = run_distributed_count(
            skew_graph, config=CONFIG, shards=3, partitioner=partitioner
        )
        assert run.bytes_exchanged == sim.bytes_exchanged
        assert run.remote_checks == sim.remote_wedge_checks
        assert run.local_checks == sim.local_wedge_checks
        assert run.boundary_edges == sim.total_comm_edges
        assert run.counts.total == sim.triangles

    def test_single_shard_no_traffic(self, skew_graph):
        run = run_distributed_count(skew_graph, config=CONFIG, shards=1)
        assert run.remote_checks == 0
        assert run.bytes_exchanged == 0
        assert run.boundary_edge_ratio == 0.0


class TestFailureSemantics:
    def test_fault_injection_raises_shard_failed(self, skew_graph):
        with pytest.raises(ShardFailedError) as exc:
            run_distributed_count(
                skew_graph, config=CONFIG, shards=3, fault_shard=1
            )
        assert exc.value.shard == 1
        assert exc.value.exitcode == FAULT_EXIT_CODE
        assert "shard 1" in str(exc.value)

    def test_deadline_raises_timeout(self, skew_graph):
        with pytest.raises(TimeoutError):
            run_distributed_count(
                skew_graph, config=CONFIG, shards=2, deadline_s=0.0
            )

    def test_generous_deadline_completes(self, skew_graph, skew_counts):
        run = run_distributed_count(
            skew_graph, config=CONFIG, shards=2, deadline_s=120.0
        )
        assert run.counts == skew_counts

    def test_bad_partitioner_rejected(self, skew_graph):
        with pytest.raises(ValueError):
            run_distributed_count(skew_graph, partitioner="nope")

    def test_bad_shards_rejected(self, skew_graph):
        with pytest.raises(ValueError):
            run_distributed_count(skew_graph, shards=0)


class TestPartitionerResolution:
    def test_degree_alias(self):
        assert resolve_partitioner("degree") == "degree_balanced"

    def test_canonical_names(self):
        for name in PARTITIONERS:
            assert resolve_partitioner(name) == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_partitioner("round_robin")


class TestTelemetry:
    def test_shard_spans_and_metrics(self, skew_graph):
        with use_registry() as reg:
            run = run_distributed_count(
                skew_graph, config=CONFIG, shards=3, partitioner="hash"
            )
            dspan = reg.find_span("distributed")
            assert dspan is not None
            shard_spans = [s for s in reg.iter_spans() if s.name == "shard"]
            assert len(shard_spans) == 3
            for span in shard_spans:
                children = {c.name for c in span.children}
                assert {"enumerate", "exchange", "tally"} <= children
            assert reg.counter("dist.bytes_exchanged").value == (
                run.bytes_exchanged
            )
            assert reg.counter("dist.remote_checks").value == run.remote_checks
            assert reg.counter("dist.local_checks").value == run.local_checks
            assert reg.gauge("dist.shards").value == 3
            assert reg.gauge("dist.boundary_edge_ratio").value == (
                pytest.approx(run.boundary_edge_ratio)
            )


class TestBackendWiring:
    def test_run_phase1_rejects_distributed(self, skew_graph):
        lotus = build_lotus_graph(skew_graph, CONFIG)
        with pytest.raises(ValueError, match="distributed"):
            run_phase1(lotus, backend="distributed")


class TestServeIntegration:
    @pytest.fixture
    def serve_graph(self):
        return erdos_renyi(200, 0.06, seed=31)

    def test_distributed_query_matches_sequential(self, serve_graph):
        from repro.serve import QueryEngine, QueryRequest, StructureCache

        with QueryEngine(StructureCache(), max_batch=8) as engine:
            seq = engine.query(
                QueryRequest(graph=serve_graph, backend="sequential"),
                wait_timeout=60,
            )
            dist = engine.query(
                QueryRequest(graph=serve_graph, backend="distributed", workers=2),
                wait_timeout=120,
            )
        assert seq.ok and dist.ok
        assert dist.triangles == seq.triangles

    def test_shard_failure_isolated_to_its_computation(self, serve_graph):
        """A ShardFailedError fails only the affected computation; other
        queries — and retries of the same graph — still succeed."""
        from repro.serve import QueryEngine, QueryRequest, StructureCache
        from repro.serve.engine import _default_executor

        armed = {"fault": True}

        def faulting_executor(entry, request, backend, workers):
            if backend == "distributed" and armed["fault"]:
                armed["fault"] = False
                raise ShardFailedError(1, exitcode=FAULT_EXIT_CODE)
            return _default_executor(entry, request, backend, workers)

        other = erdos_renyi(150, 0.08, seed=77)
        with QueryEngine(
            StructureCache(), executor=faulting_executor, max_batch=8
        ) as engine:
            crashed = engine.query(
                QueryRequest(graph=serve_graph, backend="distributed", workers=2),
                wait_timeout=60,
            )
            assert crashed.status == "error"
            assert "shard 1" in crashed.error
            ok_other = engine.query(
                QueryRequest(graph=other), wait_timeout=60
            )
            assert ok_other.ok
            retried = engine.query(
                QueryRequest(graph=serve_graph, backend="distributed", workers=2),
                wait_timeout=120,
            )
            assert retried.ok
