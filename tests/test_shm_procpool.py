"""The shared-memory substrate, the work-stealing scheduler, and the
process backend.

The load-bearing guarantees, each pinned here:

* shared-memory round-trips are exact and zero-copy (mutations through
  one mapping are visible through the other);
* the chunk autotuner and LPT planner partition all tiles exactly once;
* the deque scheduler hands out every chunk exactly once, whether
  drained by owners or by thieves;
* the process backend is **bit-identical** to the sequential phase for
  every registered dataset at workers 1, 2 and 4;
* both segments are unlinked after normal exit *and* after an injected
  worker crash (no `/dev/shm` residue).
"""

from __future__ import annotations

import glob
import threading

import numpy as np
import pytest

from repro.core import build_lotus_graph
from repro.core.count import count_hhh_hhn
from repro.core.structure import LotusConfig, LotusGraph
from repro.core.tiling import tiles_for_phase1
from repro.graph import DATASETS, load_dataset, powerlaw_chung_lu, rmat
from repro.graph.csr import CSRGraph
from repro.obs import use_registry
from repro.parallel.procpool import (
    FAULT_EXIT_CODE,
    WorkerCrashError,
    count_hhh_hhn_processes,
)
from repro.parallel.scheduler import TileScheduler, chunk_tiles, plan_assignment
from repro.util.shm import attach_arrays, share_arrays


def _live_segments() -> set[str]:
    return set(glob.glob("/dev/shm/repro-*"))


# --------------------------------------------------------------------------
# shared-memory substrate
# --------------------------------------------------------------------------
class TestSharedArrays:
    def test_round_trip_exact(self):
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0, 1, 7),
            "c": np.array([], dtype=np.uint16),
            "d": (np.arange(12, dtype=np.uint8) % 3).reshape(3, 4),
        }
        with share_arrays(arrays, meta={"tag": 42}) as handle:
            attached = attach_arrays(handle.manifest)
            assert attached.meta["tag"] == 42
            for key, expected in arrays.items():
                got = attached.arrays[key]
                assert got.dtype == expected.dtype
                assert got.shape == expected.shape
                np.testing.assert_array_equal(got, expected)
            attached.close()

    def test_mutation_visible_across_mappings(self):
        with share_arrays({"x": np.zeros(8, dtype=np.int64)}) as handle:
            attached = attach_arrays(handle.manifest)
            attached.arrays["x"][3] = 99
            assert handle.arrays["x"][3] == 99
            attached.close()

    def test_alignment(self):
        arrays = {
            "small": np.arange(3, dtype=np.uint8),
            "wide": np.arange(5, dtype=np.float64),
        }
        handle = share_arrays(arrays)
        try:
            offsets = {s["key"]: s["offset"] for s in handle.manifest["arrays"]}
            assert all(off % 64 == 0 for off in offsets.values())
        finally:
            handle.close()
            handle.unlink()

    def test_unlink_is_idempotent_and_removes_segment(self):
        handle = share_arrays({"x": np.ones(4)})
        name = handle.name
        assert any(name in p for p in _live_segments())
        handle.close()
        handle.unlink()
        handle.unlink()  # second call is a no-op
        assert not any(name in p for p in _live_segments())

    def test_csr_graph_round_trip(self):
        graph = rmat(scale=8, edge_factor=6, seed=3)
        handle = graph.to_shared()
        try:
            rebuilt, attached = CSRGraph.from_shared(handle.manifest)
            assert rebuilt == graph
            attached.close()
        finally:
            handle.close()
            handle.unlink()

    def test_lotus_graph_round_trip(self):
        graph = powerlaw_chung_lu(2000, 8.0, exponent=2.1, seed=11)
        lotus = build_lotus_graph(graph, LotusConfig(hub_count=128))
        handle = lotus.to_shared()
        try:
            rebuilt, attached = LotusGraph.from_shared(handle.manifest)
            assert rebuilt.hub_count == lotus.hub_count
            assert rebuilt.num_vertices == lotus.num_vertices
            assert rebuilt.num_edges == lotus.num_edges
            assert rebuilt.config == lotus.config
            np.testing.assert_array_equal(rebuilt.h2h.data, lotus.h2h.data)
            np.testing.assert_array_equal(rebuilt.he.indices, lotus.he.indices)
            np.testing.assert_array_equal(rebuilt.nhe.indptr, lotus.nhe.indptr)
            # the rebuilt structure must count identically
            assert count_hhh_hhn(rebuilt) == count_hhh_hhn(lotus)
            attached.close()
        finally:
            handle.close()
            handle.unlink()


# --------------------------------------------------------------------------
# chunk autotuner + work-stealing deques
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sample_tiles():
    graph = powerlaw_chung_lu(3000, 9.0, exponent=2.0, seed=5)
    lotus = build_lotus_graph(graph, LotusConfig(hub_count=256))
    tiles = tiles_for_phase1(lotus.he, partitions=8, degree_threshold=32)
    assert len(tiles) > 20
    return tiles


class TestChunking:
    def test_bounds_partition_all_tiles(self, sample_tiles):
        bounds = chunk_tiles(sample_tiles, workers=4)
        assert bounds[0] == 0 and bounds[-1] == len(sample_tiles)
        assert np.all(np.diff(bounds) > 0)

    def test_chunk_costs_near_target(self, sample_tiles):
        workers, cpw = 4, 8
        bounds = chunk_tiles(sample_tiles, workers, chunks_per_worker=cpw)
        costs = np.add.reduceat(
            np.array([t.work for t in sample_tiles], dtype=np.float64),
            bounds[:-1],
        )
        total = sum(t.work for t in sample_tiles)
        target = total / (workers * cpw)
        # every chunk but the trailing remainder reaches the target, and no
        # chunk exceeds target + one tile (tiles are never split)
        max_tile = max(t.work for t in sample_tiles)
        assert np.all(costs[:-1] >= target)
        assert np.all(costs <= target + max_tile)

    def test_empty_tiles(self):
        bounds = chunk_tiles([], workers=4)
        assert bounds.tolist() == [0]

    def test_plan_assignment_covers_all_chunks(self):
        costs = [5.0, 1.0, 9.0, 2.0, 2.0, 7.0, 3.0]
        deques = plan_assignment(costs, workers=3)
        flat = sorted(c for dq in deques for c in dq)
        assert flat == list(range(len(costs)))
        # LPT keeps the max load within 4/3 of optimum for these costs
        loads = [sum(costs[c] for c in dq) for dq in deques]
        assert max(loads) <= (sum(costs) / 3) * (4 / 3) + max(costs) / 3

    def test_plan_assignment_deterministic(self):
        costs = np.arange(20, dtype=np.float64) % 7
        assert plan_assignment(costs, 4) == plan_assignment(costs, 4)


class TestTileScheduler:
    def _build(self, deques):
        locks = [threading.Lock() for _ in deques]
        return TileScheduler.build(deques, locks)

    def test_owner_drains_in_order(self):
        sched = self._build([[3, 1, 4], [2, 0]])
        assert [sched.pop_local(0) for _ in range(4)] == [3, 1, 4, None]

    def test_thief_steals_from_back(self):
        sched = self._build([[], [10, 11, 12]])
        assert sched.steal(0) == (12, 1)
        assert sched.pop_local(1) == 10

    def test_every_chunk_handed_out_exactly_once(self):
        deques = [[0, 1, 2], [3], [], [4, 5, 6, 7]]
        sched = self._build(deques)
        seen = []
        # worker 2 (empty deque) drains everything by stealing
        while True:
            chunk, was_stolen = sched.next_chunk(2)
            if chunk is None:
                break
            assert was_stolen
            seen.append(chunk)
        assert sorted(seen) == list(range(8))
        assert sched.remaining() == 0

    def test_concurrent_drain_no_loss_no_duplication(self):
        chunks = list(range(200))
        deques = plan_assignment(np.ones(len(chunks)), workers=4)
        sched = self._build(deques)
        taken: list[list[int]] = [[] for _ in range(4)]

        def drain(w: int) -> None:
            while True:
                chunk, _ = sched.next_chunk(w)
                if chunk is None:
                    return
                taken[w].append(chunk)

        threads = [threading.Thread(target=drain, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = sorted(c for per in taken for c in per)
        assert flat == chunks


# --------------------------------------------------------------------------
# process backend: correctness, lifecycle, crash injection
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset_lotus():
    """Prebuilt Lotus structures for every registered dataset (cached)."""
    structures = {}
    for name in DATASETS:
        structures[name] = build_lotus_graph(load_dataset(name))
    return structures


class TestProcessBackend:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_bit_identical_all_datasets(self, dataset_lotus, name):
        lotus = dataset_lotus[name]
        expected = count_hhh_hhn(lotus)
        for workers in (1, 2, 4):
            assert count_hhh_hhn_processes(lotus, workers=workers) == expected

    def test_empty_phase1_short_circuits(self):
        graph = powerlaw_chung_lu(200, 1.2, exponent=2.5, seed=9)
        lotus = build_lotus_graph(graph, LotusConfig(hub_count=1))
        before = _live_segments()
        assert count_hhh_hhn_processes(lotus, workers=4) == count_hhh_hhn(lotus)
        assert _live_segments() == before

    def test_segments_unlinked_after_normal_exit(self, dataset_lotus):
        before = _live_segments()
        count_hhh_hhn_processes(dataset_lotus["LJGrp"], workers=2)
        assert _live_segments() == before

    @pytest.mark.parametrize("fault_worker", [0, 2])
    def test_worker_crash_raises_and_unlinks(self, dataset_lotus, fault_worker):
        before = _live_segments()
        with pytest.raises(WorkerCrashError) as excinfo:
            count_hhh_hhn_processes(
                dataset_lotus["LJGrp"], workers=3, fault_worker=fault_worker
            )
        assert excinfo.value.exitcodes[fault_worker] == FAULT_EXIT_CODE
        assert _live_segments() == before

    def test_worker_stats_exported(self, dataset_lotus):
        lotus = dataset_lotus["Twtr10"]
        with use_registry() as reg:
            count_hhh_hhn_processes(lotus, workers=3)
        snap = reg.snapshot()
        chunks = snap["counters"]["parallel.sched.chunks"]
        assert chunks > 0
        assert snap["counters"]["parallel.sched.tasks_executed"] == chunks
        assert snap["histograms"]["parallel.sched.worker_wall_s"]["count"] == 3
        assert snap["gauges"]["parallel.sched.shm_bytes"] > 0
        phase = reg.find_span("phase1-processes")
        assert phase is not None
        workers = phase.find_all("worker")
        assert len(workers) == 3
        expected = count_hhh_hhn(lotus)
        assert sum(w.attrs["hits"] for w in workers) == sum(expected)
        assert sum(w.attrs["executed"] for w in workers) == chunks

    def test_invalid_workers_rejected(self, dataset_lotus):
        with pytest.raises(ValueError):
            count_hhh_hhn_processes(dataset_lotus["LJGrp"], workers=0)


class TestWorkerTelemetry:
    """Cross-process trace propagation: worker spans are recorded inside
    the worker processes and stitched under the parent ``phase1`` span."""

    def test_worker_spans_recorded_in_worker_processes(self, dataset_lotus):
        import os

        with use_registry() as reg:
            count_hhh_hhn_processes(dataset_lotus["Twtr10"], workers=3)
        phase = reg.find_span("phase1-processes")
        workers = phase.find_all("worker")
        assert len(workers) == 3
        # captured inside the workers: three distinct pids, none ours
        pids = {w.attrs["pid"] for w in workers}
        assert len(pids) == 3 and os.getpid() not in pids
        for w in workers:
            assert w.trace_id == phase.trace_id
            assert w.parent_id == phase.span_id
            # real worker-side timestamps, contained in the parent span
            assert phase.start > 0 and w.start > 0
            assert w.start >= phase.start - 1e-3
            assert w.start + w.elapsed <= phase.start + phase.elapsed + 1e-3
            chunks = w.find_all("chunk")
            assert len(chunks) == w.attrs["executed"] > 0
            for c in chunks:
                assert c.start >= w.start - 1e-3
                assert c.trace_id == phase.trace_id

    def test_worker_wall_sums_within_phase_budget(self, dataset_lotus):
        workers = 3
        with use_registry() as reg:
            count_hhh_hhn_processes(dataset_lotus["Twtr10"], workers=workers)
        phase = reg.find_span("phase1-processes")
        total = sum(w.elapsed for w in phase.find_all("worker"))
        assert total > 0
        # each worker's wall clock fits inside the phase: the sum cannot
        # exceed workers x the phase wall time (plus stitch tolerance)
        assert total <= workers * phase.elapsed * 1.05

    @pytest.mark.parametrize("fault_worker", [0, 2])
    def test_crash_still_flushes_partial_telemetry(
        self, dataset_lotus, fault_worker
    ):
        before = _live_segments()
        with use_registry() as reg:
            with pytest.raises(WorkerCrashError) as excinfo:
                count_hhh_hhn_processes(
                    dataset_lotus["LJGrp"], workers=3, fault_worker=fault_worker
                )
        assert excinfo.value.exitcodes[fault_worker] == FAULT_EXIT_CODE
        assert _live_segments() == before
        # the survivors' telemetry must have been stitched before the raise
        phase = reg.find_span("phase1-processes")
        assert phase is not None
        survivors = phase.find_all("worker")
        assert len(survivors) == 2
        assert {w.attrs["worker"] for w in survivors} == \
            {0, 1, 2} - {fault_worker}
        for w in survivors:
            assert w.trace_id == phase.trace_id
            assert w.attrs["executed"] > 0
