"""Tests for the cache, TLB, and hierarchy simulators."""

import numpy as np
import pytest

from repro.memsim import MemoryHierarchy, SetAssociativeCache, TLB, SKYLAKEX
from repro.memsim.cache import compress_consecutive


class TestCompressConsecutive:
    def test_basic(self):
        lines, collapsed = compress_consecutive(np.array([1, 1, 1, 2, 2, 1]))
        np.testing.assert_array_equal(lines, [1, 2, 1])
        assert collapsed == 3

    def test_empty(self):
        lines, collapsed = compress_consecutive(np.array([], dtype=np.int64))
        assert lines.size == 0 and collapsed == 0

    def test_no_repeats(self):
        lines, collapsed = compress_consecutive(np.array([3, 1, 2]))
        assert collapsed == 0


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, 64, 2)
        assert c.access_lines(np.array([5])).size == 1  # miss
        assert c.access_lines(np.array([5])).size == 0  # hit
        assert c.stats.accesses == 2 and c.stats.hits == 1

    def test_lru_eviction(self):
        # 1 set, 2 ways
        c = SetAssociativeCache(128, 64, 2)
        assert c.num_sets == 1
        c.access_lines(np.array([0, 1]))  # fill
        c.access_lines(np.array([0]))     # 0 is now MRU
        misses = c.access_lines(np.array([2]))  # evicts 1
        assert misses.size == 1
        assert c.access_lines(np.array([0])).size == 0  # 0 survived
        assert c.access_lines(np.array([1])).size == 1  # 1 evicted

    def test_set_conflict(self):
        # 2 sets, 1 way: lines 0 and 2 collide (even), 1 and 3 collide (odd)
        c = SetAssociativeCache(128, 64, 1)
        assert c.num_sets == 2
        c.access_lines(np.array([0, 1]))
        assert c.access_lines(np.array([2])).size == 1  # evicts 0
        assert c.access_lines(np.array([1])).size == 0  # odd set untouched
        assert c.access_lines(np.array([0])).size == 1

    def test_working_set_fits(self):
        c = SetAssociativeCache(64 * 1024, 64, 8)
        lines = np.arange(100)
        c.access_lines(lines)  # cold
        for _ in range(5):
            assert c.access_lines(lines).size == 0
        assert c.stats.misses == 100

    def test_working_set_too_big_thrashes(self):
        c = SetAssociativeCache(64 * 64, 64, 1)  # 64 lines direct-mapped
        lines = np.arange(128)  # 2x capacity, round-robin: always miss
        c.access_lines(lines)
        second = c.access_lines(lines)
        assert second.size == 128

    def test_disabled_cache(self):
        c = SetAssociativeCache(0, 64, 8)
        out = c.access_lines(np.array([1, 1, 2]))
        assert out.size == 3

    def test_credit_hits(self):
        c = SetAssociativeCache(1024, 64, 2)
        c.credit_hits(10)
        assert c.stats.accesses == 10 and c.stats.hits == 10

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(-1)


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB(entries=4, page_bytes=4096)
        # addresses on the same page: one miss, rest hits
        tlb.access_bytes(np.array([0, 100, 4095]))
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 2

    def test_capacity(self):
        tlb = TLB(entries=2, page_bytes=4096)
        tlb.access_pages(np.array([0, 1, 2]))  # 3 pages, 2 entries
        tlb.access_pages(np.array([0]))        # evicted
        assert tlb.stats.misses == 4

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestHierarchy:
    def test_miss_filtering(self):
        h = MemoryHierarchy(SKYLAKEX.scaled(1024))
        lines = np.arange(64)
        h.access_lines(lines)
        s = h.stats()
        assert s.accesses == 64
        assert s.l1_misses <= s.accesses
        assert s.l2_misses <= s.l1_misses
        assert s.llc_misses <= s.l2_misses

    def test_repeat_stream_hits_l1(self):
        h = MemoryHierarchy(SKYLAKEX)
        lines = np.array([7] * 100)
        h.access_lines(lines)
        s = h.stats()
        assert s.l1_misses == 1
        assert s.l1_hits == 99

    def test_byte_address_api(self):
        h = MemoryHierarchy(SKYLAKEX)
        h.access_byte_addresses(np.array([0, 63, 64, 4096]))
        s = h.stats()
        assert s.accesses == 4
        assert s.l1_misses == 3  # lines 0, 1, 64
        assert s.dtlb_misses == 2  # pages 0 and 1

    def test_reset(self):
        h = MemoryHierarchy(SKYLAKEX)
        h.access_lines(np.arange(10))
        h.reset()
        assert h.stats().accesses == 0

    def test_larger_cache_fewer_misses(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 4000, size=20_000)
        small = MemoryHierarchy(SKYLAKEX.scaled(2048))
        big = MemoryHierarchy(SKYLAKEX.scaled(64))
        small.access_lines(lines)
        big.access_lines(lines)
        assert big.stats().llc_misses < small.stats().llc_misses


class TestMachineSpecs:
    def test_table3_values(self):
        from repro.memsim import MACHINES, EPYC, HASWELL

        assert MACHINES["SkyLakeX"].cores == 32
        assert MACHINES["Haswell"].cores == 40
        assert EPYC.cores == 128
        # Epyc's L3 is ~12x SkyLakeX's (Section 5.2)
        assert EPYC.l3_bytes_total / MACHINES["SkyLakeX"].l3_bytes_total > 11

    def test_scaling_preserves_ratio(self):
        from repro.memsim import EPYC, SKYLAKEX

        e = EPYC.scaled(256)
        s = SKYLAKEX.scaled(256)
        assert e.l3_bytes_total / s.l3_bytes_total == pytest.approx(
            EPYC.l3_bytes_total / SKYLAKEX.l3_bytes_total, rel=0.01
        )

    def test_scaling_floors_at_one_set(self):
        m = SKYLAKEX.scaled(10**9)
        assert m.l1_bytes >= m.line_bytes * m.l1_ways

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SKYLAKEX.scaled(0)
