"""Tests for the compressed CSX encoding (Section 3.2 study)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, from_edges, powerlaw_chung_lu, star_graph, empty_graph
from repro.graph.compress import (
    CompressedCSX,
    compress_graph,
    varint_decode,
    varint_encode,
)
from repro.graph.reorder import lotus_relabeling_array, relabel


class TestVarint:
    def test_known_encodings(self):
        np.testing.assert_array_equal(varint_encode(np.array([0])), [0])
        np.testing.assert_array_equal(varint_encode(np.array([127])), [127])
        np.testing.assert_array_equal(varint_encode(np.array([128])), [0x80, 1])
        np.testing.assert_array_equal(varint_encode(np.array([300])), [0xAC, 0x02])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_encode(np.array([-1]))

    def test_truncated_stream_rejected(self):
        with pytest.raises(ValueError):
            varint_decode(np.array([0x80], dtype=np.uint8))

    def test_empty(self):
        assert varint_decode(varint_encode(np.array([], dtype=np.int64))).size == 0

    @given(st.lists(st.integers(0, 2**40), max_size=60))
    @settings(max_examples=60)
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.uint64)
        np.testing.assert_array_equal(varint_decode(varint_encode(arr)), arr)

    def test_large_values(self):
        arr = np.array([2**62, 2**63 - 1, 0, 1], dtype=np.uint64)
        np.testing.assert_array_equal(varint_decode(varint_encode(arr)), arr)

    def test_size_grows_with_magnitude(self):
        small = varint_encode(np.full(100, 5))
        big = varint_encode(np.full(100, 10**9))
        assert small.size < big.size


class TestCompressedCSX:
    def test_roundtrip_er(self, er_medium):
        assert compress_graph(er_medium).decode() == er_medium

    def test_roundtrip_powerlaw(self, powerlaw_small):
        assert compress_graph(powerlaw_small).decode() == powerlaw_small

    def test_roundtrip_star(self):
        g = star_graph(50)
        assert compress_graph(g).decode() == g

    def test_empty(self):
        g = empty_graph(5)
        c = compress_graph(g)
        assert c.num_arcs == 0
        assert c.decode() == g

    def test_decode_row_matches(self, er_small):
        c = compress_graph(er_small)
        for v in range(0, er_small.num_vertices, 7):
            np.testing.assert_array_equal(c.decode_row(v), er_small.neighbors(v))

    def test_compresses_clustered_ids(self):
        """Consecutive-ID neighbourhoods encode in ~1 byte per edge."""
        edges = [(i, i + 1) for i in range(999)]
        g = from_edges(np.array(edges))
        c = compress_graph(g)
        assert c.bytes_per_arc() < 1.5

    def test_beats_raw_on_real_graphs(self, powerlaw_medium):
        c = compress_graph(powerlaw_medium)
        raw_bytes = 4 * powerlaw_medium.num_arcs
        assert c.data.nbytes < raw_bytes

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed):
        g = erdos_renyi(100, 0.08, seed=seed)
        assert compress_graph(g).decode() == g


class TestCompressedIO:
    def test_roundtrip_through_disk(self, er_medium, tmp_path):
        from repro.graph.compress import load_compressed, save_compressed

        c = compress_graph(er_medium)
        p = tmp_path / "g.csx.npz"
        save_compressed(p, c)
        loaded = load_compressed(p)
        assert loaded.num_arcs == c.num_arcs
        assert loaded.decode() == er_medium

    def test_compressed_file_smaller_than_raw(self, powerlaw_medium, tmp_path):
        from repro.graph import save_npz
        from repro.graph.compress import save_compressed

        raw = tmp_path / "raw.npz"
        comp = tmp_path / "comp.npz"
        save_npz(raw, powerlaw_medium)
        save_compressed(comp, compress_graph(powerlaw_medium))
        assert comp.stat().st_size < raw.stat().st_size * 1.2


class TestSection32Compactness:
    def test_lotus_relabeling_shrinks_encoding(self):
        """The paper's §3.2 argument, measured: with hubs at the smallest
        IDs (LOTUS relabeling), the frequently-referenced IDs become the
        cheapest varints and the encoded topology shrinks."""
        base = powerlaw_chung_lu(8000, 16.0, exponent=2.0, seed=3)
        # shuffle IDs so they carry no degree information to begin with
        g = relabel(base, np.random.default_rng(0).permutation(base.num_vertices))
        natural = compress_graph(g).data.nbytes
        ra = lotus_relabeling_array(g, head_fraction=0.10)
        relabeled = compress_graph(relabel(g, ra)).data.nbytes
        assert relabeled < natural
