"""Tests for the 3-phase Lotus counting (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LotusConfig,
    build_lotus_graph,
    count_hhh_hhn,
    count_hnn,
    count_nnn,
    count_triangles_lotus,
    lotus_count_from_structure,
)
from repro.graph import (
    complete_graph,
    erdos_renyi,
    from_edges,
    powerlaw_chung_lu,
)
from repro.graph.degree import hub_mask_top_k
from repro.tc import count_triangles_matrix


def classify_triangles_brute_force(graph, lotus):
    """Independent per-type classification: enumerate all triangles via the
    matrix oracle decomposition using hub membership in *new* labels."""
    hubs_old = np.flatnonzero(lotus.ra < lotus.hub_count)
    hub_set = set(hubs_old.tolist())
    counts = {"hhh": 0, "hhn": 0, "hnn": 0, "nnn": 0}
    # brute force triangle enumeration (small graphs only)
    n = graph.num_vertices
    for v in range(n):
        nv = set(graph.neighbors(v).tolist())
        for u in graph.neighbors(v):
            if u >= v:
                continue
            for w in graph.neighbors(int(u)):
                if w >= u or int(w) not in nv:
                    continue
                k = sum(int(x) in hub_set for x in (v, u, w))
                counts[["nnn", "hnn", "hhn", "hhh"][k]] += 1
    return counts


class TestPhaseDecomposition:
    def test_types_sum_to_total(self, powerlaw_small):
        r = count_triangles_lotus(powerlaw_small)
        c = r.extra["counts"]
        assert c.hhh + c.hhn + c.hnn + c.nnn == r.triangles
        assert c.total == count_triangles_matrix(powerlaw_small)

    @pytest.mark.parametrize("hub_count", [1, 3, 8, 25])
    def test_per_type_counts_match_brute_force(self, hub_count):
        g = erdos_renyi(60, 0.15, seed=31)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=hub_count))
        counts = lotus_count_from_structure(lotus)
        expected = classify_triangles_brute_force(g, lotus)
        assert counts.hhh == expected["hhh"]
        assert counts.hhn == expected["hhn"]
        assert counts.hnn == expected["hnn"]
        assert counts.nnn == expected["nnn"]

    def test_k4_all_hubs(self):
        g = complete_graph(4)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=4))
        counts = lotus_count_from_structure(lotus)
        assert counts.hhh == 4 and counts.total == 4

    def test_k4_no_real_hubs(self):
        # hub_count=1: a single hub -> no HHH/HHN possible (needs 2 hubs)
        g = complete_graph(4)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=1))
        counts = lotus_count_from_structure(lotus)
        assert counts.hhh == 0 and counts.hhn == 0
        assert counts.hnn == 3  # triangles through the hub
        assert counts.nnn == 1

    def test_hub_fraction_dominates_on_powerlaw(self, powerlaw_medium):
        """~93% of triangles include a hub on skewed graphs (Table 1)."""
        r = count_triangles_lotus(powerlaw_medium)
        assert r.extra["counts"].hub_fraction() > 0.8

    def test_phases_individually(self, er_medium):
        lotus = build_lotus_graph(er_medium, LotusConfig(hub_count=16))
        hhh, hhn = count_hhh_hhn(lotus)
        hnn = count_hnn(lotus)
        nnn = count_nnn(lotus)
        assert hhh + hhn + hnn + nnn == count_triangles_matrix(er_medium)

    def test_fused_and_unfused_agree(self, powerlaw_small):
        lotus = build_lotus_graph(powerlaw_small)
        assert count_hnn(lotus, fused=True) == count_hnn(lotus, fused=False)
        assert count_nnn(lotus, fused=True) == count_nnn(lotus, fused=False)


class TestEndToEnd:
    def test_breakdown_phases_present(self, powerlaw_small):
        r = count_triangles_lotus(powerlaw_small)
        for phase in ("preprocess", "hhh+hhn", "hnn", "nnn"):
            assert phase in r.phases

    def test_total_time_is_sum(self, powerlaw_small):
        r = count_triangles_lotus(powerlaw_small)
        assert r.elapsed == pytest.approx(sum(r.phases.values()))

    def test_empty_graph(self):
        from repro.graph import empty_graph

        r = count_triangles_lotus(empty_graph(10))
        assert r.triangles == 0

    def test_single_edge(self):
        g = from_edges(np.array([[0, 1]]))
        assert count_triangles_lotus(g).triangles == 0

    @given(st.integers(0, 2**31 - 1), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_hub_count_invariance(self, seed, hub_count):
        """The total is independent of the hub count — only the type split
        changes (the partition property of the 4 triangle types)."""
        g = powerlaw_chung_lu(150, 5.0, exponent=2.2, seed=seed)
        ref = count_triangles_matrix(g)
        r = count_triangles_lotus(g, LotusConfig(hub_count=hub_count))
        assert r.triangles == ref


class TestHubCountSensitivity:
    def test_more_hubs_more_hub_triangles(self, powerlaw_small):
        g = powerlaw_small
        few = count_triangles_lotus(g, LotusConfig(hub_count=4)).extra["counts"]
        many = count_triangles_lotus(g, LotusConfig(hub_count=200)).extra["counts"]
        assert many.hub >= few.hub
        assert many.nnn <= few.nnn

    def test_all_vertices_hubs(self, er_small):
        g = er_small
        r = count_triangles_lotus(g, LotusConfig(hub_count=g.num_vertices))
        c = r.extra["counts"]
        assert c.hhn == c.hnn == c.nnn == 0
        assert c.hhh == count_triangles_matrix(g)
