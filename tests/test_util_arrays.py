"""Tests for the vectorised multi-range helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.arrays import concat_ranges, group_ids, segment_sums


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([5, 10]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [5, 6, 7, 10, 11])

    def test_empty(self):
        assert concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_zero_length_ranges_skipped(self):
        out = concat_ranges(np.array([3, 7, 9]), np.array([2, 0, 1]))
        np.testing.assert_array_equal(out, [3, 4, 9])

    def test_single_range(self):
        np.testing.assert_array_equal(concat_ranges(np.array([0]), np.array([4])), [0, 1, 2, 3])

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 20)), min_size=0, max_size=30
        )
    )
    @settings(max_examples=50)
    def test_matches_naive(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        lens = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(s, s + l) for s, l in ranges])
            if ranges and lens.sum()
            else np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(concat_ranges(starts, lens), expected)


class TestGroupIds:
    def test_basic(self):
        np.testing.assert_array_equal(group_ids(np.array([2, 0, 3])), [0, 0, 2, 2, 2])

    def test_empty(self):
        assert group_ids(np.array([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert group_ids(np.array([0, 0, 0])).size == 0


class TestSegmentSums:
    def test_basic(self):
        out = segment_sums(np.array([1, 2, 3, 4, 5]), np.array([2, 3]))
        np.testing.assert_array_equal(out, [3, 12])

    def test_zero_length_segment(self):
        out = segment_sums(np.array([1, 2, 3]), np.array([1, 0, 2]))
        np.testing.assert_array_equal(out, [1, 0, 5])

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            segment_sums(np.array([1, 2]), np.array([3]))

    def test_empty(self):
        np.testing.assert_array_equal(
            segment_sums(np.array([], dtype=np.int64), np.array([0, 0])), [0, 0]
        )

    @given(st.lists(st.integers(0, 6), min_size=0, max_size=20), st.integers(0, 100))
    @settings(max_examples=50)
    def test_total_preserved(self, lens, seed):
        lens = np.array(lens, dtype=np.int64)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 10, size=int(lens.sum()))
        assert segment_sums(values, lens).sum() == values.sum()
