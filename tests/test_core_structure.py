"""Tests for the Lotus graph structure and preprocessing (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LotusConfig, build_lotus_graph
from repro.core.structure import PAPER_HUB_COUNT
from repro.graph import erdos_renyi, powerlaw_chung_lu, star_graph, complete_graph


class TestConfig:
    def test_default_hub_count_small_graph(self):
        cfg = LotusConfig()
        assert cfg.resolve_hub_count(6400) == 100

    def test_default_hub_count_huge_graph(self):
        cfg = LotusConfig()
        assert cfg.resolve_hub_count(10_000_000) == PAPER_HUB_COUNT

    def test_explicit_hub_count(self):
        assert LotusConfig(hub_count=64).resolve_hub_count(1000) == 64

    def test_hub_count_clamped_to_n(self):
        assert LotusConfig(hub_count=500).resolve_hub_count(100) == 100

    def test_invalid_hub_count(self):
        with pytest.raises(ValueError):
            LotusConfig(hub_count=0).resolve_hub_count(100)


class TestStructure:
    def test_validates_on_er(self, er_medium):
        lotus = build_lotus_graph(er_medium, LotusConfig(hub_count=32))
        lotus.validate()

    def test_validates_on_powerlaw(self, powerlaw_small):
        lotus = build_lotus_graph(powerlaw_small)
        lotus.validate()

    def test_edge_partition(self, powerlaw_small):
        lotus = build_lotus_graph(powerlaw_small)
        assert lotus.hub_edges + lotus.non_hub_edges == powerlaw_small.num_edges

    def test_he_dtype_is_uint16(self, powerlaw_small):
        lotus = build_lotus_graph(powerlaw_small)
        assert lotus.he.indices.dtype == np.uint16  # 16-bit hub IDs (Section 4.2)
        assert lotus.nhe.indices.dtype == np.uint32

    def test_h2h_matches_hub_subgraph(self, powerlaw_small):
        """Every hub-hub edge appears in H2H and HE (recorded twice, Fig. 3a)."""
        lotus = build_lotus_graph(powerlaw_small)
        h2h_edges = lotus.h2h.count_set()
        hub_hub_in_he = sum(
            lotus.he.neighbors(v).size for v in range(lotus.hub_count)
        )
        assert h2h_edges == hub_hub_in_he

    def test_star_all_edges_are_hub_edges(self):
        g = star_graph(50)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=1))
        assert lotus.hub_edges == 49
        assert lotus.non_hub_edges == 0

    def test_complete_graph_hub_split(self):
        g = complete_graph(10)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=4))
        # edges with at least one endpoint in the 4 hubs: C(10,2)-C(6,2)
        assert lotus.hub_edges == 45 - 15
        assert lotus.non_hub_edges == 15
        lotus.validate()

    def test_relabeling_array_is_permutation(self, er_medium):
        lotus = build_lotus_graph(er_medium)
        assert sorted(lotus.ra) == list(range(er_medium.num_vertices))

    def test_hub_edge_fraction(self, powerlaw_medium):
        """On a skewed graph the hub edges dominate (Figure 8 behaviour)."""
        lotus = build_lotus_graph(powerlaw_medium)
        assert lotus.hub_edge_fraction() > 0.5

    @given(st.integers(0, 2**31 - 1), st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_partition_property(self, seed, hub_count):
        g = erdos_renyi(120, 0.06, seed=seed)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=hub_count))
        lotus.validate()
        assert lotus.hub_edges + lotus.non_hub_edges == g.num_edges


class TestByteAccounting:
    def test_nbytes_formula(self, powerlaw_small):
        lotus = build_lotus_graph(powerlaw_small)
        expected = (
            2 * 8 * (powerlaw_small.num_vertices + 1)
            + lotus.h2h.nbytes
            + 2 * lotus.hub_edges
            + 4 * lotus.non_hub_edges
        )
        assert lotus.nbytes_lotus() == expected

    def test_he_saves_bytes_vs_csx(self, powerlaw_medium):
        """HE stores 2 bytes/edge vs 4 in CSX — hub-heavy graphs shrink
        (Table 7's negative growth rows)."""
        lotus = build_lotus_graph(powerlaw_medium)
        assert lotus.he.indices.dtype.itemsize == 2
