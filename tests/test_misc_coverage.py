"""Coverage for conversion helpers, cost-model edges, and scale derivation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import from_edges, from_sparse, to_sparse, erdos_renyi
from repro.graph.build import normalize_edges
from repro.memsim import HierarchyStats, SKYLAKEX, modeled_seconds
from repro.memsim.opcounts import OpCounts


class TestSparseConversion:
    def test_roundtrip(self, er_small):
        assert from_sparse(to_sparse(er_small)) == er_small

    def test_from_asymmetric_pattern(self):
        # upper-triangular input is symmetrised
        mat = sp.coo_matrix(([1, 1], ([0, 1], [1, 2])), shape=(3, 3))
        g = from_sparse(mat)
        assert g.num_edges == 2
        assert g.has_edge(1, 0)

    def test_diagonal_dropped(self):
        mat = sp.eye(4).tocoo()
        assert from_sparse(mat).num_edges == 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            from_sparse(sp.coo_matrix((2, 3)))

    def test_to_sparse_is_symmetric_01(self, er_small):
        a = to_sparse(er_small)
        assert (a != a.T).nnz == 0
        assert a.max() == 1 if a.nnz else True


class TestNormalizeEdges:
    def test_empty_input(self):
        edges, n = normalize_edges(np.empty((0, 2), dtype=np.int64))
        assert edges.shape == (0, 2) and n == 0

    def test_canonical_order(self):
        edges, _ = normalize_edges(np.array([[5, 2], [1, 3]]))
        np.testing.assert_array_equal(edges, [[1, 3], [2, 5]])

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            normalize_edges(np.zeros((3, 3), dtype=np.int64))


class TestCostModelEdges:
    def test_zero_everything(self):
        stats = HierarchyStats(0, 0, 0, 0, 0, 0)
        cm = modeled_seconds(OpCounts(), stats, SKYLAKEX)
        assert cm.seconds_single_core == 0.0
        assert cm.total_cycles == 0.0

    def test_memory_bound_dominates(self):
        # all accesses miss to DRAM -> dram cycles dominate
        stats = HierarchyStats(1000, 1000, 1000, 1000, 1000, 0)
        ops = OpCounts(loads=1000, instructions=1000)
        cm = modeled_seconds(ops, stats, SKYLAKEX)
        assert cm.dram_cycles > cm.compute_cycles

    def test_hierarchy_stats_properties(self):
        s = HierarchyStats(
            accesses=100, l1_misses=40, l2_misses=20, llc_misses=5,
            dtlb_accesses=100, dtlb_misses=3,
        )
        assert s.l1_hits == 60
        assert s.l2_hits == 20
        assert s.l3_hits == 15
        assert s.dram_accesses == 5


class TestCacheScaleDerivation:
    def test_registry_dataset_uses_paper_size(self):
        from repro.eval.experiments import cache_scale_for
        from repro.graph import DATASETS, load_dataset

        scale = cache_scale_for("LJGrp")
        ours = load_dataset("LJGrp").nbytes_csx(include_symmetric=False)
        expected = round(DATASETS["LJGrp"].paper_csx_gb * 1e9 / ours)
        assert scale == expected
        assert scale > 100  # our stand-ins are orders of magnitude smaller

    def test_unknown_dataset_falls_back(self):
        from repro.eval.experiments import CACHE_SCALE, cache_scale_for

        assert cache_scale_for("NoSuchDataset") == CACHE_SCALE

    def test_larger_paper_dataset_larger_scale(self):
        from repro.eval.experiments import cache_scale_for

        assert cache_scale_for("UU") > cache_scale_for("LJGrp")


class TestSmallWorldControlDataset:
    def test_not_skewed(self):
        from repro.graph import is_skewed, load_dataset

        assert not is_skewed(load_dataset("SmallWorld"))

    def test_adaptive_dispatches_forward(self):
        from repro.core import count_triangles_adaptive
        from repro.graph import load_dataset

        r = count_triangles_adaptive(load_dataset("SmallWorld"))
        assert r.extra["dispatch"] == "forward-fallback"
