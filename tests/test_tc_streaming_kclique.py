"""Tests for approximate/streaming TC and k-clique counting."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    powerlaw_chung_lu,
    star_graph,
)
from repro.graph.degree import hub_mask_top_k
from repro.tc import (
    StreamingLotusCounter,
    count_kcliques,
    count_kcliques_hub,
    count_triangles_matrix,
    doulion_estimate,
    reservoir_triangle_estimate,
)


class TestDoulion:
    def test_p_one_is_exact(self):
        g = erdos_renyi(200, 0.08, seed=1)
        assert doulion_estimate(g, 1.0) == count_triangles_matrix(g)

    def test_p_zero(self):
        g = erdos_renyi(100, 0.1, seed=2)
        assert doulion_estimate(g, 0.0) == 0.0

    def test_estimate_within_tolerance(self):
        g = powerlaw_chung_lu(3000, 12.0, exponent=2.1, seed=3)
        exact = count_triangles_matrix(g)
        estimates = [doulion_estimate(g, 0.5, seed=s) for s in range(5)]
        mean = np.mean(estimates)
        assert abs(mean - exact) / exact < 0.25

    def test_deterministic_given_seed(self):
        g = erdos_renyi(200, 0.08, seed=4)
        assert doulion_estimate(g, 0.4, seed=7) == doulion_estimate(g, 0.4, seed=7)


class TestReservoir:
    def test_large_reservoir_is_exact(self):
        g = erdos_renyi(120, 0.1, seed=5)
        edges = g.edges()
        est = reservoir_triangle_estimate(edges, reservoir_size=edges.shape[0] + 10)
        assert est == count_triangles_matrix(g)

    def test_small_reservoir_estimates(self):
        g = powerlaw_chung_lu(1500, 10.0, exponent=2.1, seed=6)
        exact = count_triangles_matrix(g)
        edges = g.edges()
        rng = np.random.default_rng(0)
        edges = edges[rng.permutation(edges.shape[0])]
        ests = [
            reservoir_triangle_estimate(edges, reservoir_size=edges.shape[0] // 3, seed=s)
            for s in range(5)
        ]
        assert abs(np.mean(ests) - exact) / exact < 0.5

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            reservoir_triangle_estimate(np.zeros((0, 2)), 0)


class TestWedgeSampling:
    def test_unbiased_on_powerlaw(self):
        from repro.tc import wedge_sampling_estimate

        g = powerlaw_chung_lu(2000, 10.0, exponent=2.1, seed=20)
        exact = count_triangles_matrix(g)
        ests = [wedge_sampling_estimate(g, 20_000, seed=s) for s in range(3)]
        assert abs(np.mean(ests) - exact) / exact < 0.1

    def test_triangle_free(self):
        from repro.graph import cycle_graph
        from repro.tc import wedge_sampling_estimate

        assert wedge_sampling_estimate(cycle_graph(50), 500) == 0.0

    def test_complete_graph_exact_kappa(self):
        from repro.tc import wedge_sampling_estimate

        g = complete_graph(10)
        # every wedge closes: kappa = 1, estimate is exactly W/3 = 120
        assert wedge_sampling_estimate(g, 200, seed=1) == pytest.approx(120.0)

    def test_empty(self):
        from repro.graph import star_graph
        from repro.tc import wedge_sampling_estimate

        assert wedge_sampling_estimate(star_graph(10), 100) == 0.0

    def test_invalid_samples(self, k5):
        from repro.tc import wedge_sampling_estimate

        with pytest.raises(ValueError):
            wedge_sampling_estimate(k5, 0)


class TestStreamingLotus:
    def _stream(self, g, seed=0):
        edges = g.edges()
        rng = np.random.default_rng(seed)
        return edges[rng.permutation(edges.shape[0])]

    def test_exact_when_keeping_everything(self):
        g = powerlaw_chung_lu(800, 8.0, exponent=2.1, seed=7)
        hubs = np.flatnonzero(hub_mask_top_k(g, 20))
        counter = StreamingLotusCounter(hubs, nn_keep_prob=1.0)
        counter.update_many(self._stream(g))
        assert counter.estimate_total() == count_triangles_matrix(g)

    def test_hub_triangles_match_lotus_decomposition(self):
        from repro.core import LotusConfig, count_triangles_lotus

        g = powerlaw_chung_lu(800, 8.0, exponent=2.1, seed=8)
        k = 25
        hubs = np.flatnonzero(hub_mask_top_k(g, k))
        counter = StreamingLotusCounter(hubs)
        counter.update_many(self._stream(g))
        r = count_triangles_lotus(g, LotusConfig(hub_count=k, head_fraction=0.0))
        assert counter.hub_triangles == r.extra["counts"].hub

    def test_hub_estimate_unbiased_under_sampling(self):
        """Dropping NN edges keeps the hub-triangle estimator unbiased and
        much lower-variance than the NNN part (Section 6.2's precision
        claim: most hub-triangle edges are always retained)."""
        g = powerlaw_chung_lu(800, 8.0, exponent=2.0, seed=9)
        hubs = np.flatnonzero(hub_mask_top_k(g, 30))
        exact = StreamingLotusCounter(hubs, nn_keep_prob=1.0)
        exact.update_many(self._stream(g))
        estimates = []
        for s in range(5):
            sampled = StreamingLotusCounter(hubs, nn_keep_prob=0.3, seed=s)
            sampled.update_many(self._stream(g))
            estimates.append(sampled.hub_triangles)
            assert sampled.edges_stored < exact.edges_stored
        mean = np.mean(estimates)
        assert abs(mean - exact.hub_triangles) / exact.hub_triangles < 0.1

    def test_duplicate_and_self_edges_ignored(self):
        counter = StreamingLotusCounter(np.array([0]))
        counter.update(1, 1)
        counter.update(1, 2)
        counter.update(1, 2)
        counter.update(2, 1)
        assert counter.edges_seen == 3  # self edge skipped entirely
        assert counter.edges_stored == 1

    def test_triangle_through_hub(self):
        counter = StreamingLotusCounter(np.array([0]))
        counter.update(0, 1)
        counter.update(0, 2)
        counter.update(1, 2)
        assert counter.hub_triangles == 1
        assert counter.nnn_estimate == 0.0


class TestKClique:
    def test_k3_equals_triangles(self):
        g = erdos_renyi(150, 0.08, seed=10)
        assert count_kcliques(g, 3) == count_triangles_matrix(g)

    def test_complete_graph_closed_form(self):
        from math import comb

        g = complete_graph(10)
        for k in range(1, 6):
            assert count_kcliques(g, k) == comb(10, k)

    def test_k1_k2(self, er_small):
        assert count_kcliques(er_small, 1) == er_small.num_vertices
        assert count_kcliques(er_small, 2) == er_small.num_edges

    def test_no_k4_in_triangle(self):
        assert count_kcliques(complete_graph(3), 4) == 0

    def test_cycle_has_no_cliques(self):
        assert count_kcliques(cycle_graph(12), 3) == 0

    def test_natural_order_agrees(self):
        g = erdos_renyi(100, 0.1, seed=11)
        assert count_kcliques(g, 4) == count_kcliques(g, 4, degree_order=False)

    def test_invalid_k(self, k5):
        with pytest.raises(ValueError):
            count_kcliques(k5, 0)

    def test_hub_decomposition_sums(self):
        g = powerlaw_chung_lu(600, 8.0, exponent=2.0, seed=12)
        d = count_kcliques_hub(g, 3, hub_count=10)
        assert d["hub"] + d["non_hub"] == d["total"]
        assert d["total"] == count_triangles_matrix(g)

    def test_hub_share_grows_with_k(self):
        """The paper's future-work conjecture: hub dominance increases for
        larger cliques (Section 7)."""
        g = powerlaw_chung_lu(1200, 12.0, exponent=2.0, seed=13)
        f3 = count_kcliques_hub(g, 3, hub_count=12)["hub_fraction"]
        f4 = count_kcliques_hub(g, 4, hub_count=12)["hub_fraction"]
        assert f4 >= f3 * 0.98  # allow tiny noise, expect growth

    def test_star_no_cliques_beyond_edges(self):
        assert count_kcliques(star_graph(20), 3) == 0
