"""Determinism of the threaded phase-1 executor and consistency of its
per-tile span metrics.

Triangle counting is a pure integer reduction, so the parallel phase
must be *bit-identical* to the sequential one for any worker count,
tiling policy, or (uneven) tile size — and the per-tile observability
spans must sum exactly to the end-to-end phase span.
"""

from __future__ import annotations

import pytest

from repro.core import build_lotus_graph
from repro.core.count import count_hhh_hhn
from repro.core.tiling import tiles_for_phase1
from repro.graph import powerlaw_chung_lu, rmat
from repro.obs import use_registry
from repro.parallel.executor import count_hhh_hhn_parallel


@pytest.fixture(scope="module")
def skewed_lotus():
    graph = powerlaw_chung_lu(4000, 10.0, exponent=2.0, seed=21)
    return build_lotus_graph(graph)


@pytest.fixture(scope="module")
def web_lotus():
    graph = rmat(11, edge_factor=8, a=0.62, b=0.1266, c=0.1266, seed=22)
    return build_lotus_graph(graph)


@pytest.fixture(scope="module")
def sequential_counts(skewed_lotus, web_lotus):
    return {
        "skewed": sum(count_hhh_hhn(skewed_lotus)),
        "web": sum(count_hhh_hhn(web_lotus)),
    }


@pytest.mark.parametrize("threads", [1, 2, 4])
@pytest.mark.parametrize("policy", ["squared", "edge_balanced"])
def test_parallel_bit_identical_to_sequential(
    skewed_lotus, sequential_counts, threads, policy
):
    got = count_hhh_hhn_parallel(skewed_lotus, threads=threads, policy=policy)
    assert got == sequential_counts["skewed"]


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_parallel_on_web_graph(web_lotus, sequential_counts, threads):
    got = count_hhh_hhn_parallel(web_lotus, threads=threads)
    assert got == sequential_counts["web"]


@pytest.mark.parametrize("degree_threshold", [2, 7, 33, 512])
def test_uneven_tile_sizes(skewed_lotus, sequential_counts, degree_threshold):
    """Low thresholds force splitting of nearly every list, producing many
    small, uneven tiles; the reduction must not change."""
    got = count_hhh_hhn_parallel(
        skewed_lotus, threads=3, degree_threshold=degree_threshold
    )
    assert got == sequential_counts["skewed"]


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_tile_spans_sum_to_phase_span(skewed_lotus, sequential_counts, threads):
    with use_registry() as reg:
        total = count_hhh_hhn_parallel(skewed_lotus, threads=threads)
    assert total == sequential_counts["skewed"]
    phase = reg.find_span("phase1-parallel")
    assert phase is not None
    assert phase.attrs["hits"] == total
    tiles = phase.find_all("tile")
    assert len(tiles) == phase.attrs["tiles"]
    # per-tile metrics reassemble the end-to-end numbers exactly
    assert sum(t.attrs["hits"] for t in tiles) == total
    expected_work = sum(
        t.work for t in tiles_for_phase1(skewed_lotus.he, partitions=2 * threads)
    )
    assert sum(t.attrs["pair_work"] for t in tiles) == expected_work
    if threads > 1:
        batches = phase.find_all("batch")
        assert sum(b.attrs["hits"] for b in batches) == total
        assert sum(b.attrs["tiles"] for b in batches) == len(tiles)
        assert all(b.attrs["queue_wait_s"] >= 0.0 for b in batches)
        # every batch span nests inside the phase span
        assert all(b.elapsed <= phase.elapsed for b in batches)

    snap = reg.snapshot()
    assert snap["counters"]["parallel.sched.tiles"] == len(tiles)
    assert snap["histograms"]["parallel.sched.tile_work"]["count"] == len(tiles)
    assert snap["histograms"]["parallel.sched.tile_work"]["sum"] == pytest.approx(
        float(expected_work)
    )
    if threads > 1:
        assert snap["histograms"]["parallel.sched.queue_wait_s"]["count"] == (
            snap["counters"]["parallel.sched.batches"]
        )


def test_disabled_observability_unchanged_result(skewed_lotus, sequential_counts):
    """The untraced fast path (no registry) returns the same reduction."""
    got = count_hhh_hhn_parallel(skewed_lotus, threads=4)
    assert got == sequential_counts["skewed"]
