"""Tests for the distributed TC simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    PARTITIONERS,
    partition_block,
    partition_degree_balanced,
    partition_hash,
    simulate_distributed_tc,
)
from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    powerlaw_chung_lu,
)
from repro.tc import count_triangles_matrix


class TestPartitioners:
    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_covers_all_vertices(self, name, er_small):
        owner = PARTITIONERS[name](er_small, 4)
        assert owner.size == er_small.num_vertices
        assert owner.min() >= 0 and owner.max() < 4

    def test_block_is_contiguous(self, er_small):
        owner = partition_block(er_small, 3)
        assert (np.diff(owner) >= 0).all()

    def test_degree_balanced_equalises_edges(self):
        g = powerlaw_chung_lu(2000, 10.0, exponent=2.0, seed=1)
        deg = g.degrees()
        owner = partition_degree_balanced(g, 8)
        loads = np.bincount(owner, weights=deg, minlength=8)
        assert loads.max() / loads.mean() < 1.1
        # block partitioning of a skewed graph is much worse
        block_loads = np.bincount(partition_block(g, 8), weights=deg, minlength=8)
        assert block_loads.max() / block_loads.mean() > loads.max() / loads.mean()

    def test_single_worker(self, er_small):
        assert (partition_hash(er_small, 1) == 0).all()

    def test_invalid_workers(self, er_small):
        with pytest.raises(ValueError):
            partition_block(er_small, 0)


class TestSimulation:
    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_exact_count(self, name, workers, er_medium):
        owner = PARTITIONERS[name](er_medium, workers)
        report = simulate_distributed_tc(er_medium, owner, workers)
        assert report.triangles == count_triangles_matrix(er_medium)
        assert report.per_worker_triangles.sum() == report.triangles

    def test_single_worker_no_comm(self, er_medium):
        owner = partition_block(er_medium, 1)
        report = simulate_distributed_tc(er_medium, owner, 1)
        assert report.total_comm_edges == 0
        assert report.work_imbalance == pytest.approx(1.0)

    def test_more_workers_more_comm(self):
        g = powerlaw_chung_lu(1500, 10.0, exponent=2.1, seed=2)
        comms = []
        for w in (2, 4, 8):
            report = simulate_distributed_tc(g, partition_hash(g, w), w)
            comms.append(report.total_comm_edges)
        assert comms[0] <= comms[-1]

    def test_degree_balanced_improves_balance(self):
        g = powerlaw_chung_lu(2000, 12.0, exponent=2.0, seed=3)
        block = simulate_distributed_tc(g, partition_block(g, 8), 8)
        balanced = simulate_distributed_tc(g, partition_degree_balanced(g, 8), 8)
        assert balanced.triangles == block.triangles
        assert balanced.work_imbalance <= block.work_imbalance

    def test_natural_order_also_exact(self, er_medium):
        owner = partition_hash(er_medium, 4)
        report = simulate_distributed_tc(er_medium, owner, 4, degree_order=False)
        assert report.triangles == count_triangles_matrix(er_medium)

    def test_owner_validation(self, k5):
        with pytest.raises(ValueError):
            simulate_distributed_tc(k5, np.zeros(3, dtype=np.int64), 2)
        with pytest.raises(ValueError):
            simulate_distributed_tc(k5, np.full(5, 7), 2)

    def test_complete_graph_all_partitioners(self):
        g = complete_graph(20)
        expected = 1140
        for name, fn in PARTITIONERS.items():
            report = simulate_distributed_tc(g, fn(g, 4), 4)
            assert report.triangles == expected, name

    @given(st.integers(0, 2**31 - 1), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_count_invariant_property(self, seed, workers):
        g = erdos_renyi(80, 0.1, seed=seed)
        owner = partition_hash(g, workers)
        report = simulate_distributed_tc(g, owner, workers)
        assert report.triangles == count_triangles_matrix(g)


class TestPartitionerEdgeCases:
    """Degenerate inputs every partitioner must survive: empty graphs,
    single vertices, more shards than vertices, and degree ties."""

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_zero_vertex_graph(self, name):
        g = empty_graph(0)
        owner = PARTITIONERS[name](g, 4)
        assert owner.size == 0
        assert owner.dtype == np.int64

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_single_vertex_graph(self, name):
        g = empty_graph(1)
        owner = PARTITIONERS[name](g, 4)
        assert owner.size == 1
        assert 0 <= owner[0] < 4

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_more_shards_than_vertices(self, name):
        g = complete_graph(3)
        owner = PARTITIONERS[name](g, 8)
        assert owner.size == 3
        assert owner.min() >= 0 and owner.max() < 8
        report = simulate_distributed_tc(g, owner, 8)
        assert report.triangles == 1
        assert report.per_worker_triangles.size == 8

    def test_degree_ties_are_deterministic(self):
        # every vertex of a cycle has degree 2 — pure tie-breaking
        g = cycle_graph(12)
        a = partition_degree_balanced(g, 3)
        b = partition_degree_balanced(g, 3)
        assert (a == b).all()
        loads = np.bincount(a, weights=g.degrees(), minlength=3)
        assert loads.max() - loads.min() <= 2

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_edgeless_graph_simulates_to_zero(self, name):
        g = empty_graph(10)
        owner = PARTITIONERS[name](g, 3)
        report = simulate_distributed_tc(g, owner, 3)
        assert report.triangles == 0
        assert report.bytes_exchanged == 0
