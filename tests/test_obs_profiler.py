"""Sampling-profiler tests: span attribution, memory accounting, exports,
worker-profile stitching, and the continuous serving mode."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.obs.profiler import (
    ContinuousProfiler,
    MemoryAccountant,
    Profile,
    SamplingProfiler,
    get_profiler,
)
from repro.obs.profexport import (
    render_top_table,
    span_path_index,
    to_collapsed,
    to_speedscope,
    write_collapsed,
    write_speedscope,
)
from repro.obs.spans import (
    add_span_observer,
    remove_span_observer,
    thread_spans,
)


def spin(seconds: float) -> int:
    """Busy loop that keeps Python frames on the stack for the sampler."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(range(200))
    return acc


# --------------------------------------------------------------------------
# Profile: the aggregate data model
# --------------------------------------------------------------------------
class TestProfile:
    def _sample_profile(self) -> Profile:
        p = Profile(interval_s=0.01)
        p.record("s1", "phase1", ("main", "count", "kernel"), 6)
        p.record("s1", "phase1", ("main", "count"), 2)
        p.record("s2", "phase2", ("main", "count", "kernel"), 3)
        p.record("", "(no span)", ("idle",), 1)
        return p

    def test_record_accumulates_counts_and_samples(self):
        p = self._sample_profile()
        assert p.samples == 12
        assert p.stacks[("s1", "phase1", ("main", "count", "kernel"))] == 6

    def test_span_samples_sorted_descending(self):
        p = self._sample_profile()
        totals = p.span_samples()
        assert totals[("s1", "phase1")] == 8
        assert list(totals.values()) == sorted(totals.values(), reverse=True)

    def test_frame_weights_self_vs_cumulative(self):
        p = self._sample_profile()
        weights = p.frame_weights()
        # kernel is the leaf of 9 samples; count leads 2, appears in 11
        assert weights["kernel"] == (9, 9)
        assert weights["count"] == (2, 11)
        assert weights["main"] == (0, 11)

    def test_top_frames_attributes_spans(self):
        p = self._sample_profile()
        top = p.top_frames(2)
        assert top[0]["frame"] == "kernel"
        assert top[0]["spans"] == {"phase1": 6, "phase2": 3}
        assert top[0]["self_share"] == pytest.approx(9 / 12)

    def test_roundtrip_and_merge(self):
        p = self._sample_profile()
        p.dropped = 2
        p.duration_s = 0.5
        back = Profile.from_dict(p.to_dict())
        assert back.stacks == p.stacks
        assert back.samples == p.samples
        assert back.dropped == 2
        merged = Profile(interval_s=0.01)
        merged.merge(p)
        merged.merge_dict(back.to_dict())
        assert merged.samples == 2 * p.samples
        assert merged.dropped == 4
        assert merged.stacks[("s2", "phase2", ("main", "count", "kernel"))] == 6

    def test_summary_digest(self):
        s = self._sample_profile().summary()
        assert s["samples"] == 12
        assert s["distinct_stacks"] == 4
        assert s["span_samples"]["phase1"] == 8
        assert s["top_frames"][0]["frame"] == "kernel"
        json.dumps(s)  # ledger-embeddable


# --------------------------------------------------------------------------
# the cross-thread span registry + observers (repro.obs.spans additions)
# --------------------------------------------------------------------------
class TestThreadSpans:
    def test_innermost_open_span_visible_across_threads(self):
        reg = MetricsRegistry()
        seen = {}
        ready = threading.Event()
        release = threading.Event()

        def work():
            with reg.span("outer", parent=None):
                with reg.span("inner", parent=None):
                    ready.set()
                    release.wait(5)

        t = threading.Thread(target=work)
        t.start()
        try:
            assert ready.wait(5)
            seen = thread_spans()
            assert seen[t.ident].name == "inner"
            assert threading.get_ident() not in seen  # no span open here
        finally:
            release.set()
            t.join()
        assert t.ident not in thread_spans()  # cleaned up on close

    def test_observers_see_open_and_close_and_failures_are_swallowed(self):
        events = []

        class Observer:
            def span_opened(self, span):
                events.append(("open", span.name))

            def span_closed(self, span):
                events.append(("close", span.name))

        class Broken:
            def span_opened(self, span):
                raise RuntimeError("boom")

            def span_closed(self, span):
                raise RuntimeError("boom")

        reg = MetricsRegistry()
        obs, broken = Observer(), Broken()
        add_span_observer(obs)
        add_span_observer(broken)
        try:
            with reg.span("a"):
                with reg.span("b"):
                    pass
        finally:
            remove_span_observer(obs)
            remove_span_observer(broken)
        assert events == [
            ("open", "a"), ("open", "b"), ("close", "b"), ("close", "a"),
        ]
        with reg.span("after"):  # observers removed: no more events
            pass
        assert len(events) == 4


# --------------------------------------------------------------------------
# SamplingProfiler
# --------------------------------------------------------------------------
class TestSamplingProfiler:
    def test_samples_attribute_to_the_open_span(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with SamplingProfiler(interval_s=0.002) as profiler:
                with reg.span("hot-phase"):
                    spin(0.15)
        p = profiler.profile
        assert p.samples > 10
        assert p.duration_s > 0.1
        by_span = {name: c for (_, name), c in p.span_samples().items()}
        assert by_span.get("hot-phase", 0) > 5
        # the busy frames carry the attribution
        assert any(
            "spin" in label for label in p.frame_weights()
        )

    def test_active_profiler_registered_and_cleared(self):
        assert get_profiler() is None
        prof = SamplingProfiler(interval_s=0.01)
        with prof:
            assert get_profiler() is prof
            with pytest.raises(RuntimeError):
                SamplingProfiler(interval_s=0.01).start()
        assert get_profiler() is None

    def test_activate_false_skips_global_registration(self):
        with SamplingProfiler(interval_s=0.01, activate=False):
            assert get_profiler() is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=-1)

    def test_double_start_rejected_and_stop_idempotent(self):
        prof = SamplingProfiler(interval_s=0.01, activate=False)
        prof.start()
        with pytest.raises(RuntimeError):
            prof.start()
        first = prof.stop()
        assert prof.stop() is first  # no-op second stop

    def test_take_profile_swaps_windows(self):
        with SamplingProfiler(interval_s=0.002, activate=False) as prof:
            spin(0.05)
            window = prof.take_profile()
            spin(0.05)
        assert window.samples > 0
        assert prof.profile is not window
        assert prof.profile.samples > 0

    def test_merge_dict_folds_external_profile(self):
        external = Profile(interval_s=0.01)
        external.record("w1", "worker", ("frame",), 7)
        prof = SamplingProfiler(interval_s=0.01, activate=False)
        prof.merge_dict(external.to_dict())
        assert prof.profile.stacks[("w1", "worker", ("frame",))] == 7


# --------------------------------------------------------------------------
# per-span memory accounting
# --------------------------------------------------------------------------
class TestMemoryAccountant:
    def test_span_gains_mem_attrs(self):
        reg = MetricsRegistry()
        with MemoryAccountant():
            with reg.span("alloc") as span:
                blob = bytearray(4 << 20)
            del blob
        assert span.attrs["mem_peak"] >= 4 << 20
        assert isinstance(span.attrs["mem_delta"], int)

    def test_parent_peak_covers_child_allocation(self):
        reg = MetricsRegistry()
        with MemoryAccountant():
            with reg.span("parent") as parent:
                with reg.span("child") as child:
                    blob = bytearray(4 << 20)
                    del blob
        assert child.attrs["mem_peak"] >= 3 << 20  # ~4 MiB net of baseline
        # the child's high-water happened inside the parent's window too
        assert parent.attrs["mem_peak"] >= child.attrs["mem_peak"]

    def test_release_shows_negative_delta(self):
        reg = MetricsRegistry()
        with MemoryAccountant():
            # allocated while tracing, freed inside the span: the span's
            # net traced delta is negative
            blob = bytearray(4 << 20)
            with reg.span("free") as span:
                del blob
        assert span.attrs["mem_delta"] < 0

    def test_profiler_memory_flag_installs_accountant(self):
        import tracemalloc

        reg = MetricsRegistry()
        with use_registry(reg):
            with SamplingProfiler(interval_s=0.01, profile_memory=True):
                assert tracemalloc.is_tracing()
                with reg.span("observed") as span:
                    blob = bytearray(1 << 20)
                del blob
        assert not tracemalloc.is_tracing()  # stopped what it started
        assert "mem_peak" in span.attrs and "mem_delta" in span.attrs


# --------------------------------------------------------------------------
# exports: folded stacks, speedscope, top table
# --------------------------------------------------------------------------
class TestExports:
    def _profile_and_index(self):
        reg = MetricsRegistry()
        with reg.span("lotus") as root:
            with reg.span("phase1") as phase:
                pass
        p = Profile(interval_s=0.01)
        p.record(phase.span_id, "phase1", ("main", "kernel"), 5)
        p.record(root.span_id, "lotus", ("main",), 2)
        p.record("unknown-id", "orphan", ("elsewhere",), 1)
        return p, span_path_index(reg.roots), root, phase

    def test_span_path_index_covers_the_tree(self):
        _, index, root, phase = self._profile_and_index()
        assert index[root.span_id] == ("lotus",)
        assert index[phase.span_id] == ("lotus", "phase1")

    def test_collapsed_lines_carry_span_paths(self):
        p, index, _, _ = self._profile_and_index()
        text = to_collapsed(p, index)
        lines = text.splitlines()
        assert lines[0] == "span:lotus;span:phase1;main;kernel 5"
        assert "span:lotus;main 2" in lines
        # unresolved span ids fall back to the recorded span name
        assert "span:orphan;elsewhere 1" in lines

    def test_collapsed_merges_same_span_name(self):
        p = Profile()
        p.record("id-a", "worker", ("f",), 2)
        p.record("id-b", "worker", ("f",), 3)  # different span, same name
        assert to_collapsed(p) == "span:worker;f 5\n"

    def test_speedscope_document_is_consistent(self, tmp_path):
        p, index, _, _ = self._profile_and_index()
        doc = to_speedscope(p, name="t", span_index=index)
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        (prof,) = doc["profiles"]
        assert prof["type"] == "sampled" and prof["unit"] == "seconds"
        nframes = len(doc["shared"]["frames"])
        assert all(0 <= i < nframes for s in prof["samples"] for i in s)
        assert len(prof["weights"]) == len(prof["samples"])
        assert sum(prof["weights"]) == pytest.approx(8 * 0.01)
        assert prof["endValue"] == pytest.approx(sum(prof["weights"]))
        path = write_speedscope(
            p, str(tmp_path / "p.speedscope.json"), name="t", span_index=index
        )
        assert json.loads(open(path).read()) == json.loads(json.dumps(doc))

    def test_write_collapsed_round_trip(self, tmp_path):
        p, index, _, _ = self._profile_and_index()
        path = write_collapsed(p, str(tmp_path / "p.folded"), index)
        assert open(path).read() == to_collapsed(p, index)

    def test_render_top_table(self):
        p, _, _, _ = self._profile_and_index()
        text = render_top_table(p, 3)
        assert "8 samples" in text
        assert "kernel" in text and "phase1" in text
        empty = render_top_table(Profile(), 3)
        assert "(no samples)" in empty


# --------------------------------------------------------------------------
# worker-profile stitching (telemetry payload path)
# --------------------------------------------------------------------------
class TestWorkerProfileStitching:
    def test_worker_payload_carries_profile(self):
        from repro.obs.telemetry import worker_payload

        wreg = MetricsRegistry()
        with wreg.span("worker"):
            pass
        wprof = Profile()
        wprof.record("wid", "chunk", ("kernel",), 4)
        payload = worker_payload(wreg, 0, 999, profile=wprof)
        assert payload["profile"]["stacks"][0]["count"] == 4
        # dict form passes through untouched; absent profile omits the key
        assert worker_payload(wreg, 0, 999, profile=wprof.to_dict())[
            "profile"
        ] == wprof.to_dict()
        assert "profile" not in worker_payload(wreg, 0, 999)

    def test_stitching_merges_worker_profile_into_active_profiler(self):
        from repro.obs.telemetry import stitch_worker_payloads, worker_payload

        wreg = MetricsRegistry()
        with wreg.span("worker") as wspan:
            with wreg.span("chunk") as chunk:
                pass
        wprof = Profile()
        wprof.record(chunk.span_id, "chunk", ("kernel",), 6)
        payload = worker_payload(wreg, 0, 999, profile=wprof)
        reg = MetricsRegistry()
        with use_registry(reg):
            with SamplingProfiler(interval_s=0.05) as profiler:
                with reg.span("phase1") as phase:
                    stitch_worker_payloads(reg, phase, [payload])
        key = (chunk.span_id, "chunk", ("kernel",))
        assert profiler.profile.stacks[key] == 6
        # the stitched tree resolves the worker-side span id to a path
        # nested under phase1 — which is what the exporters rely on
        index = span_path_index(reg.roots)
        assert index[chunk.span_id] == ("phase1", "worker", "chunk")

    def test_stitching_without_active_profiler_is_harmless(self):
        from repro.obs.telemetry import stitch_worker_payloads, worker_payload

        wreg = MetricsRegistry()
        with wreg.span("worker"):
            pass
        wprof = Profile()
        wprof.record("x", "chunk", ("f",), 1)
        reg = MetricsRegistry()
        with reg.span("phase1") as phase:
            stitched = stitch_worker_payloads(
                reg, phase, [worker_payload(wreg, 0, 1, profile=wprof)]
            )
        assert len(stitched) == 1  # spans still grafted, profile dropped


# --------------------------------------------------------------------------
# continuous (serving) mode
# --------------------------------------------------------------------------
class TestContinuousProfiler:
    def test_windows_feed_registry_counters_and_bus(self):
        from repro.obs.telemetry import TelemetryBus, use_bus

        class Capture:
            def __init__(self):
                self.events = []

            def export(self, event):
                self.events.append(event)

            def close(self):
                pass

        reg = MetricsRegistry()
        sink = Capture()
        with use_registry(reg):
            with use_bus(TelemetryBus((sink,))):
                with ContinuousProfiler(
                    reg, interval_s=0.002, window_s=0.08
                ) as cont:
                    with reg.span("serve:dispatch"):
                        spin(0.25)
        assert cont.windows_published >= 2  # rolling windows + final drain
        assert reg.counter("profiler.samples").value > 10
        profile_events = [
            e for e in sink.events if e.get("event") == "profile"
        ]
        assert profile_events
        assert sum(e["samples"] for e in profile_events) == (
            reg.counter("profiler.samples").value
        )
        assert cont.last_window is not None

    def test_invalid_window_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            ContinuousProfiler(reg, window_s=0)


# --------------------------------------------------------------------------
# end-to-end: process backend workers sample themselves
# --------------------------------------------------------------------------
class TestProcessBackendProfiling:
    def test_worker_frames_attributed_under_phase1(self):
        from repro.core import build_lotus_graph
        from repro.graph import load_dataset
        from repro.parallel.procpool import count_hhh_hhn_processes

        lotus = build_lotus_graph(load_dataset("Twtr10"))
        with use_registry() as reg:
            with SamplingProfiler(interval_s=0.001) as profiler:
                count_hhh_hhn_processes(lotus, workers=2)
        phase = reg.find_span("phase1-processes")
        assert phase is not None
        worker_ids = {
            s.span_id for w in phase.find_all("worker") for s in w.iter_spans()
        }
        assert worker_ids
        p = profiler.profile
        worker_samples = sum(
            count
            for (span_id, _, _), count in p.stacks.items()
            if span_id in worker_ids
        )
        assert worker_samples > 0  # workers sampled themselves and merged
        # and the export path nests those frames under phase1
        index = span_path_index(reg.roots)
        doc = to_speedscope(p, span_index=index)
        frames = [f["name"] for f in doc["shared"]["frames"]]
        nested = [
            [frames[i] for i in sample]
            for sample in doc["profiles"][0]["samples"]
            if "span:worker" in {frames[i] for i in sample}
        ]
        assert nested
        for names in nested:
            assert names.index("span:phase1-processes") < names.index(
                "span:worker"
            )
