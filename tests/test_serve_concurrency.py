"""Concurrency stress test of the query service (PR acceptance test).

Eight client threads fire mixed queries over three distinct graphs at an
engine whose cache only holds two entries, forcing continuous hits,
misses and evictions while micro-batching coalesces whatever lands
together.  Invariants checked:

* every result equals the sequential oracle for its graph — concurrency
  and cache churn never change an answer;
* no deadlock — every wait carries a global timeout, so a hang fails
  the test instead of wedging the suite;
* the disjoint cache outcomes (hit + miss + eviction) sum exactly to
  the number of count queries served.
"""

import random
import threading

import pytest

from repro.graph import erdos_renyi, powerlaw_chung_lu
from repro.obs import use_registry
from repro.serve import QueryEngine, QueryRequest, StructureCache
from repro.tc import count_triangles_forward

# generous wall-clock bound for any single wait; the whole test finishes
# in a few seconds when healthy
GLOBAL_TIMEOUT = 120.0

CLIENTS = 8
REQUESTS_PER_CLIENT = 6


@pytest.fixture(scope="module")
def graphs():
    return {
        "er1": erdos_renyi(150, 0.08, seed=101),
        "er2": erdos_renyi(200, 0.06, seed=202),
        "pl": powerlaw_chung_lu(300, 6.0, exponent=2.2, seed=303),
    }


@pytest.fixture(scope="module")
def oracles(graphs):
    return {
        name: count_triangles_forward(g).triangles for name, g in graphs.items()
    }


def _client(engine, graphs, plan, out, errors, barrier):
    try:
        barrier.wait(timeout=GLOBAL_TIMEOUT)
        for name, algorithm in plan:
            result = engine.query(
                QueryRequest(graph=graphs[name], algorithm=algorithm),
                wait_timeout=GLOBAL_TIMEOUT,
            )
            out.append((name, result))
    except Exception as exc:  # surfaced in the main thread
        errors.append(exc)


def test_concurrent_clients_match_sequential_oracle(graphs, oracles):
    rng = random.Random(7)
    plans = [
        [
            (rng.choice(list(graphs)), rng.choice(["lotus", "lotus", "forward"]))
            for _ in range(REQUESTS_PER_CLIENT)
        ]
        for _ in range(CLIENTS)
    ]
    results: list = []
    errors: list = []
    barrier = threading.Barrier(CLIENTS)
    with use_registry() as reg:
        cache = StructureCache(max_entries=2)  # 3 graphs -> constant churn
        with QueryEngine(cache, max_queue=128, max_batch=8) as engine:
            threads = [
                threading.Thread(
                    target=_client,
                    args=(engine, graphs, plan, results, errors, barrier),
                    daemon=True,
                )
                for plan in plans
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=GLOBAL_TIMEOUT)
                assert not t.is_alive(), "client thread hung: engine deadlocked"
        assert not errors, errors

        total = CLIENTS * REQUESTS_PER_CLIENT
        assert len(results) == total
        for name, result in results:
            assert result.ok, (name, result.status, result.error)
            assert result.triangles == oracles[name], name
            assert result.cache in ("hit", "miss", "eviction")

        # disjoint outcome counters sum to the number of count queries
        counters = reg.family("serve")["counters"]
        outcome_sum = (
            counters.get("serve.cache.hit", 0)
            + counters.get("serve.cache.miss", 0)
            + counters.get("serve.cache.eviction", 0)
        )
        assert outcome_sum == total
        assert counters["serve.requests.submitted"] == total
        assert counters["serve.requests.completed"] == total

        # the cache's own totals agree with the registry
        stats = cache.stats()
        assert stats["hits"] == counters.get("serve.cache.hit", 0)
        assert stats["misses"] == counters.get("serve.cache.miss", 0)
        assert stats["evicting_misses"] == counters.get("serve.cache.eviction", 0)
        # with 3 graphs and 2 slots there must be real churn
        assert stats["evicting_misses"] >= 1
        assert stats["entries"] <= 2


def test_snapshot_isolated_reads_under_streaming_writer():
    """Eight readers race a writer that streams dynamic updates.

    Every count result carries the version of the snapshot it was served
    from; a pre-simulated shadow :class:`DynamicGraph` (verified against
    full recounts) supplies the per-version oracle, so the invariant is
    *snapshot isolation*: whatever interleaving the dispatcher chooses, a
    result must exactly equal its own version's recount — never a blend
    of two versions.  The disjoint cache outcome counters must still
    partition the cache-served count queries exactly (``maintained``
    reads are served from the session, outside the cache)."""
    from repro.dynamic import DynamicGraph

    graph = erdos_renyi(150, 0.06, seed=17)
    rng = random.Random(23)

    # pre-simulate the update stream: version -> exact triangle oracle
    shadow = DynamicGraph(graph)
    expected = {None: shadow.triangles, 0: shadow.triangles}
    batches: list[tuple[str, list[list[int]]]] = []
    for i in range(16):
        if i % 2 == 0:
            fresh: list[list[int]] = []
            while len(fresh) < 5:
                u, v = rng.randrange(150), rng.randrange(150)
                if u != v and not shadow.has_edge(u, v):
                    if [min(u, v), max(u, v)] not in fresh:
                        fresh.append([min(u, v), max(u, v)])
            batches.append(("insert", fresh))
            shadow.insert_edges(fresh)
        else:
            edges = shadow.snapshot().graph.edges()
            take = sorted(rng.sample(range(edges.shape[0]), 5))
            victims = [[int(u), int(v)] for u, v in edges[take]]
            batches.append(("delete", victims))
            shadow.delete_edges(victims)
        recount = count_triangles_forward(shadow.snapshot().graph).triangles
        assert shadow.triangles == recount  # oracle is itself recount-checked
        expected[shadow.version] = shadow.triangles
    assert shadow.version == len(batches)

    results: list = []
    errors: list = []
    writer_done = threading.Event()
    first_update_applied = threading.Event()

    def writer(engine):
        try:
            for op, edges in batches:
                r = engine.query(
                    QueryRequest(graph=graph, op=op, edges=edges),
                    wait_timeout=GLOBAL_TIMEOUT,
                )
                assert r.ok, r.error
                assert r.applied == len(edges), (op, r.applied, r.rejected)
                first_update_applied.set()
        except Exception as exc:
            errors.append(exc)
        finally:
            writer_done.set()
            first_update_applied.set()

    def reader():
        try:
            first_update_applied.wait(timeout=GLOBAL_TIMEOUT)
            done_seen = 0
            while done_seen < 2:  # a couple of post-quiescence reads too
                if writer_done.is_set():
                    done_seen += 1
                algorithm = rng.choice(["forward", "lotus", "maintained"])
                result = engine.query(
                    QueryRequest(graph=graph, algorithm=algorithm),
                    wait_timeout=GLOBAL_TIMEOUT,
                )
                results.append(result)
        except Exception as exc:
            errors.append(exc)

    with use_registry() as reg:
        cache = StructureCache(max_entries=2)  # churn across versions
        with QueryEngine(cache, max_queue=256, max_batch=8) as engine:
            threads = [threading.Thread(target=reader, daemon=True)
                       for _ in range(CLIENTS)]
            wthread = threading.Thread(target=lambda: writer(engine),
                                       daemon=True)
            for t in threads:
                t.start()
            wthread.start()
            for t in [wthread, *threads]:
                t.join(timeout=GLOBAL_TIMEOUT)
                assert not t.is_alive(), "thread hung: engine deadlocked"
        assert not errors, errors

        cached_reads = 0
        maintained_reads = 0
        versions_seen = set()
        for result in results:
            assert result.ok, (result.status, result.error)
            versions_seen.add(result.version)
            # THE invariant: a result equals its own version's oracle
            assert result.version in expected
            assert result.triangles == expected[result.version], (
                result.algorithm, result.version,
            )
            if result.algorithm == "maintained":
                maintained_reads += 1
                assert result.cache is None
            else:
                cached_reads += 1
                assert result.cache in ("hit", "miss", "eviction")
        assert maintained_reads + cached_reads == len(results)

        # outcome counters partition exactly the cache-served lookups
        counters = reg.family("serve")["counters"]
        outcome_sum = (
            counters.get("serve.cache.hit", 0)
            + counters.get("serve.cache.miss", 0)
            + counters.get("serve.cache.eviction", 0)
        )
        assert outcome_sum == cached_reads
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] + stats["evicting_misses"] == (
            cached_reads
        )
        # the writer really did race the readers onto multiple versions
        assert len(versions_seen) >= 1
        assert expected[shadow.version] == count_triangles_forward(
            shadow.snapshot().graph
        ).triangles


def test_concurrent_submitters_respect_admission_control(graphs):
    """Saturating a tiny queue from many threads either admits or raises
    QueueFullError — never blocks, never loses a ticket."""
    from repro.serve import QueueFullError

    engine = QueryEngine(StructureCache(), max_queue=4)  # not started
    admitted: list = []
    rejected: list = []
    lock = threading.Lock()

    def submitter():
        try:
            t = engine.submit(QueryRequest(graph=graphs["er1"]))
            with lock:
                admitted.append(t)
        except QueueFullError:
            with lock:
                rejected.append(1)

    threads = [threading.Thread(target=submitter) for _ in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=GLOBAL_TIMEOUT)
        assert not t.is_alive()
    assert len(admitted) == 4
    assert len(rejected) == 8
    engine.start()
    for t in admitted:
        assert t.result(timeout=GLOBAL_TIMEOUT).ok
    engine.stop()
