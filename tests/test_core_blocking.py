"""Tests for blocked HNN counting (Section 7 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LotusConfig,
    blocked_arc_order,
    build_lotus_graph,
    count_hnn,
    count_hnn_blocked,
    phase2_blocked_trace,
)
from repro.graph import erdos_renyi, powerlaw_chung_lu
from repro.memsim import MemoryHierarchy, SKYLAKEX
from repro.memsim.trace import lotus_layout, lotus_phase2_trace


@pytest.fixture(scope="module")
def lotus():
    return build_lotus_graph(powerlaw_chung_lu(5000, 12.0, exponent=2.05, seed=13))


class TestBlockedCount:
    @pytest.mark.parametrize("block_size", [1, 64, 1024, 10**9])
    def test_equals_unblocked(self, lotus, block_size):
        assert count_hnn_blocked(lotus, block_size) == count_hnn(lotus)

    def test_invalid_block_size(self, lotus):
        with pytest.raises(ValueError):
            count_hnn_blocked(lotus, 0)

    @given(st.integers(0, 2**31 - 1), st.sampled_from([1, 7, 100, 5000]))
    @settings(max_examples=10, deadline=None)
    def test_property_block_invariance(self, seed, block_size):
        g = erdos_renyi(150, 0.08, seed=seed)
        l = build_lotus_graph(g, LotusConfig(hub_count=10))
        assert count_hnn_blocked(l, block_size) == count_hnn(l)


class TestBlockedOrder:
    def test_is_permutation(self, lotus):
        order = blocked_arc_order(lotus, 256)
        assert sorted(order) == list(range(lotus.nhe.num_edges))

    def test_blocks_are_grouped(self, lotus):
        block_size = 256
        order = blocked_arc_order(lotus, block_size)
        dst = lotus.nhe.indices.astype(np.int64)[order]
        blocks = dst // block_size
        assert (np.diff(blocks) >= 0).all()


class TestBlockedTrace:
    def test_same_random_access_volume(self, lotus):
        """Blocking reorders accesses; the set of HE prefix reads is the
        same, so trace sizes stay within the stream-segment slack."""
        layout = lotus_layout(lotus)
        base = lotus_phase2_trace(lotus, layout)
        blocked = phase2_blocked_trace(lotus, 512, layout)
        assert blocked.size >= base.size * 0.5
        assert blocked.size <= base.size * 3

    def test_blocking_reduces_llc_misses_on_web_graph(self):
        """The Section-7 conjecture: limiting the random-access domain
        improves HNN locality when HE is large relative to the cache and
        the neighbours are scattered — the web-graph stand-ins.  (On
        small social graphs, whose HE accesses already concentrate on a
        few hub rows, the extra re-streaming can outweigh the gain; the
        paper phrases this as "may be further improved".)"""
        from repro.graph import load_dataset

        l = build_lotus_graph(load_dataset("UU"))
        machine = SKYLAKEX.scaled(1024)
        layout = lotus_layout(l)
        h_base = MemoryHierarchy(machine)
        h_base.access_lines(lotus_phase2_trace(l, layout))
        h_blk = MemoryHierarchy(machine)
        h_blk.access_lines(phase2_blocked_trace(l, 512, layout))
        assert h_blk.stats().llc_misses < h_base.stats().llc_misses
