"""Tests for the reuse-distance analyzer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.reuse import lru_hit_curve, reuse_distance_histogram


def brute_force_distances(trace):
    """Reference: reuse distance via explicit LRU stack."""
    stack: list[int] = []
    distances = []
    for b in trace:
        if b in stack:
            d = stack.index(b)
            distances.append(d)
            stack.remove(b)
        else:
            distances.append(None)  # cold
        stack.insert(0, b)
    return distances


class TestReuseDistance:
    def test_repeated_single_block(self):
        p = reuse_distance_histogram(np.array([5, 5, 5, 5]))
        assert p.cold == 1
        assert p.histogram[0] == 3

    def test_two_alternating(self):
        p = reuse_distance_histogram(np.array([1, 2, 1, 2, 1]))
        assert p.cold == 2
        assert p.histogram[1] == 3  # every reuse skips one distinct block

    def test_streaming_never_reuses(self):
        p = reuse_distance_histogram(np.arange(100))
        assert p.cold == 100
        assert p.histogram.sum() == 0

    def test_empty(self):
        p = reuse_distance_histogram(np.array([], dtype=np.int64))
        assert p.total == 0 and p.hit_rate(10) == 0.0

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_matches_lru_stack(self, trace):
        p = reuse_distance_histogram(np.array(trace))
        expected = brute_force_distances(trace)
        assert p.cold == sum(1 for d in expected if d is None)
        for d in range(p.histogram.size):
            assert p.histogram[d] == sum(1 for e in expected if e == d)

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=80), st.integers(1, 20))
    @settings(max_examples=40)
    def test_hit_rate_matches_lru_simulation(self, trace, capacity):
        """hit_rate(C) must equal a literal fully-associative LRU of size C."""
        p = reuse_distance_histogram(np.array(trace))
        # literal fully-associative LRU: hit iff found within the top
        # `capacity` stack entries; the stack itself is kept unbounded so
        # stack depth equals reuse distance
        stack: list[int] = []
        hits = 0
        for b in trace:
            if b in stack and stack.index(b) < capacity:
                hits += 1
            if b in stack:
                stack.remove(b)
            stack.insert(0, b)
        assert p.hit_rate(capacity) == pytest.approx(hits / len(trace))


class TestHitCurve:
    def test_monotone(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 200, size=5000)
        p = reuse_distance_histogram(trace)
        curve = lru_hit_curve(p, np.array([1, 10, 50, 100, 200, 400]))
        assert (np.diff(curve) >= -1e-12).all()
        # with capacity >= distinct blocks, every non-cold access hits
        assert curve[-1] == pytest.approx(1.0 - p.cold / p.total)

    def test_lotus_phase1_locality(self):
        """The H2H probe stream has far better reuse than Forward's random
        row accesses — the Section 4.5 working-set argument, geometry-free."""
        from repro.core import build_lotus_graph
        from repro.graph import load_dataset
        from repro.graph.reorder import apply_degree_ordering
        from repro.memsim.trace import forward_trace, lotus_phase1_trace

        g = load_dataset("LJGrp")
        og = apply_degree_ordering(g)[0].orient_lower()
        lotus = build_lotus_graph(g)
        cap = 2048  # lines
        p_fwd = reuse_distance_histogram(forward_trace(og))
        p_lot = reuse_distance_histogram(lotus_phase1_trace(lotus))
        assert p_lot.hit_rate(cap) > p_fwd.hit_rate(cap)
