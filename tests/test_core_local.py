"""Tests for hub-aware local triangle counting."""

import networkx as nx
import numpy as np
import pytest

from repro.core import LotusConfig, count_triangles_lotus, lotus_local_counts
from repro.graph import complete_graph, erdos_renyi, powerlaw_chung_lu, star_graph
from repro.tc import count_triangles_matrix, local_triangle_counts


class TestLotusLocalCounts:
    def test_type_totals_match_lotus(self, powerlaw_small):
        cfg = LotusConfig(hub_count=16)
        local = lotus_local_counts(powerlaw_small, cfg)
        full = count_triangles_lotus(powerlaw_small, cfg)
        assert local.counts == full.extra["counts"]

    def test_per_vertex_matches_plain_local(self, er_medium):
        local = lotus_local_counts(er_medium)
        np.testing.assert_array_equal(
            local.per_vertex, local_triangle_counts(er_medium)
        )

    def test_per_vertex_matches_networkx(self):
        g = erdos_renyi(100, 0.1, seed=3)
        h = nx.Graph()
        h.add_nodes_from(range(100))
        h.add_edges_from(map(tuple, g.edges()))
        expected = nx.triangles(h)
        local = lotus_local_counts(g)
        assert all(local.per_vertex[v] == expected[v] for v in range(100))

    def test_sum_is_three_times_total(self, powerlaw_small):
        local = lotus_local_counts(powerlaw_small)
        assert local.per_vertex.sum() == 3 * local.total
        assert local.total == count_triangles_matrix(powerlaw_small)

    def test_hub_subcounts_bounded(self, powerlaw_small):
        local = lotus_local_counts(powerlaw_small)
        assert (local.per_vertex_hub <= local.per_vertex).all()
        # a hub's triangles are all hub triangles by definition
        hubs = np.flatnonzero(local.hub_mask)
        np.testing.assert_array_equal(
            local.per_vertex_hub[hubs], local.per_vertex[hubs]
        )

    def test_hub_mask_size(self, powerlaw_small):
        cfg = LotusConfig(hub_count=10)
        local = lotus_local_counts(powerlaw_small, cfg)
        assert local.hub_mask.sum() == 10

    def test_hubs_dominate_local_counts(self):
        """The per-vertex form of Table 1: hub vertices hold a share of
        local triangles far beyond their population share."""
        g = powerlaw_chung_lu(3000, 10.0, exponent=2.0, seed=4)
        local = lotus_local_counts(g)
        hub_share = local.per_vertex[local.hub_mask].sum() / local.per_vertex.sum()
        pop_share = local.hub_mask.mean()
        assert hub_share > 10 * pop_share

    def test_star_and_complete(self):
        assert lotus_local_counts(star_graph(10)).total == 0
        local = lotus_local_counts(complete_graph(6), LotusConfig(hub_count=2))
        assert local.total == 20
        assert (local.per_vertex == 10).all()
