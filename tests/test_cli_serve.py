"""Golden tests for the `serve` / `query` CLI JSON-lines protocol.

The field order of each response line is a published contract (scripting
clients index into it; see docs/serving.md) — these tests snapshot it.
Invocation errors follow the PR 3 contract: one-line ``error: ...`` on
stderr and exit status 2; malformed *request lines* must NOT kill a
serve session — each gets a per-request error response instead.
"""

import json

import pytest

from repro.cli import main
from repro.graph import erdos_renyi, save_edgelist

# golden field orders — update docs/serving.md if these ever change
OK_FIELDS = [
    "id", "ok", "op", "status", "dataset", "algorithm", "triangles",
    "cache", "batched", "queued_ms", "elapsed_ms",
]
OK_FIELDS_WITH_COUNTS = OK_FIELDS + ["counts"]
ERROR_FIELDS = ["id", "ok", "op", "status", "error"]
COUNTS_FIELDS = ["hhh", "hhn", "hnn", "nnn"]
STATS_FIELDS = ["id", "ok", "op", "status", "stats"]


@pytest.fixture
def edgelist_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist(path, g)
    return str(path)


def _serve(tmp_path, lines, *extra_args):
    """Run one serve session over `lines`; returns parsed response dicts."""
    request_file = tmp_path / "requests.jsonl"
    request_file.write_text("\n".join(lines) + "\n")
    assert main(["serve", "--input", str(request_file), *extra_args]) == 0
    return None  # caller reads capsys


class TestServeGolden:
    def test_ok_response_field_order(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [json.dumps({"file": edgelist_file, "id": "q1"})])
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        obj = json.loads(out[0])
        assert list(obj) == OK_FIELDS_WITH_COUNTS
        assert list(obj["counts"]) == COUNTS_FIELDS
        assert obj["id"] == "q1" and obj["ok"] is True and obj["status"] == "ok"
        assert obj["cache"] == "miss"

    def test_non_lotus_omits_counts(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "algorithm": "forward"})],
        )
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == OK_FIELDS

    def test_error_response_field_order(self, tmp_path, capsys):
        _serve(tmp_path, [json.dumps({"dataset": "bogus", "id": "e1"})])
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == ERROR_FIELDS
        assert obj["ok"] is False and obj["status"] == "error"
        assert "unknown dataset" in obj["error"]

    def test_malformed_line_does_not_kill_session(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(
            tmp_path,
            [
                "this is not json",
                json.dumps({"file": edgelist_file, "id": "after"}),
            ],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 2
        assert lines[0]["ok"] is False and "malformed JSON" in lines[0]["error"]
        assert list(lines[0]) == ERROR_FIELDS
        assert lines[1]["ok"] is True and lines[1]["id"] == "after"

    def test_unknown_field_rejected_per_request(self, tmp_path, capsys):
        _serve(tmp_path, ['{"dataset": "UU", "frobnicate": 1}'])
        obj = json.loads(capsys.readouterr().out.strip())
        assert obj["ok"] is False
        assert "unknown request field" in obj["error"]

    def test_stats_op(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [
                json.dumps({"file": edgelist_file}),
                json.dumps({"op": "stats", "id": "s"}),
            ],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        stats = lines[1]
        assert list(stats) == STATS_FIELDS
        assert stats["op"] == "stats" and stats["stats"]["misses"] == 1

    def test_warm_session_hits_cache(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"}) for i in range(3)],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert [l["cache"] for l in lines] == ["miss", "hit", "hit"]
        assert len({l["triangles"] for l in lines}) == 1

    def test_pipeline_mode_coalesces_and_keeps_order(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"}) for i in range(4)],
            "--pipeline",
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert [l["id"] for l in lines] == ["q0", "q1", "q2", "q3"]
        assert all(l["ok"] for l in lines)
        # the whole window lands in one micro-batch
        assert any(l["batched"] > 1 for l in lines)

    def test_metrics_artifact_written(self, tmp_path, edgelist_file, capsys):
        metrics_path = tmp_path / "metrics.json"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file}) for _ in range(2)],
            "--metrics-output", str(metrics_path),
        )
        capsys.readouterr()
        snap = json.loads(metrics_path.read_text())
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["serve.cache.hit"] == 1
        assert snap["counters"]["serve.cache.miss"] == 1
        assert all(k.startswith("serve.") for table in snap.values() for k in table)

    def test_summary_on_stderr(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [json.dumps({"file": edgelist_file})])
        err = capsys.readouterr().err
        assert "served 1 request(s)" in err
        assert "1 miss" in err

    def test_share_session_leaves_no_segment_residue(
        self, tmp_path, edgelist_file, capsys
    ):
        import glob

        before = set(glob.glob("/dev/shm/repro-*"))
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file}) for _ in range(2)],
            "--share",
        )
        capsys.readouterr()
        assert set(glob.glob("/dev/shm/repro-*")) == before


class TestServeErrorContract:
    def test_missing_input_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--input", "/no/such/file.jsonl"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--cache-bytes", "0"),
            ("--cache-entries", "0"),
            ("--max-queue", "0"),
            ("--max-batch", "-1"),
        ],
    )
    def test_bad_budget_exits_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", flag, value, "--input", "x.jsonl"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestQueryGolden:
    def test_warm_query_output(self, edgelist_file, capsys):
        assert main(["query", "--file", edgelist_file, "--id", "one"]) == 0
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == OK_FIELDS_WITH_COUNTS
        assert obj["id"] == "one"
        # default --warm 1 means the reported query runs against a warm cache
        assert obj["cache"] == "hit"

    def test_cold_query(self, edgelist_file, capsys):
        assert main(["query", "--file", edgelist_file, "--warm", "0"]) == 0
        obj = json.loads(capsys.readouterr().out.strip())
        assert obj["cache"] == "miss"

    def test_unknown_dataset_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--dataset", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown dataset" in err

    def test_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--file", "/no/such/graph.txt"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_no_source_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_negative_warm_exits_2(self, edgelist_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--file", edgelist_file, "--warm", "-2"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")
