"""Golden tests for the `serve` / `query` CLI JSON-lines protocol.

The field order of each response line is a published contract (scripting
clients index into it; see docs/serving.md) — these tests snapshot it.
Invocation errors follow the PR 3 contract: one-line ``error: ...`` on
stderr and exit status 2; malformed *request lines* must NOT kill a
serve session — each gets a per-request error response instead.
"""

import json

import pytest

from repro.cli import main
from repro.graph import erdos_renyi, save_edgelist

# golden field orders — update docs/serving.md if these ever change
OK_FIELDS = [
    "id", "ok", "op", "status", "dataset", "algorithm", "triangles",
    "cache", "batched", "queued_ms", "elapsed_ms",
]
OK_FIELDS_WITH_COUNTS = OK_FIELDS + ["counts"]
ERROR_FIELDS = ["id", "ok", "op", "status", "error"]
COUNTS_FIELDS = ["hhh", "hhn", "hnn", "nnn"]
STATS_FIELDS = ["id", "ok", "op", "status", "stats"]


@pytest.fixture
def edgelist_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist(path, g)
    return str(path)


def _serve(tmp_path, lines, *extra_args):
    """Run one serve session over `lines`; returns parsed response dicts."""
    request_file = tmp_path / "requests.jsonl"
    request_file.write_text("\n".join(lines) + "\n")
    assert main(["serve", "--input", str(request_file), *extra_args]) == 0
    return None  # caller reads capsys


class TestServeGolden:
    def test_ok_response_field_order(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [json.dumps({"file": edgelist_file, "id": "q1"})])
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        obj = json.loads(out[0])
        assert list(obj) == OK_FIELDS_WITH_COUNTS
        assert list(obj["counts"]) == COUNTS_FIELDS
        assert obj["id"] == "q1" and obj["ok"] is True and obj["status"] == "ok"
        assert obj["cache"] == "miss"

    def test_non_lotus_omits_counts(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "algorithm": "forward"})],
        )
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == OK_FIELDS

    def test_error_response_field_order(self, tmp_path, capsys):
        _serve(tmp_path, [json.dumps({"dataset": "bogus", "id": "e1"})])
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == ERROR_FIELDS
        assert obj["ok"] is False and obj["status"] == "error"
        assert "unknown dataset" in obj["error"]

    def test_malformed_line_does_not_kill_session(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(
            tmp_path,
            [
                "this is not json",
                json.dumps({"file": edgelist_file, "id": "after"}),
            ],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 2
        assert lines[0]["ok"] is False and "malformed JSON" in lines[0]["error"]
        assert list(lines[0]) == ERROR_FIELDS
        assert lines[1]["ok"] is True and lines[1]["id"] == "after"

    def test_unknown_field_rejected_per_request(self, tmp_path, capsys):
        _serve(tmp_path, ['{"dataset": "UU", "frobnicate": 1}'])
        obj = json.loads(capsys.readouterr().out.strip())
        assert obj["ok"] is False
        assert "unknown request field" in obj["error"]

    def test_stats_op(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [
                json.dumps({"file": edgelist_file}),
                json.dumps({"op": "stats", "id": "s"}),
            ],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        stats = lines[1]
        assert list(stats) == STATS_FIELDS
        assert stats["op"] == "stats" and stats["stats"]["misses"] == 1

    def test_warm_session_hits_cache(self, tmp_path, edgelist_file, capsys):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"}) for i in range(3)],
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert [l["cache"] for l in lines] == ["miss", "hit", "hit"]
        assert len({l["triangles"] for l in lines}) == 1

    def test_pipeline_mode_coalesces_and_keeps_order(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"}) for i in range(4)],
            "--pipeline",
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert [l["id"] for l in lines] == ["q0", "q1", "q2", "q3"]
        assert all(l["ok"] for l in lines)
        # the whole window lands in one micro-batch
        assert any(l["batched"] > 1 for l in lines)

    def test_metrics_artifact_written(self, tmp_path, edgelist_file, capsys):
        metrics_path = tmp_path / "metrics.json"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file}) for _ in range(2)],
            "--metrics-output", str(metrics_path),
        )
        capsys.readouterr()
        snap = json.loads(metrics_path.read_text())
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["serve.cache.hit"] == 1
        assert snap["counters"]["serve.cache.miss"] == 1
        assert all(k.startswith("serve.") for table in snap.values() for k in table)

    def test_summary_on_stderr(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [json.dumps({"file": edgelist_file})])
        err = capsys.readouterr().err
        assert "served 1 request(s)" in err
        assert "1 miss" in err

    def test_share_session_leaves_no_segment_residue(
        self, tmp_path, edgelist_file, capsys
    ):
        import glob

        before = set(glob.glob("/dev/shm/repro-*"))
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file}) for _ in range(2)],
            "--share",
        )
        capsys.readouterr()
        assert set(glob.glob("/dev/shm/repro-*")) == before


class TestServeLiveTelemetry:
    """PR 7 live exporters: --metrics-file / --events-output / slow-query."""

    def test_metrics_file_live_export(self, tmp_path, edgelist_file, capsys):
        live = tmp_path / "live.prom"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file}) for _ in range(2)],
            "--metrics-file", str(live), "--metrics-interval", "0.1",
        )
        capsys.readouterr()
        text = live.read_text()
        assert "# TYPE serve_requests_submitted counter" in text
        assert "serve_requests_submitted 2" in text
        assert "serve_cache_hit 1" in text
        assert not (tmp_path / "live.prom.tmp").exists()

    def test_events_stream_written_during_session(
        self, tmp_path, edgelist_file, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": "q0"})],
            "--events-output", str(events_path),
        )
        assert f"wrote event stream to {events_path}" in capsys.readouterr().err
        events = [json.loads(l) for l in events_path.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert {"span_open", "span_close", "counter"} <= kinds
        counters = {e["name"] for e in events if e["event"] == "counter"}
        assert "serve.requests.submitted" in counters
        assert "serve.requests.completed" in counters
        opens = [e for e in events if e["event"] == "span_open"]
        assert all(e["span_id"] and e["ts"] > 0 for e in opens)

    def test_slow_query_events_emitted(self, tmp_path, edgelist_file, capsys):
        events_path = tmp_path / "events.jsonl"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"})
             for i in range(2)],
            "--events-output", str(events_path), "--slow-query-ms", "0.001",
        )
        capsys.readouterr()
        events = [json.loads(l) for l in events_path.read_text().splitlines()]
        slow = [e for e in events if e["event"] == "slow_query"]
        assert len(slow) == 2  # every query beats a 1us threshold
        for e in slow:
            assert e["latency_ms"] > e["threshold_ms"] == 0.001
            assert e["id"] in ("q0", "q1")
            assert e["status"] == "ok" and e["cache"] in ("hit", "miss")

    def test_no_slow_events_under_generous_threshold(
        self, tmp_path, edgelist_file, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file})],
            "--events-output", str(events_path), "--slow-query-ms", "60000",
        )
        capsys.readouterr()
        events = [json.loads(l) for l in events_path.read_text().splitlines()]
        assert not [e for e in events if e["event"] == "slow_query"]

    def test_bus_disabled_after_session(self, tmp_path, edgelist_file, capsys):
        from repro.obs.telemetry import NULL_BUS, get_bus

        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file})],
            "--events-output", str(tmp_path / "e.jsonl"),
        )
        capsys.readouterr()
        assert get_bus() is NULL_BUS

    def test_profile_mode_emits_profile_events(
        self, tmp_path, edgelist_file, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        _serve(
            tmp_path,
            [json.dumps({"file": edgelist_file, "id": f"q{i}"})
             for i in range(2)],
            "--events-output", str(events_path),
            "--profile", "--profile-interval-ms", "1",
        )
        err = capsys.readouterr().err
        assert "profiler:" in err  # summary line on shutdown
        events = [json.loads(l) for l in events_path.read_text().splitlines()]
        profiles = [e for e in events if e["event"] == "profile"]
        assert profiles  # close() always drains a final window
        for e in profiles:
            assert e["samples"] >= 0 and e["dropped"] >= 0
            assert isinstance(e["top"], list)

    @pytest.mark.parametrize(
        "flag,value",
        [("--slow-query-ms", "0"), ("--slow-query-ms", "-5"),
         ("--metrics-interval", "0"), ("--metrics-interval", "-1"),
         ("--metrics-port", "70000"),
         ("--profile-interval-ms", "0"), ("--profile-interval-ms", "-2"),
         ("--profile-window", "0"), ("--profile-window", "-1")],
    )
    def test_bad_telemetry_flag_exits_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", flag, value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1


# golden Prometheus exposition — the exact text a scraper sees; update
# docs/observability.md if the format ever changes
PROM_SNAPSHOT = {
    "counters": {"serve.requests.submitted": 5, "serve.cache.hit": 3},
    "gauges": {"serve.cache_bytes": 1024.0, "serve.hit_rate": 0.75},
    "histograms": {
        "serve.latency_seconds": {
            "buckets": [0.1, 1.0],
            "counts": [2, 1, 1],
            "count": 4,
            "sum": 3.5,
            "min": 0.05,
            "max": 2.0,
        }
    },
}

PROM_GOLDEN = """\
# TYPE serve_cache_bytes gauge
serve_cache_bytes 1024
# TYPE serve_cache_hit counter
serve_cache_hit 3
# TYPE serve_hit_rate gauge
serve_hit_rate 0.75
# TYPE serve_latency_seconds histogram
serve_latency_seconds_bucket{le="0.1"} 2
serve_latency_seconds_bucket{le="1"} 3
serve_latency_seconds_bucket{le="+Inf"} 4
serve_latency_seconds_sum 3.5
serve_latency_seconds_count 4
# TYPE serve_requests_submitted counter
serve_requests_submitted 5
"""


class TestMetricsCommand:
    """`repro metrics`: Prometheus rendering of recorded snapshots."""

    def test_golden_exposition_from_snapshot_file(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(PROM_SNAPSHOT))
        assert main(["metrics", "--input", str(snap)]) == 0
        assert capsys.readouterr().out == PROM_GOLDEN

    def test_labels_applied_to_every_sample(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(PROM_SNAPSHOT))
        assert main([
            "metrics", "--input", str(snap), "--label", "job=repro",
        ]) == 0
        out = capsys.readouterr().out
        assert 'serve_cache_hit{job="repro"} 3' in out
        assert 'serve_latency_seconds_bucket{job="repro",le="+Inf"} 4' in out
        assert 'serve_latency_seconds_sum{job="repro"} 3.5' in out

    def test_reads_report_and_record_wrappers(self, tmp_path, capsys):
        wrapped = tmp_path / "report.json"
        wrapped.write_text(json.dumps({"metrics": PROM_SNAPSHOT}))
        assert main(["metrics", "--input", str(wrapped)]) == 0
        assert capsys.readouterr().out == PROM_GOLDEN

    def test_reads_ledger_run(self, tmp_path, capsys):
        from repro.obs import use_registry
        from repro.obs.ledger import Ledger, build_run_record

        with use_registry() as reg:
            reg.counter("serve.requests.submitted").add(9)
        Ledger(tmp_path / "runs").append(
            build_run_record(reg, command="serve", config={"command": "serve"})
        )
        assert main([
            "metrics", "--run", "latest", "--ledger", str(tmp_path / "runs"),
        ]) == 0
        assert "serve_requests_submitted 9" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["metrics"],  # neither source
            ["metrics", "--input", "a.json", "--run", "latest"],  # both
            ["metrics", "--input", "/nonexistent.json"],
            ["metrics", "--label", "nokey"],
        ],
    )
    def test_usage_errors_exit_2(self, argv, tmp_path, capsys):
        if "nokey" in argv:
            snap = tmp_path / "snap.json"
            snap.write_text(json.dumps(PROM_SNAPSHOT))
            argv = argv + ["--input", str(snap)]
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_non_metrics_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"spans": []}))
        with pytest.raises(SystemExit) as exc:
            main(["metrics", "--input", str(bad)])
        assert exc.value.code == 2
        assert "no metrics found" in capsys.readouterr().err


class TestServeErrorContract:
    def test_missing_input_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--input", "/no/such/file.jsonl"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--cache-bytes", "0"),
            ("--cache-entries", "0"),
            ("--max-queue", "0"),
            ("--max-batch", "-1"),
        ],
    )
    def test_bad_budget_exits_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", flag, value, "--input", "x.jsonl"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestQueryGolden:
    def test_warm_query_output(self, edgelist_file, capsys):
        assert main(["query", "--file", edgelist_file, "--id", "one"]) == 0
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == OK_FIELDS_WITH_COUNTS
        assert obj["id"] == "one"
        # default --warm 1 means the reported query runs against a warm cache
        assert obj["cache"] == "hit"

    def test_cold_query(self, edgelist_file, capsys):
        assert main(["query", "--file", edgelist_file, "--warm", "0"]) == 0
        obj = json.loads(capsys.readouterr().out.strip())
        assert obj["cache"] == "miss"

    def test_unknown_dataset_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--dataset", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown dataset" in err

    def test_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--file", "/no/such/graph.txt"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_no_source_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_negative_warm_exits_2(self, edgelist_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--file", edgelist_file, "--warm", "-2"])
        assert exc.value.code == 2
        assert capsys.readouterr().err.startswith("error:")
