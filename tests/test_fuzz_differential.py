"""The property-based differential fuzz harness (`repro.eval.fuzz`).

Three layers of assurance:

* the **property** holds: a seeded corpus across all case families finds
  zero mismatches between any counter (algorithms × intersect kernels ×
  execution backends) and the dense ``trace(A^3)/6`` oracle — and when a
  mismatch *would* exist, the assertion message carries the shrunk
  reproduction snippet;
* the **harness hunts**: a deliberately broken intersect kernel
  (classic off-by-one) is detected and minimised to a small witness —
  proving the fuzzer can actually find counting bugs, not just pass;
* the **machinery is sound**: generation is deterministic per seed,
  every family is reachable, minimisation preserves failure and only
  ever deletes edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import fuzz
from repro.eval.fuzz import (
    CASE_KINDS,
    FuzzCase,
    check_case,
    dense_oracle,
    format_case,
    fuzz_counters,
    minimize_case,
    random_case,
    run_fuzz,
)
from repro.graph.build import from_edges

# smaller than the 200-case CI smoke corpus, but every family appears
FUZZ_CASES = 60
FUZZ_SEED = 1234


# --------------------------------------------------------------------------
# the property
# --------------------------------------------------------------------------
def test_fuzz_corpus_finds_no_mismatches():
    report = run_fuzz(cases=FUZZ_CASES, seed=FUZZ_SEED)
    failure = report["failure"]
    assert failure is None, (
        f"differential mismatch (seed {failure and failure['seed']}):\n"
        + "\n".join(failure["mismatches"])
        + f"\nshrunk to {failure['shrunk_edges']} edges:\n{failure['repro']}"
    )
    # the corpus exercised more than one family
    assert len(report["kinds"]) >= 4


def test_oracle_on_known_graphs():
    # triangle-free path
    path = from_edges(np.array([[0, 1], [1, 2], [2, 3]]), num_vertices=4)
    assert dense_oracle(path) == 0
    # K4 has C(4,3) = 4 triangles
    u, v = np.triu_indices(4, k=1)
    k4 = from_edges(np.column_stack([u, v]), num_vertices=4)
    assert dense_oracle(k4) == 4
    # empty graph
    empty = from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices=0)
    assert dense_oracle(empty) == 0


def test_counter_matrix_covers_kernels_and_backends():
    names = set(fuzz_counters())
    assert {"lotus", "forward", "matrix", "lotus-threads", "lotus-processes"} <= names
    from repro.tc.intersect import INTERSECT_KERNELS

    assert {f"forward-kernel:{k}" for k in INTERSECT_KERNELS} <= names


# --------------------------------------------------------------------------
# the harness hunts: mutation detection
# --------------------------------------------------------------------------
def test_injected_off_by_one_is_caught_and_shrunk(monkeypatch):
    from repro.tc import intersect

    real = intersect.intersect_count_merge

    def off_by_one(a, b):
        count = real(a, b)
        return count + 1 if (len(a) and len(b)) else count

    monkeypatch.setitem(intersect.INTERSECT_KERNELS, "merge", off_by_one)
    # restrict to the kernel-driven counter: fast, and isolates the lookup
    counters = {
        "forward-kernel:merge": fuzz_counters()["forward-kernel:merge"]
    }
    report = run_fuzz(cases=50, seed=0, counters=counters)
    failure = report["failure"]
    assert failure is not None, "harness failed to detect a broken kernel"
    assert any("forward-kernel:merge" in m for m in failure["mismatches"])
    assert failure["shrunk_edges"] <= failure["original_edges"]
    assert failure["shrunk_edges"] <= 4  # a tiny witness, not the raw case
    assert "from_edges" in failure["repro"]  # runnable repro snippet


def test_broken_backend_is_caught(monkeypatch):
    """A mutation in the shared tile runner is seen by the backend counters."""
    import repro.parallel.executor as executor

    real = executor.run_tile_batch

    def off_by_one(lotus, batch):
        hhh, hhn = real(lotus, batch)
        return hhh + 1, hhn

    monkeypatch.setattr(executor, "run_tile_batch", off_by_one)
    counters = {"lotus-threads": fuzz_counters()["lotus-threads"]}
    report = run_fuzz(cases=60, seed=3, counters=counters)
    assert report["failure"] is not None


# --------------------------------------------------------------------------
# machinery
# --------------------------------------------------------------------------
def test_generation_is_deterministic():
    for seed in range(30):
        a, b = random_case(seed), random_case(seed)
        assert a.kind == b.kind and a.num_vertices == b.num_vertices
        np.testing.assert_array_equal(a.edges, b.edges)


def test_every_family_reachable():
    kinds = {random_case(seed).kind for seed in range(120)}
    assert kinds == set(CASE_KINDS)


def test_cases_build_valid_graphs():
    for seed in range(40):
        graph = random_case(seed).graph()
        graph.validate()


def test_minimize_preserves_failure_and_only_deletes():
    # failure := "contains a triangle"; minimal witness is 3 edges
    u, v = np.triu_indices(6, k=1)
    case = FuzzCase(0, "clique", 6, np.column_stack([u, v]).astype(np.int64))

    def has_triangle(c: FuzzCase) -> bool:
        return dense_oracle(c.graph()) > 0

    shrunk = minimize_case(case, has_triangle)
    assert has_triangle(shrunk)
    assert len(shrunk.edges) == 3
    original = {tuple(e) for e in case.edges.tolist()}
    assert {tuple(e) for e in shrunk.edges.tolist()} <= original


def test_format_case_is_executable():
    case = random_case(17)
    namespace: dict = {}
    exec(format_case(case), namespace)  # noqa: S102 - test-only snippet
    graph = namespace["graph"]
    assert graph.num_vertices == case.num_vertices
    assert dense_oracle(graph) == dense_oracle(case.graph())


def test_cli_entry_point_ok(capsys):
    assert fuzz.main(["--cases", "10", "--seed", "42", "--progress-every", "0"]) == 0
    out = capsys.readouterr().out
    assert "ok: 10 cases" in out


def test_cli_entry_point_reports_failure(monkeypatch, capsys):
    from repro.tc import intersect

    real = intersect.intersect_count_hash

    def broken(a, b):
        count = real(a, b)
        return count + (1 if len(a) > 2 else 0)

    monkeypatch.setitem(intersect.INTERSECT_KERNELS, "hash", broken)
    assert fuzz.main(["--cases", "60", "--seed", "0", "--progress-every", "0"]) == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out and "from_edges" in out
