"""Unit tests of the query service: cache keying, LRU budgets, the
engine's batching / deadline / lifecycle behaviour, and the acceptance
check that a warm-cache query never rebuilds the structure."""

import threading

import pytest

from repro.core.structure import LotusConfig
from repro.graph import erdos_renyi, load_dataset
from repro.obs import use_registry
from repro.serve import (
    EngineStoppedError,
    QueryEngine,
    QueryRequest,
    QueryResult,
    QueueFullError,
    StructureCache,
    structure_key,
)
from repro.tc import count_triangles_forward


@pytest.fixture
def g1():
    return erdos_renyi(150, 0.08, seed=11)


@pytest.fixture
def g2():
    return erdos_renyi(150, 0.08, seed=22)


@pytest.fixture
def g3():
    return erdos_renyi(150, 0.08, seed=33)


class TestStructureKey:
    def test_same_graph_same_key(self, g1):
        assert structure_key(g1) == structure_key(g1)

    def test_key_is_content_addressed(self, g1):
        # a re-built graph with identical bytes shares the key
        twin = erdos_renyi(150, 0.08, seed=11)
        assert structure_key(g1) == structure_key(twin)

    def test_different_graph_different_key(self, g1, g2):
        assert structure_key(g1) != structure_key(g2)

    def test_hub_count_changes_key(self, g1):
        assert structure_key(g1, LotusConfig(hub_count=8)) != structure_key(
            g1, LotusConfig(hub_count=16)
        )


class TestStructureCache:
    def test_miss_then_hit(self, g1):
        cache = StructureCache()
        e1, o1 = cache.get_or_build(g1)
        e2, o2 = cache.get_or_build(g1)
        assert (o1, o2) == ("miss", "hit")
        assert e1 is e2
        assert e2.hits == 1

    def test_entry_budget_evicts_lru(self, g1, g2, g3):
        cache = StructureCache(max_entries=2)
        cache.get_or_build(g1)
        cache.get_or_build(g2)
        _, o3 = cache.get_or_build(g3)  # evicts g1
        assert o3 == "eviction"
        assert len(cache) == 2
        _, o1 = cache.get_or_build(g1)  # rebuilt: evicts g2
        assert o1 == "eviction"
        _, o3b = cache.get_or_build(g3)  # still resident
        assert o3b == "hit"

    def test_byte_budget_evicts(self, g1, g2):
        e1, _ = StructureCache().get_or_build(g1)
        cache = StructureCache(max_bytes=e1.nbytes + 1)
        cache.get_or_build(g1)
        _, o2 = cache.get_or_build(g2)
        assert o2 == "eviction"
        assert len(cache) == 1  # only g2 fits

    def test_newest_entry_never_evicted(self, g1):
        e1, _ = StructureCache().get_or_build(g1)
        cache = StructureCache(max_bytes=max(1, e1.nbytes // 2))
        entry, outcome = cache.get_or_build(g1)
        # over budget, but the sole (newest) entry must survive
        assert outcome == "miss"
        assert cache.keys() == [entry.key]

    def test_outcomes_partition_lookups(self, g1, g2, g3):
        cache = StructureCache(max_entries=2)
        lookups = 0
        for g in (g1, g2, g3, g1, g3, g3, g2):
            cache.get_or_build(g)
            lookups += 1
        s = cache.stats()
        assert s["hits"] + s["misses"] + s["evicting_misses"] == lookups

    def test_clear_empties(self, g1):
        cache = StructureCache()
        cache.get_or_build(g1)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            StructureCache(max_bytes=0)
        with pytest.raises(ValueError):
            StructureCache(max_entries=0)


class TestQueryRequestValidation:
    def test_needs_exactly_one_source(self, g1):
        with pytest.raises(ValueError, match="exactly one"):
            QueryRequest().validate()
        with pytest.raises(ValueError, match="exactly one"):
            QueryRequest(dataset="UU", graph=g1).validate()

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            QueryRequest(dataset="UU", op="frobnicate").validate()

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            QueryRequest(dataset="UU", timeout=0).validate()


class TestQueryEngine:
    def test_query_matches_oracle(self, g1):
        oracle = count_triangles_forward(g1).triangles
        with QueryEngine(StructureCache()) as engine:
            result = engine.query(QueryRequest(graph=g1), wait_timeout=60)
        assert result.ok
        assert result.triangles == oracle
        assert result.counts is not None
        assert sum(result.counts.values()) == oracle

    def test_algorithms_agree_on_cached_structure(self, g1):
        oracle = count_triangles_forward(g1).triangles
        with QueryEngine(StructureCache()) as engine:
            for alg in ("lotus", "forward", "forward-hashed", "edge-iterator"):
                r = engine.query(QueryRequest(graph=g1, algorithm=alg), wait_timeout=60)
                assert r.ok and r.triangles == oracle, alg

    def test_unknown_algorithm_is_error_result(self, g1):
        with QueryEngine(StructureCache()) as engine:
            r = engine.query(QueryRequest(graph=g1, algorithm="nope"), wait_timeout=60)
        assert r.status == "error"
        assert "unknown algorithm" in r.error

    def test_unknown_dataset_is_error_result(self):
        with QueryEngine(StructureCache()) as engine:
            r = engine.query(QueryRequest(dataset="nope"), wait_timeout=60)
        assert r.status == "error"
        assert "unknown dataset" in r.error

    def test_admission_control_rejects_when_full(self, g1):
        engine = QueryEngine(StructureCache(), max_queue=2)  # never started
        engine.submit(QueryRequest(graph=g1))
        engine.submit(QueryRequest(graph=g1))
        with pytest.raises(QueueFullError):
            engine.submit(QueryRequest(graph=g1))

    def test_submit_after_stop_raises(self, g1):
        engine = QueryEngine(StructureCache())
        engine.start()
        engine.stop()
        with pytest.raises(EngineStoppedError):
            engine.submit(QueryRequest(graph=g1))

    def test_stop_drains_queued_to_stopped(self, g1):
        engine = QueryEngine(StructureCache(), max_queue=8)
        tickets = [engine.submit(QueryRequest(graph=g1)) for _ in range(3)]
        engine.stop()  # dispatcher never started
        for t in tickets:
            assert t.result(timeout=5).status == "stopped"

    def test_cancel_before_dispatch(self, g1):
        engine = QueryEngine(StructureCache())
        ticket = engine.submit(QueryRequest(graph=g1))
        ticket.cancel()
        engine.start()
        assert ticket.result(timeout=30).status == "cancelled"
        engine.stop()

    def test_coalescing_shares_one_execution(self, g1):
        oracle = count_triangles_forward(g1).triangles
        calls = []

        def counting_executor(entry, request, backend, workers):
            calls.append(request.id)
            from repro.serve.engine import _default_executor

            return _default_executor(entry, request, backend, workers)

        with use_registry() as reg:
            engine = QueryEngine(
                StructureCache(), max_batch=8, executor=counting_executor
            )
            tickets = [
                engine.submit(QueryRequest(graph=g1, id=f"q{i}")) for i in range(4)
            ]
            engine.start()
            results = [t.result(timeout=60) for t in tickets]
            engine.stop()
            assert all(r.ok and r.triangles == oracle for r in results)
            assert len(calls) == 1  # one execution served all four
            assert all(r.batched == 4 for r in results)
            snap = reg.family("serve")
            assert snap["counters"]["serve.batch.coalesced"] == 3

    def test_cache_counters_sum_to_requests(self, g1, g2):
        with use_registry() as reg:
            with QueryEngine(StructureCache(max_entries=1)) as engine:
                for g in (g1, g2, g1, g2, g2):
                    assert engine.query(QueryRequest(graph=g), wait_timeout=60).ok
            c = reg.family("serve")["counters"]
            total = (
                c.get("serve.cache.hit", 0)
                + c.get("serve.cache.miss", 0)
                + c.get("serve.cache.eviction", 0)
            )
            assert total == 5
            assert c["serve.requests.completed"] == 5

    def test_result_wait_timeout_raises(self, g1):
        engine = QueryEngine(StructureCache())  # never started: no result
        ticket = engine.submit(QueryRequest(graph=g1))
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.05)
        engine.stop()

    def test_latency_split_queued_vs_elapsed(self, g1):
        with QueryEngine(StructureCache()) as engine:
            r = engine.query(QueryRequest(graph=g1), wait_timeout=60)
        assert 0.0 <= r.queued_ms <= r.elapsed_ms


class TestWarmCacheSkipsBuild:
    """Acceptance: a warm-cache query must skip the graph build entirely —
    shown by the serve.cache.hit counter AND the absence of a build
    ("preprocess") span under the warm dispatch."""

    def _dispatch_spans(self, reg):
        return [s for s in reg.iter_spans() if s.name == "serve:dispatch"]

    def test_eu15_warm_query_skips_build(self):
        load_dataset("EU15")  # dataset load itself is lru-cached; warm it
        with use_registry() as reg:
            with QueryEngine(StructureCache()) as engine:
                cold = engine.query(QueryRequest(dataset="EU15"), wait_timeout=600)
                warm = engine.query(QueryRequest(dataset="EU15"), wait_timeout=600)
            assert cold.ok and warm.ok
            assert cold.triangles == warm.triangles
            assert (cold.cache, warm.cache) == ("miss", "hit")
            counters = reg.family("serve")["counters"]
            assert counters["serve.cache.hit"] == 1
            assert counters["serve.cache.miss"] == 1
            dispatches = self._dispatch_spans(reg)
            assert len(dispatches) == 2
            cold_span, warm_span = dispatches
            assert cold_span.attrs["cache"] == "miss"
            assert warm_span.attrs["cache"] == "hit"
            # the cold dispatch built the structure (a "preprocess" span
            # from build_lotus_graph); the warm one must have none
            assert cold_span.find("preprocess") is not None
            assert warm_span.find("preprocess") is None

    def test_warm_skip_on_small_graph(self, g1):
        # same property on a small graph, so the invariant is exercised
        # even when slow tests are deselected
        with use_registry() as reg:
            with QueryEngine(StructureCache()) as engine:
                engine.query(QueryRequest(graph=g1), wait_timeout=60)
                engine.query(QueryRequest(graph=g1), wait_timeout=60)
            cold_span, warm_span = self._dispatch_spans(reg)
            assert cold_span.find("preprocess") is not None
            assert warm_span.find("preprocess") is None


class TestEngineStats:
    def test_stats_shape(self, g1):
        with QueryEngine(StructureCache()) as engine:
            engine.query(QueryRequest(graph=g1), wait_timeout=60)
            stats = engine.stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert "queue_depth" in stats and "running" in stats


class TestSharedCacheDispatch:
    """share=True keeps the structure in shared memory; the process
    backend borrows that segment instead of copying per dispatch."""

    def test_shared_entry_has_manifest(self, g1):
        with StructureCache(share=True) as cache:
            entry, _ = cache.get_or_build(g1)
            assert entry.manifest is not None
            assert entry.manifest["nbytes"] > 0

    def test_process_backend_reuses_segment(self):
        # large enough that the processes backend actually engages
        g = erdos_renyi(600, 0.12, seed=3)
        oracle = count_triangles_forward(g).triangles
        with StructureCache(share=True) as cache:
            with QueryEngine(cache, backend="processes", workers=2) as engine:
                r1 = engine.query(QueryRequest(graph=g), wait_timeout=120)
                # segment must survive the first dispatch (not unlinked)
                r2 = engine.query(QueryRequest(graph=g), wait_timeout=120)
        assert r1.ok and r2.ok
        assert r1.triangles == r2.triangles == oracle
        assert r2.cache == "hit"


class TestQueryResultProjection:
    def test_ok_field_order(self):
        r = QueryResult(
            id="x", op="count", status="ok", dataset="UU", algorithm="lotus",
            triangles=7, cache="hit",
        )
        assert list(r.to_json_dict()) == [
            "id", "ok", "op", "status", "dataset", "algorithm", "triangles",
            "cache", "batched", "queued_ms", "elapsed_ms",
        ]

    def test_error_field_order(self):
        r = QueryResult(id="x", op="count", status="error", error="boom")
        assert list(r.to_json_dict()) == ["id", "ok", "op", "status", "error"]
