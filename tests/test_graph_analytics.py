"""Tests for k-core decomposition and wedge counting."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    powerlaw_chung_lu,
    star_graph,
)
from repro.graph.analytics import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    wedge_count,
)


def _to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.num_vertices))
    h.add_edges_from(map(tuple, g.edges()))
    return h


class TestCoreNumbers:
    def test_matches_networkx(self, er_medium):
        mine = core_numbers(er_medium)
        theirs = nx.core_number(_to_nx(er_medium))
        assert all(mine[v] == theirs[v] for v in range(er_medium.num_vertices))

    def test_complete_graph(self):
        assert (core_numbers(complete_graph(7)) == 6).all()

    def test_cycle(self):
        assert (core_numbers(cycle_graph(10)) == 2).all()

    def test_star(self):
        cores = core_numbers(star_graph(10))
        assert (cores == 1).all()

    def test_empty(self):
        assert core_numbers(empty_graph(4)).sum() == 0
        assert degeneracy(empty_graph(0)) == 0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_vs_networkx(self, seed):
        g = erdos_renyi(100, 0.06, seed=seed)
        mine = core_numbers(g)
        theirs = nx.core_number(_to_nx(g))
        assert all(mine[v] == theirs[v] for v in range(100))


class TestDegeneracy:
    def test_matches_max_core(self, powerlaw_small):
        assert degeneracy(powerlaw_small) == int(core_numbers(powerlaw_small).max())

    def test_ordering_is_permutation(self, er_small):
        order = degeneracy_ordering(er_small)
        assert sorted(order) == list(range(er_small.num_vertices))

    def test_ordering_bounds_forward_degree(self, powerlaw_small):
        """Orienting along a degeneracy-flavoured order keeps out-degrees
        around the degeneracy (the property k-clique counting relies on)."""
        g = powerlaw_small
        order = degeneracy_ordering(g)
        rank = np.empty(g.num_vertices, dtype=np.int64)
        rank[order] = np.arange(g.num_vertices)
        d = degeneracy(g)
        # most vertices should have few earlier-ranked neighbours
        out_degrees = []
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            out_degrees.append(int((rank[nbrs] < rank[v]).sum()))
        assert np.median(out_degrees) <= max(2 * d, 4)


class TestWedges:
    def test_star(self):
        # the hub of a 10-star has C(9,2) = 36 wedges
        assert wedge_count(star_graph(10)) == 36

    def test_triangle(self):
        assert wedge_count(complete_graph(3)) == 3

    def test_transitivity_consistency(self, er_medium):
        from repro.tc import count_triangles_matrix, global_transitivity

        w = wedge_count(er_medium)
        t = count_triangles_matrix(er_medium)
        if w:
            assert global_transitivity(er_medium) == pytest.approx(3 * t / w)
