"""Unit tests for ``repro.dynamic``: graph layer, hub tracker, replay,
``dynamic.*`` metrics and the dynamic-differential fuzz mode.

The hypothesis-driven behavioural properties live in
``test_dynamic_property.py``; this module pins the concrete contracts —
snapshot immutability, compaction invariants, stream parsing shapes,
trajectory accounting, and that the fuzzer both passes on healthy code
and catches a deliberately broken intersect kernel.
"""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    parse_stream_lines,
    replay_stream,
    synthesize_stream,
    write_stream,
)
from repro.graph import erdos_renyi
from repro.obs import use_registry
from repro.tc import count_triangles_forward


@pytest.fixture
def graph():
    return erdos_renyi(120, 0.06, seed=5)


class TestDynamicGraph:
    def test_seeds_count_from_base_when_not_given(self, graph):
        dyn = DynamicGraph(graph)
        assert dyn.triangles == count_triangles_forward(graph).triangles
        assert dyn.version == 0

    def test_snapshot_is_immutable_and_superseded(self, graph):
        dyn = DynamicGraph(graph)
        snap0 = dyn.snapshot()
        assert snap0.graph is graph  # zero-copy while overlay-free
        batch = np.array([[0, 1], [2, 3]], dtype=np.int64)
        fresh = batch[[not dyn.has_edge(u, v) for u, v in batch]]
        if fresh.size == 0:
            pytest.skip("seed produced both probe edges")
        dyn.insert_edges(fresh)
        # the pinned snapshot is untouched; a new one reflects the update
        assert snap0.version == 0
        assert snap0.graph.num_edges == graph.num_edges
        snap1 = dyn.snapshot()
        assert snap1.version == dyn.version == 1
        assert snap1.graph.num_edges == graph.num_edges + fresh.shape[0]
        # repeated calls at one version share the materialisation
        assert dyn.snapshot() is snap1

    def test_compact_changes_representation_only(self, graph):
        from repro.serve.cache import structure_key

        dyn = DynamicGraph(graph, auto_compact_fraction=None)
        dyn.insert_edges([[0, 1]] if not graph.has_edge(0, 1) else [[0, 2]])
        before = (dyn.triangles, dyn.version, dyn.num_edges)
        key_before = structure_key(dyn.snapshot().graph, version=dyn.version)
        folded = dyn.compact()
        assert folded == 1 and dyn.compactions == 1
        assert (dyn.triangles, dyn.version, dyn.num_edges) == before
        # same bytes -> same fingerprint -> cache keys survive compaction
        assert structure_key(
            dyn.snapshot().graph, version=dyn.version
        ) == key_before
        assert dyn.overlay_edges == 0
        # the version-cached snapshot survives (same bytes either way)
        assert np.array_equal(dyn.snapshot().graph.edges(), dyn._base.edges())
        assert dyn.compact() == 0  # idempotent fast path

    def test_auto_compaction_triggers_on_overlay_growth(self):
        small = erdos_renyi(40, 0.1, seed=9)
        dyn = DynamicGraph(small, auto_compact_fraction=0.01)
        # the floor is max(64, fraction * base edges) = 64 overlay edges
        fresh = []
        for u in range(40):
            for v in range(u + 1, 40):
                if not small.has_edge(u, v):
                    fresh.append((u, v))
                if len(fresh) == 70:
                    break
            if len(fresh) == 70:
                break
        dyn.insert_edges(np.array(fresh, dtype=np.int64))
        assert dyn.compactions >= 1
        assert dyn.overlay_edges == 0
        assert dyn.triangles == count_triangles_forward(
            dyn.snapshot().graph
        ).triangles

    def test_out_of_range_batch_aborts_atomically(self, graph):
        dyn = DynamicGraph(graph)
        before = (dyn.triangles, dyn.version)
        with pytest.raises(ValueError, match="out of range"):
            dyn.insert_edges([[0, 1], [0, 10_000]])
        assert (dyn.triangles, dyn.version) == before

    def test_bad_shape_rejected(self, graph):
        with pytest.raises(ValueError, match="shape"):
            DynamicGraph(graph).insert_edges(np.zeros((2, 3), dtype=np.int64))

    def test_unknown_kernel_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown kernel"):
            DynamicGraph(graph, kernel="quantum")

    @pytest.mark.parametrize("kernel", ["binary", "merge", "bitmap"])
    def test_alternate_kernels_stay_exact(self, graph, kernel):
        from repro.tc.intersect import INTERSECT_KERNELS

        if kernel not in INTERSECT_KERNELS:
            pytest.skip(f"kernel {kernel} not registered")
        dyn = DynamicGraph(graph, kernel=kernel)
        stream = synthesize_stream(graph, 80, seed=3)
        replay_stream(dyn, stream, batch=16)
        assert dyn.triangles == count_triangles_forward(
            dyn.snapshot().graph
        ).triangles


class TestHubTracker:
    def test_tracks_and_validates_through_mixed_stream(self, graph):
        dyn = DynamicGraph(graph, track_hubs=True)
        stream = synthesize_stream(graph, 200, seed=11)
        replay_stream(dyn, stream, batch=32, compact_every=3)
        dyn.hubs.validate()
        assert dyn.triangles == count_triangles_forward(
            dyn.snapshot().graph
        ).triangles

    def test_degree_drift_forces_rethreshold(self):
        base = erdos_renyi(200, 0.03, seed=21)
        dyn = DynamicGraph(base, track_hubs=True)
        # promote two previously-quiet vertices far past the hub threshold
        quiet = np.argsort(base.degrees(), kind="stable")[:2]
        batch = []
        for q in quiet:
            for v in range(60):
                if v != q and not dyn.has_edge(int(q), v):
                    batch.append((int(q), v))
        dyn.insert_edges(np.array(batch, dtype=np.int64))
        assert dyn.hubs.rethresholds >= 1
        dyn.hubs.validate()


class TestMetrics:
    def test_dynamic_family_emitted(self, graph):
        with use_registry() as reg:
            dyn = DynamicGraph(graph, auto_compact_fraction=None)
            result = dyn.insert_edges(
                [[u, v] for u in (0, 1) for v in (5, 6) if not dyn.has_edge(u, v)]
            )
            dyn.compact()
            family = reg.family("dynamic")
            counters = family["counters"]
            assert counters["dynamic.update_batches"] == 1
            assert counters["dynamic.updates_applied"] == result.applied
            assert counters["dynamic.edges_inserted"] == result.applied
            assert counters["dynamic.compactions"] == 1
            gauges = family["gauges"]
            assert gauges["dynamic.version"] == dyn.version
            assert gauges["dynamic.triangles"] == dyn.triangles
            assert gauges["dynamic.overlay_edges"] == 0


class TestReplayParsing:
    def test_all_line_shapes(self):
        ops = parse_stream_lines(
            [
                "3 5",              # u v
                "10 4 6",           # ts u v
                "+ 1 2",            # op u v
                "- 1 2",
                "12 delete 7 8",    # ts op u v
                "# a comment",
                "   ",
                "9 9  # trailing comment",
            ]
        )
        assert ops == [
            ("insert", 3, 5),
            ("insert", 4, 6),
            ("insert", 1, 2),
            ("delete", 1, 2),
            ("delete", 7, 8),
            ("insert", 9, 9),
        ]

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ValueError, match="line 2: unknown op"):
            parse_stream_lines(["1 2", "5 smash 1 2"])
        with pytest.raises(ValueError, match="line 1: non-integer"):
            parse_stream_lines(["insert x"])
        with pytest.raises(ValueError, match="line 1: expected 2-4"):
            parse_stream_lines(["1 2 3 4 5"])

    def test_write_then_parse_round_trips(self, tmp_path):
        from repro.dynamic import parse_stream

        ops = [("insert", 1, 2), ("delete", 3, 4), ("insert", 0, 9)]
        path = tmp_path / "stream.txt"
        assert write_stream(str(path), ops) == 3
        assert parse_stream(str(path)) == ops


class TestReplayExecution:
    def test_synthesized_stream_is_replay_consistent(self, graph):
        stream = synthesize_stream(graph, 400, seed=2)
        dyn = DynamicGraph(graph)
        report = replay_stream(dyn, stream, batch=50)
        # only the deliberate noise share may be rejected
        assert report.ops == 400
        assert report.applied >= int(0.8 * report.ops)
        assert report.applied + report.rejected == report.ops
        assert dyn.triangles == count_triangles_forward(
            dyn.snapshot().graph
        ).triangles

    def test_trajectory_accounting_is_closed(self, graph):
        stream = synthesize_stream(graph, 120, seed=4)
        dyn = DynamicGraph(graph, auto_compact_fraction=None)
        seen = []
        report = replay_stream(
            dyn, stream, batch=16, compact_every=2, on_batch=seen.append
        )
        assert [e["batch"] for e in seen] == list(
            range(1, report.batches + 1)
        )
        assert sum(e["ops"] for e in report.trajectory) == report.ops
        assert sum(e["applied"] for e in report.trajectory) == report.applied
        assert report.trajectory[-1]["triangles"] == report.final_triangles
        assert report.final_version == dyn.version
        assert report.compactions >= 1
        data = report.to_json_dict()
        assert data["per_update_seconds"] == report.per_update_seconds
        assert len(data["trajectory"]) == report.batches


class TestDynamicFuzz:
    def test_clean_corpus_has_no_mismatches(self):
        from repro.eval.fuzz import run_dynamic_fuzz

        report = run_dynamic_fuzz(10, seed=100, ops_per_case=30)
        assert report["failure"] is None
        assert report["cases"] == 10

    def test_catches_broken_kernel_and_shrinks(self):
        import repro.tc.intersect as intersect
        from repro.eval.fuzz import check_dynamic_case, run_dynamic_fuzz

        orig = intersect.INTERSECT_KERNELS["binary"]
        intersect.INTERSECT_KERNELS["binary"] = (
            lambda a, b: orig(a, b) + (1 if len(a) and len(b) else 0)
        )
        try:
            report = run_dynamic_fuzz(40, seed=0, ops_per_case=40)
            failure = report["failure"]
            assert failure is not None
            assert failure["shrunk_ops"] <= 5
            assert failure["mismatches"]
            assert "DynamicFuzzCase" in failure["repro"]
        finally:
            intersect.INTERSECT_KERNELS["binary"] = orig
        # the same corpus is clean once the kernel is restored
        from repro.eval.fuzz import random_dynamic_case

        case = random_dynamic_case(failure["seed"], num_ops=40)
        assert check_dynamic_case(case) == []

    def test_case_generation_is_deterministic(self):
        from repro.eval.fuzz import random_dynamic_case

        a = random_dynamic_case(33, num_ops=25)
        b = random_dynamic_case(33, num_ops=25)
        assert a.ops == b.ops
        assert np.array_equal(a.edges, b.edges)
