"""Cross-backend determinism, pinned with the run-ledger machinery.

Two properties:

1. every backend × worker-count combination produces the **same
   triangle counts** and — after dropping the never-gated ``timing``
   tolerance class (which owns all ``parallel.sched.*`` scheduling
   metrics) — the **same flattened metric snapshot**;
2. the backend/workers choice is an input: records from different
   configurations carry **distinct config hashes**, while reruns of the
   same configuration reproduce the same hash.
"""

from __future__ import annotations

import pytest

from repro.core import build_lotus_graph
from repro.core.count import lotus_count_from_structure
from repro.graph import load_dataset
from repro.obs import use_registry
from repro.obs.ledger import (
    build_run_record,
    config_hash,
    flatten_record_metrics,
    ledger_metric_kind,
)

CONFIGS = [
    ("sequential", 1),
    ("threads", 2),
    ("threads", 4),
    ("processes", 1),
    ("processes", 2),
    ("processes", 4),
]


@pytest.fixture(scope="module")
def graph():
    return load_dataset("LJGrp")


@pytest.fixture(scope="module")
def snapshots(graph):
    """One traced run per backend config -> (counts, flattened metrics)."""
    lotus = build_lotus_graph(graph)
    out = {}
    for backend, workers in CONFIGS:
        with use_registry() as registry:
            counts = lotus_count_from_structure(
                lotus, backend=backend, workers=workers
            )
        record = build_run_record(
            registry,
            command="test-backend-determinism",
            config={"backend": backend, "workers": workers},
            graph=graph,
            dataset_name="LJGrp",
            meta={
                "triangles": counts.total,
                "hhh": counts.hhh,
                "hhn": counts.hhn,
                "hnn": counts.hnn,
                "nnn": counts.nnn,
            },
        )
        out[(backend, workers)] = (counts, flatten_record_metrics(record))
    return out


def _deterministic(flat: dict) -> dict:
    return {
        k: v for k, v in flat.items() if ledger_metric_kind(k) != "timing"
    }


def test_counts_identical_across_configs(snapshots):
    reference = snapshots[("sequential", 1)][0]
    for key, (counts, _) in snapshots.items():
        assert counts == reference, f"{key} diverged: {counts} != {reference}"


def test_deterministic_metrics_identical_across_configs(snapshots):
    reference = _deterministic(snapshots[("sequential", 1)][1])
    assert reference  # the filter must keep the counting metrics
    for key, (_, flat) in snapshots.items():
        assert _deterministic(flat) == reference, (
            f"non-timing metric snapshot of {key} diverged"
        )


def test_scheduler_metrics_are_timing_class():
    for key in (
        "counter.parallel.sched.tiles",
        "counter.parallel.sched.chunks",
        "counter.parallel.sched.tasks_stolen",
        "gauge.parallel.sched.shm_bytes",
        "histogram.parallel.sched.worker_wall_s.count",
    ):
        assert ledger_metric_kind(key) == "timing"
    # non-scheduler counters stay gated
    assert ledger_metric_kind("counter.parallel.tiles") == "count"


def test_speedup_metrics_are_floor_class():
    assert ledger_metric_kind("EU15.phase1.workers4_sim_speedup") == "floor"
    assert ledger_metric_kind("EU15.phase1.hits") == "count"


def test_config_hashes_distinguish_backends():
    hashes = {
        config_hash({"backend": b, "workers": w}) for b, w in CONFIGS
    }
    assert len(hashes) == len(CONFIGS)
    assert config_hash({"backend": "threads", "workers": 2}) == config_hash(
        {"workers": 2, "backend": "threads"}
    )


def test_worker_metrics_differ_between_worker_counts(snapshots):
    """Sanity: the timing-class filter is actually load-bearing — raw
    snapshots of different worker counts DO differ on scheduler metrics."""
    flat2 = snapshots[("processes", 2)][1]
    flat4 = snapshots[("processes", 4)][1]
    key = "counter.parallel.sched.chunks"
    assert key in flat2 and key in flat4
    assert flat2[key] != flat4[key]
