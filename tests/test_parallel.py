"""Tests for partitioning, scheduler simulation, and the thread-pool backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LotusConfig, build_lotus_graph, count_hhh_hhn, tiles_for_phase1
from repro.graph import powerlaw_chung_lu
from repro.parallel import (
    count_hhh_hhn_parallel,
    edge_balanced_global_tiles,
    idle_time_pct,
    simulate_schedule,
)


@pytest.fixture(scope="module")
def lotus_graph():
    g = powerlaw_chung_lu(4000, 12.0, exponent=2.0, seed=17)
    return build_lotus_graph(g)


class TestEdgeBalancedGlobalTiles:
    def test_work_conserved(self, lotus_graph):
        tiles = edge_balanced_global_tiles(lotus_graph.he, 64)
        deg = lotus_graph.he.degrees()
        expected = int((deg * (deg - 1) // 2).sum())
        assert sum(t.work for t in tiles) == expected

    def test_partition_count(self, lotus_graph):
        tiles = edge_balanced_global_tiles(lotus_graph.he, 32)
        assert len(tiles) <= 32

    def test_empty_graph(self):
        from repro.graph import empty_graph

        he = empty_graph(5).orient_lower()
        assert edge_balanced_global_tiles(he, 8) == []

    def test_invalid(self, lotus_graph):
        with pytest.raises(ValueError):
            edge_balanced_global_tiles(lotus_graph.he, 0)


class TestScheduler:
    def test_uniform_work_perfect_balance(self):
        r = simulate_schedule(np.full(64, 10.0), threads=8)
        assert r.avg_idle_pct == pytest.approx(0.0)
        assert r.makespan == pytest.approx(80.0)

    def test_single_huge_tile_starves(self):
        works = [1000.0] + [1.0] * 7
        r = simulate_schedule(works, threads=8)
        assert r.avg_idle_pct > 80.0

    def test_dynamic_beats_static_on_skewed_work(self):
        rng = np.random.default_rng(1)
        works = rng.pareto(1.5, size=200) + 0.1
        dyn = simulate_schedule(works, 8, policy="dynamic")
        stat = simulate_schedule(works, 8, policy="static")
        assert dyn.makespan <= stat.makespan

    def test_empty(self):
        r = simulate_schedule([], threads=4)
        assert r.makespan == 0.0 and r.avg_idle_pct == 0.0

    def test_single_thread_no_idle(self):
        r = simulate_schedule([5.0, 1.0, 3.0], threads=1)
        assert r.avg_idle_pct == 0.0
        assert r.makespan == 9.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_schedule([1.0], threads=0)
        with pytest.raises(ValueError):
            simulate_schedule([1.0], 2, policy="bogus")
        with pytest.raises(ValueError):
            simulate_schedule([-1.0], 2)

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=50), st.integers(1, 16))
    @settings(max_examples=40)
    def test_invariants(self, works, threads):
        r = simulate_schedule(works, threads)
        assert r.makespan >= max(works) - 1e-9
        assert r.makespan <= sum(works) + 1e-9
        assert r.busy.sum() == pytest.approx(sum(works))
        assert 0.0 <= r.avg_idle_pct <= 100.0


class TestTable9Shape:
    def test_squared_tiling_beats_edge_balanced(self):
        """The Table 9 result: at matched partition counts, squared edge
        tiling yields far lower idle time than edge-balanced partitioning
        for the phase-1 workload (equal edges != equal pair work).

        The partition count is 2*threads — the paper's 256*threads is
        tuned to billion-edge graphs and over-decomposes our scaled
        stand-ins into trivially balanceable crumbs (DESIGN.md §1).
        """
        from repro.graph import load_dataset

        lotus = build_lotus_graph(load_dataset("Twtr10"))
        threads = 16
        sq = tiles_for_phase1(
            lotus.he, partitions=2 * threads, policy="squared", degree_threshold=64
        )
        eb = edge_balanced_global_tiles(lotus.he, 2 * threads)
        idle_sq = idle_time_pct(sq, threads)
        idle_eb = idle_time_pct(eb, threads)
        assert idle_sq < 2.0
        assert idle_eb > 10.0


class TestParallelExecutor:
    def test_matches_sequential(self, lotus_graph):
        hhh, hhn = count_hhh_hhn(lotus_graph)
        par = count_hhh_hhn_parallel(lotus_graph, threads=4, degree_threshold=32)
        assert par == hhh + hhn

    def test_single_thread(self, lotus_graph):
        hhh, hhn = count_hhh_hhn(lotus_graph)
        assert count_hhh_hhn_parallel(lotus_graph, threads=1) == hhh + hhn

    def test_edge_balanced_policy_also_correct(self, lotus_graph):
        hhh, hhn = count_hhh_hhn(lotus_graph)
        par = count_hhh_hhn_parallel(
            lotus_graph, threads=4, policy="edge_balanced", degree_threshold=32
        )
        assert par == hhh + hhn

    def test_invalid_threads(self, lotus_graph):
        with pytest.raises(ValueError):
            count_hhh_hhn_parallel(lotus_graph, threads=0)

    def test_empty_lotus(self):
        from repro.graph import empty_graph

        lotus = build_lotus_graph(empty_graph(10), LotusConfig(hub_count=1))
        assert count_hhh_hhn_parallel(lotus, threads=2) == 0
