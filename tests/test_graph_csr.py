"""Tests for CSRGraph / OrientedGraph invariants and operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges, complete_graph, empty_graph, star_graph
from repro.graph.csr import CSRGraph, neighbor_dtype_for


def edges_strategy(max_n=30, max_m=80):
    return st.lists(
        st.tuples(st.integers(0, max_n - 1), st.integers(0, max_n - 1)),
        min_size=0,
        max_size=max_m,
    )


class TestConstruction:
    def test_triangle(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]))
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_arcs == 6
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])

    def test_self_loops_removed(self):
        g = from_edges(np.array([[0, 0], [0, 1], [1, 1]]))
        assert g.num_edges == 1

    def test_duplicates_removed(self):
        g = from_edges(np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_isolated_vertices_preserved(self):
        g = from_edges(np.array([[0, 1]]), num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(5) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_edges(np.array([[0, 5]]), num_vertices=3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            from_edges(np.array([[-1, 2]]))

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.uint32))

    def test_float_edges_rejected(self):
        with pytest.raises(TypeError):
            from_edges(np.array([[0.5, 1.5]]))

    @given(edges_strategy())
    @settings(max_examples=60)
    def test_invariants_always_hold(self, edges):
        g = from_edges(np.array(edges, dtype=np.int64).reshape(-1, 2))
        g.validate()


class TestQueries:
    def test_degrees(self, star20):
        deg = star20.degrees()
        assert deg[0] == 19
        assert (deg[1:] == 1).all()

    def test_has_edge(self, k5):
        assert k5.has_edge(0, 4)
        assert not k5.has_edge(0, 0)

    def test_has_edge_missing(self, c6):
        assert c6.has_edge(0, 1)
        assert not c6.has_edge(0, 3)

    def test_edges_roundtrip(self, er_small):
        rebuilt = from_edges(er_small.edges(), num_vertices=er_small.num_vertices)
        assert rebuilt == er_small

    def test_neighbors_is_view(self, k5):
        row = k5.neighbors(0)
        assert row.base is k5.indices


class TestOrientation:
    def test_orient_lower_counts(self, k5):
        og = k5.orient_lower()
        assert og.num_edges == k5.num_edges
        og.validate()

    def test_orient_lower_rows(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]))
        og = g.orient_lower()
        assert og.neighbors(0).size == 0
        np.testing.assert_array_equal(og.neighbors(1), [0])
        np.testing.assert_array_equal(og.neighbors(2), [0, 1])

    @given(edges_strategy())
    @settings(max_examples=40)
    def test_orientation_preserves_edge_count(self, edges):
        g = from_edges(np.array(edges, dtype=np.int64).reshape(-1, 2))
        og = g.orient_lower()
        assert og.num_edges == g.num_edges
        og.validate()


class TestSubgraph:
    def test_induced_subgraph(self, k5):
        mask = np.array([True, True, True, False, False])
        sub = k5.subgraph_mask(mask)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # K3

    def test_empty_mask(self, k5):
        sub = k5.subgraph_mask(np.zeros(5, dtype=bool))
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_full_mask_identity(self, er_small):
        sub = er_small.subgraph_mask(np.ones(er_small.num_vertices, dtype=bool))
        assert sub == er_small

    def test_wrong_mask_length(self, k5):
        with pytest.raises(ValueError):
            k5.subgraph_mask(np.ones(3, dtype=bool))


class TestSizes:
    def test_nbytes_csx(self, k5):
        # 6 indptr entries * 8B + 20 arcs * 4B
        assert k5.nbytes_csx() == 8 * 6 + 4 * 20
        assert k5.nbytes_csx(include_symmetric=False) == 8 * 6 + 4 * 10

    def test_neighbor_dtype(self):
        assert neighbor_dtype_for(10) == np.uint32
        assert neighbor_dtype_for(2**32 - 1) == np.uint32
        assert neighbor_dtype_for(2**32 + 1) == np.uint64

    def test_empty_graph(self, empty10):
        assert empty10.num_edges == 0
        assert empty10.nbytes_csx() == 8 * 11
