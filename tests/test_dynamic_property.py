"""Property-based tests of the dynamic graph layer (PR satellite).

Hypothesis drives graph shape, update selection and interleaving; every
property is checked against full recounts or pure set semantics:

* **exactness** — after any mixed insert/delete sequence the maintained
  count equals a full ``count_triangles_forward`` recount;
* **inverse round-trip** — inserting a batch of fresh edges and then
  deleting it restores the original count, edge set and version parity,
  with exactly negated triangle deltas;
* **batch ≡ singles** — one batched update is indistinguishable from
  applying its edges one at a time, including applied/rejected totals;
* **commuting updates** — endpoint-disjoint updates applied in any
  order produce the same final state and total delta;
* **rejection** — self-loops, within-batch duplicates, duplicate
  inserts and absent deletes are rejected without mutating anything.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dynamic import DynamicGraph
from repro.graph import erdos_renyi, powerlaw_chung_lu
from repro.tc import count_triangles_forward

graph_params = st.tuples(
    st.sampled_from(["er", "pl"]),
    st.integers(min_value=8, max_value=80),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def _make_graph(params):
    kind, n, density, seed = params
    if kind == "er":
        return erdos_renyi(n, min(1.0, density / 25.0), seed=seed)
    return powerlaw_chung_lu(n, float(density), exponent=2.2, seed=seed)


def _fresh_pairs(graph, count, seed):
    """``count`` absent, distinct (u < v) pairs (fewer if the graph is
    nearly complete)."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    pairs: list[tuple[int, int]] = []
    seen = set()
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in seen or graph.has_edge(*pair):
            continue
        seen.add(pair)
        pairs.append(pair)
    return np.array(pairs, dtype=np.int64).reshape(-1, 2)


def _present_pairs(graph, count, seed):
    edges = graph.edges()
    if edges.shape[0] == 0:
        return edges.astype(np.int64)
    rng = np.random.default_rng(seed)
    take = rng.choice(edges.shape[0], size=min(count, edges.shape[0]),
                      replace=False)
    return edges[np.sort(take)].astype(np.int64)


def _edge_set(graph):
    return {(int(u), int(v)) for u, v in graph.edges()}


class TestExactness:
    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_mixed_updates_equal_recount(self, params, seed):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph)
        inserts = _fresh_pairs(graph, 6, seed)
        deletes = _present_pairs(graph, 6, seed + 1)
        if inserts.size:
            dyn.insert_edges(inserts)
        if deletes.size:
            dyn.delete_edges(deletes)
        recount = count_triangles_forward(dyn.snapshot().graph).triangles
        assert dyn.triangles == recount

    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_exactness_survives_compaction(self, params, seed):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph, auto_compact_fraction=None)
        for round_seed in (seed, seed + 7):
            ins = _fresh_pairs(dyn.snapshot().graph, 4, round_seed)
            if ins.size:
                dyn.insert_edges(ins)
            dyn.compact()
        recount = count_triangles_forward(dyn.snapshot().graph).triangles
        assert dyn.triangles == recount


class TestInverseRoundTrip:
    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_insert_then_delete_restores_everything(self, params, seed):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph)
        before_triangles = dyn.triangles
        before_edges = _edge_set(graph)
        batch = _fresh_pairs(graph, 8, seed)
        if batch.size == 0:
            return
        ins = dyn.insert_edges(batch)
        dele = dyn.delete_edges(batch)
        assert ins.applied == dele.applied == batch.shape[0]
        assert dele.triangle_delta == -ins.triangle_delta
        assert dyn.triangles == before_triangles
        assert _edge_set(dyn.snapshot().graph) == before_edges
        # two applying batches -> exactly two version bumps
        assert dyn.version == 2

    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_delete_then_insert_restores_everything(self, params, seed):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph)
        before_triangles = dyn.triangles
        before_edges = _edge_set(graph)
        batch = _present_pairs(graph, 8, seed)
        if batch.size == 0:
            return
        dele = dyn.delete_edges(batch)
        ins = dyn.insert_edges(batch)
        assert ins.triangle_delta == -dele.triangle_delta
        assert dyn.triangles == before_triangles
        assert _edge_set(dyn.snapshot().graph) == before_edges


class TestBatchEquivalence:
    @given(
        params=graph_params,
        seed=st.integers(0, 10_000),
        op=st.sampled_from(["insert", "delete"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_singles(self, params, seed, op):
        graph = _make_graph(params)
        picker = _fresh_pairs if op == "insert" else _present_pairs
        batch = picker(graph, 8, seed)
        if batch.size == 0:
            return
        batched = DynamicGraph(graph)
        single = DynamicGraph(graph, triangles=batched.triangles)
        apply_batched = getattr(batched, f"{op}_edges")
        apply_single = getattr(single, f"{op}_edges")
        result = apply_batched(batch)
        applied = rejected = delta = 0
        for pair in batch:
            r = apply_single(pair)
            applied += r.applied
            rejected += r.rejected
            delta += r.triangle_delta
        assert (result.applied, result.rejected) == (applied, rejected)
        assert result.triangle_delta == delta
        assert batched.triangles == single.triangles
        assert _edge_set(batched.snapshot().graph) == _edge_set(
            single.snapshot().graph
        )


class TestCommutingUpdates:
    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_endpoint_disjoint_updates_commute(self, params, seed):
        graph = _make_graph(params)
        rng = np.random.default_rng(seed)
        n = graph.num_vertices
        if n < 8:
            return
        # vertex-disjoint fresh pairs: no two can co-occur in a triangle
        verts = rng.permutation(n)
        pairs = []
        for i in range(0, min(n - 1, 12), 2):
            u, v = int(verts[i]), int(verts[i + 1])
            pair = (min(u, v), max(u, v))
            if not graph.has_edge(*pair):
                pairs.append(pair)
        if len(pairs) < 2:
            return
        batch = np.array(pairs, dtype=np.int64)
        forward_dyn = DynamicGraph(graph)
        reverse_dyn = DynamicGraph(graph, triangles=forward_dyn.triangles)
        fwd = forward_dyn.insert_edges(batch)
        rev = reverse_dyn.insert_edges(batch[::-1].copy())
        assert fwd.triangle_delta == rev.triangle_delta
        assert forward_dyn.triangles == reverse_dyn.triangles
        assert _edge_set(forward_dyn.snapshot().graph) == _edge_set(
            reverse_dyn.snapshot().graph
        )


class TestRejection:
    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_self_loops_and_duplicates_rejected_without_mutation(
        self, params, seed
    ):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph)
        before = (dyn.triangles, dyn.version, _edge_set(dyn.snapshot().graph))
        rng = np.random.default_rng(seed)
        n = graph.num_vertices
        loops = np.column_stack([rng.integers(n, size=3)] * 2).astype(np.int64)
        result = dyn.insert_edges(loops)
        assert (result.applied, result.rejected) == (0, 3)
        present = _present_pairs(graph, 3, seed)
        if present.size:
            dup_insert = dyn.insert_edges(present)
            assert dup_insert.applied == 0
            assert dup_insert.rejected == present.shape[0]
        absent = _fresh_pairs(graph, 3, seed)
        if absent.size:
            bad_delete = dyn.delete_edges(absent)
            assert bad_delete.applied == 0
            assert bad_delete.rejected == absent.shape[0]
        assert (
            dyn.triangles, dyn.version, _edge_set(dyn.snapshot().graph)
        ) == before

    @given(params=graph_params, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_within_batch_duplicates_apply_once(self, params, seed):
        graph = _make_graph(params)
        dyn = DynamicGraph(graph)
        batch = _fresh_pairs(graph, 4, seed)
        if batch.size == 0:
            return
        doubled = np.concatenate([batch, batch[::-1, ::-1]])  # (v, u) dupes
        result = dyn.insert_edges(doubled)
        assert result.applied == batch.shape[0]
        assert result.rejected == batch.shape[0]
        assert dyn.triangles == count_triangles_forward(
            dyn.snapshot().graph
        ).triangles
