"""Live telemetry: trace propagation, the event bus, and exporters.

Covers the pieces :mod:`repro.obs.telemetry` layers onto the recorder:
TraceContext wire round-trips, worker session / payload / stitch
plumbing (in-process — the cross-process path is exercised by
tests/test_shm_procpool.py), bus activation semantics, the streaming
JSONL exporter, and both Prometheus exposers.
"""

from __future__ import annotations

import io
import json
import time
import urllib.request

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.obs.telemetry import (
    NULL_BUS,
    Exporter,
    JsonlExporter,
    PrometheusFileExporter,
    PrometheusHTTPExporter,
    TelemetryBus,
    TraceContext,
    get_bus,
    new_id,
    prometheus_exposition,
    set_bus,
    stitch_worker_payloads,
    use_bus,
    worker_payload,
    worker_telemetry_session,
)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(new_id(), new_id())
        wire = ctx.to_wire()
        json.loads(json.dumps(wire))  # picklable and JSON-safe
        back = TraceContext.from_wire(wire)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    def test_from_open_span(self):
        with use_registry() as reg:
            with reg.span("phase1") as span:
                ctx = TraceContext.from_span(span)
                assert ctx is not None
                assert ctx.trace_id == span.trace_id
                assert ctx.span_id == span.span_id

    def test_from_disabled_span_is_none(self):
        from repro.obs.registry import NULL_REGISTRY

        with NULL_REGISTRY.span("phase1") as span:
            assert TraceContext.from_span(span) is None
        assert TraceContext.from_span(None) is None

    def test_new_ids_are_distinct_16_hex(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


class TestWorkerSession:
    def test_session_records_under_propagated_identity(self):
        wire = TraceContext(new_id(), new_id()).to_wire()
        with worker_telemetry_session(wire, worker=3, pid=999) as (reg, root):
            with reg.span("chunk", parent=root, chunk=0):
                pass
            reg.counter("w.ops").add(5)
        payload = worker_payload(reg, worker=3, pid=999)
        assert payload["worker"] == 3 and payload["pid"] == 999
        (span,) = payload["spans"]
        assert span["name"] == "worker"
        assert span["trace_id"] == wire["trace_id"]
        assert span["parent_id"] == wire["span_id"]
        assert [c["name"] for c in span["children"]] == ["chunk"]
        assert payload["counters"] == {"w.ops": 5}

    def test_session_deactivates_global_registry(self):
        from repro.obs import enabled

        wire = TraceContext(new_id(), new_id()).to_wire()
        with worker_telemetry_session(wire):
            assert enabled()
        assert not enabled()

    def test_stitch_grafts_spans_and_merges_metrics(self):
        wire_payloads = []
        for worker in (1, 0):  # out of order: stitch must sort by worker
            wire = TraceContext(new_id(), new_id()).to_wire()
            with worker_telemetry_session(wire, worker=worker, pid=100 + worker) \
                    as (wreg, _root):
                wreg.counter("w.ops").add(worker + 1)
                wreg.histogram("w.lat", buckets=(1.0, 2.0)).observe(0.5)
            wire_payloads.append(worker_payload(wreg, worker, 100 + worker))
        with use_registry() as reg:
            with reg.span("phase1") as phase:
                stitched = stitch_worker_payloads(reg, phase, wire_payloads)
                assert [s.attrs["worker"] for s in stitched] == [0, 1]
                assert phase.children == stitched
                for span in stitched:
                    assert span.parent_id == phase.span_id
                    assert span.trace_id == phase.trace_id
        assert reg.counter("w.ops").value == 3
        assert reg.histogram("w.lat", buckets=(1.0, 2.0)).count == 2

    def test_stitch_is_noop_when_disabled(self):
        from repro.obs.registry import NULL_REGISTRY
        from repro.obs.spans import NULL_SPAN

        payload = {"worker": 0, "spans": [], "counters": {"x": 1}}
        assert stitch_worker_payloads(NULL_REGISTRY, NULL_SPAN, [payload]) == []


class _ListExporter(Exporter):
    def __init__(self):
        self.events = []
        self.closed = False

    def export(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


class _BrokenExporter(Exporter):
    def export(self, event):
        raise RuntimeError("sink down")

    def close(self):
        raise RuntimeError("sink down")


class TestTelemetryBus:
    def test_default_bus_is_disabled_null(self):
        assert get_bus() is NULL_BUS
        assert not get_bus().enabled
        get_bus().emit({"event": "x"})  # no-op, no error

    def test_null_bus_rejects_attach(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.attach(_ListExporter())

    def test_emit_stamps_ts_and_fans_out(self):
        a, b = _ListExporter(), _ListExporter()
        bus = TelemetryBus((a, b))
        bus.emit({"event": "x"})
        assert a.events == b.events
        assert a.events[0]["event"] == "x"
        assert a.events[0]["ts"] > 0

    def test_broken_exporter_counts_dropped_not_raises(self):
        good = _ListExporter()
        bus = TelemetryBus((_BrokenExporter(), good))
        bus.emit({"event": "x"})
        bus.close()
        assert bus.dropped == 2  # one export, one close
        assert len(good.events) == 1 and good.closed

    def test_use_bus_activates_and_restores(self):
        sink = _ListExporter()
        with use_bus(TelemetryBus((sink,))) as bus:
            assert get_bus() is bus
            get_bus().emit({"event": "inside"})
        assert get_bus() is NULL_BUS
        assert [e["event"] for e in sink.events] == ["inside"]

    def test_set_bus_none_disables(self):
        set_bus(TelemetryBus())
        try:
            assert get_bus().enabled
        finally:
            set_bus(None)
        assert get_bus() is NULL_BUS

    def test_spans_emit_open_close_events_when_active(self):
        sink = _ListExporter()
        with use_registry() as reg:
            with use_bus(TelemetryBus((sink,))):
                with reg.span("phase1") as span:
                    pass
        kinds = [e["event"] for e in sink.events]
        assert kinds == ["span_open", "span_close"]
        opened, closed = sink.events
        assert opened["span_id"] == closed["span_id"] == span.span_id
        assert opened["trace_id"] == span.trace_id
        assert closed["elapsed"] >= 0


class TestJsonlExporter:
    def test_streams_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.export({"event": "a", "n": 1})
        # flushed per line: visible before close
        assert json.loads(path.read_text().splitlines()[0])["event"] == "a"
        exporter.export({"event": "b"})
        exporter.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in lines] == ["a", "b"]
        assert exporter.events_written == 2

    def test_wraps_existing_stream_without_closing_it(self):
        buf = io.StringIO()
        exporter = JsonlExporter(buf)
        exporter.export({"event": "x"})
        exporter.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["event"] == "x"

    def test_coerces_numpy_scalars(self, tmp_path):
        import numpy as np

        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.export({"event": "x", "hits": np.int64(7)})
        exporter.close()
        assert json.loads(path.read_text())["hits"] == 7


class TestPrometheusExposers:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").add(3)
        reg.gauge("serve.cache_bytes").set(1024.0)
        return reg

    def test_file_exporter_writes_immediately_and_on_close(self, tmp_path):
        reg = self._registry()
        path = tmp_path / "live.prom"
        exporter = PrometheusFileExporter(reg, str(path), interval_s=30.0)
        try:
            assert "serve_requests 3" in path.read_text()
            reg.counter("serve.requests").add(1)
        finally:
            exporter.close()
        assert "serve_requests 4" in path.read_text()
        assert not (tmp_path / "live.prom.tmp").exists()  # atomic replace

    def test_file_exporter_polls_on_interval(self, tmp_path):
        reg = self._registry()
        path = tmp_path / "live.prom"
        exporter = PrometheusFileExporter(reg, str(path), interval_s=0.05)
        try:
            reg.counter("serve.requests").add(7)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if "serve_requests 10" in path.read_text():
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - timing failure diagnostics
                pytest.fail("file exporter never refreshed the snapshot")
        finally:
            exporter.close()

    def test_http_exporter_serves_live_snapshot(self):
        reg = self._registry()
        exporter = PrometheusHTTPExporter(reg, port=0)
        try:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            with urllib.request.urlopen(url) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode()
            assert "serve_requests 3" in body
            reg.counter("serve.requests").add(1)
            with urllib.request.urlopen(url) as resp:
                assert "serve_requests 4" in resp.read().decode()
        finally:
            exporter.close()

    def test_http_exporter_404s_other_paths(self):
        exporter = PrometheusHTTPExporter(self._registry(), port=0)
        try:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/nope"
                )
        finally:
            exporter.close()


class TestPrometheusExposition:
    def test_registry_to_prometheus_shortcut(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        assert reg.to_prometheus() == prometheus_exposition(reg.snapshot())

    def test_name_sanitization(self):
        text = prometheus_exposition({"counters": {"serve.cache-hit%": 1}})
        assert "serve_cache_hit_ 1" in text

    def test_label_escaping(self):
        text = prometheus_exposition(
            {"counters": {"c": 1}},
            labels={"path": 'a\\b"c\nd'},
        )
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.obs.registry import Histogram

        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 99.0):
            hist.observe(v)
        text = prometheus_exposition({"histograms": {"lat": hist.snapshot()}})
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="4"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 104" in text
        assert "lat_count 4" in text

    def test_deterministic_family_ordering(self):
        snap = {
            "counters": {"z.last": 1, "a.first": 2},
            "gauges": {"m.mid": 0.5},
            "histograms": {},
        }
        text = prometheus_exposition(snap)
        assert text.index("a_first") < text.index("m_mid") < text.index("z_last")
        assert prometheus_exposition(snap) == text
