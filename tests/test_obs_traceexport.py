"""Chrome trace_event export: layout invariants and span round-trips.

Acceptance contract (ISSUE 3): the exported JSON's span names, nesting,
and total duration must match the recorded span tree, and the document
must be loadable by Perfetto / chrome://tracing (JSON object format with
a ``traceEvents`` list of complete events).
"""

from __future__ import annotations

import json

import pytest

from repro.core import count_triangles_lotus
from repro.graph import powerlaw_chung_lu
from repro.obs import build_report, use_registry
from repro.obs.spans import Span
from repro.obs.traceexport import (
    build_trace,
    spans_from_trace,
    spans_to_trace_events,
    trace_from_record,
    trace_from_report,
    trace_total_duration,
    write_trace,
)


def _span(name, elapsed, children=(), attrs=None):
    s = Span(name, attrs)
    s.elapsed = elapsed
    s.children = list(children)
    return s


def _tree_shape(span):
    return (span.name, round(span.elapsed, 9),
            tuple(_tree_shape(c) for c in span.children))


class TestEventLayout:
    def test_single_span(self):
        span = _span("root", 1.5)
        events = spans_to_trace_events([span])
        (meta, ev) = events
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        assert ev == {
            "name": "root", "cat": "span", "ph": "X",
            "ts": 0.0, "dur": 1.5e6, "pid": 1, "tid": 1, "args": {},
            "span_id": span.span_id,
        }

    def test_children_packed_inside_parent(self):
        tree = _span("root", 1.0, [_span("a", 0.4), _span("b", 0.5)])
        events = [e for e in spans_to_trace_events([tree]) if e["ph"] == "X"]
        root, a, b = events
        assert a["ts"] == root["ts"]
        assert b["ts"] == pytest.approx(a["ts"] + a["dur"])
        for child in (a, b):
            assert child["ts"] >= root["ts"]
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 0.01

    def test_roots_laid_end_to_end(self):
        events = [e for e in spans_to_trace_events(
            [_span("first", 2.0), _span("second", 1.0)]
        ) if e["ph"] == "X"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(2.0e6)

    def test_jitter_overflow_children_scaled_into_parent(self):
        # children sum to more than the parent (timer jitter): containment
        # must still hold for every viewer
        tree = _span("root", 1.0, [_span("a", 0.7), _span("b", 0.6)])
        events = [e for e in spans_to_trace_events([tree]) if e["ph"] == "X"]
        root = events[0]
        for child in events[1:]:
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 0.01

    def test_attrs_become_args(self):
        import numpy as np

        tree = _span("root", 1.0, attrs={"pairs": np.int64(42), "label": "x"})
        events = spans_to_trace_events([tree])
        assert events[1]["args"] == {"pairs": 42, "label": "x"}
        json.dumps(events)  # numpy scalars must be gone


class TestRoundTrip:
    def test_synthetic_tree_round_trips(self):
        tree = _span("lotus", 1.0, [
            _span("preprocess", 0.2),
            _span("hhh+hhn", 0.5, [_span("tile", 0.1)]),
            _span("hnn", 0.2),
        ])
        trace = build_trace([tree])
        (rebuilt,) = spans_from_trace(trace)
        assert _tree_shape(rebuilt) == _tree_shape(tree)

    def test_multiple_roots_round_trip(self):
        roots = [_span("a", 0.5, [_span("a1", 0.25)]), _span("b", 0.75)]
        rebuilt = spans_from_trace(build_trace(roots))
        assert [_tree_shape(r) for r in rebuilt] == [_tree_shape(r) for r in roots]

    def test_total_duration_matches_span_tree(self):
        roots = [_span("a", 0.5), _span("b", 0.75)]
        assert trace_total_duration(build_trace(roots)) == pytest.approx(1.25)

    def test_real_lotus_run_round_trips(self):
        graph = powerlaw_chung_lu(2000, 8.0, exponent=2.1, seed=3)
        with use_registry() as reg:
            count_triangles_lotus(graph)
        roots = reg.roots
        trace = build_trace(roots)
        rebuilt = spans_from_trace(trace)
        assert [r.name for r in rebuilt] == [r.name for r in roots]
        (lotus,) = [r for r in rebuilt if r.name == "lotus"]
        assert [c.name for c in lotus.children] == \
            ["preprocess", "hhh+hhn", "hnn", "nnn"]
        # microsecond rounding: durations agree to within 1 us per span
        total = sum(r.elapsed for r in roots)
        assert trace_total_duration(trace) == pytest.approx(total, abs=1e-5)


class TestTraceIdentity:
    """trace_id / span_id / parent_id ride through the export and back."""

    def _identity(self, span):
        return [
            (s.name, s.trace_id, s.span_id, s.parent_id)
            for s in span.iter_spans()
        ]

    def test_live_tree_identity_round_trips_exactly(self):
        graph = powerlaw_chung_lu(1500, 6.0, exponent=2.2, seed=5)
        with use_registry() as reg:
            count_triangles_lotus(graph)
        roots = reg.roots
        assert all(s.trace_id and s.span_id for r in roots
                   for s in r.iter_spans())
        rebuilt = spans_from_trace(build_trace(roots))
        assert [self._identity(r) for r in rebuilt] == \
            [self._identity(r) for r in roots]

    def test_events_carry_trace_and_parent_ids(self):
        with use_registry() as reg:
            with reg.span("root") as root:
                with reg.span("child", parent=root):
                    pass
        events = [e for e in spans_to_trace_events(reg.roots)
                  if e["ph"] == "X"]
        root_ev, child_ev = events
        assert root_ev["trace_id"] == child_ev["trace_id"] == root.trace_id
        assert "parent_span_id" not in root_ev
        assert child_ev["parent_span_id"] == root_ev["span_id"]

    def test_process_backend_export_shows_worker_lanes(self):
        # the acceptance path: a --backend processes run exports worker
        # spans captured inside the workers, in their own pid lanes,
        # nested under phase1 via the propagated trace context
        import os

        from repro.core import LotusConfig, build_lotus_graph
        from repro.parallel.procpool import count_hhh_hhn_processes

        graph = powerlaw_chung_lu(3000, 10.0, exponent=2.0, seed=6)
        lotus = build_lotus_graph(graph, LotusConfig(hub_count=96))
        with use_registry() as reg:
            count_hhh_hhn_processes(lotus, workers=2)
        trace = build_trace(reg.roots)
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        worker_events = [e for e in events if e["name"] == "worker"]
        worker_pids = {e["pid"] for e in worker_events}
        assert len(worker_pids) == 2 and os.getpid() not in worker_pids
        # chunk events inherit their worker's lane
        assert {e["pid"] for e in events if e["name"] == "chunk"} == worker_pids
        # metadata names each worker lane for the viewer
        lane_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"] if e.get("ph") == "M"
        }
        for pid in worker_pids:
            assert f"pid {pid}" in lane_names[pid]
        # and the round trip restores the worker spans under phase1
        (root,) = spans_from_trace(trace)
        phase = next(s for s in root.iter_spans()
                     if s.name == "phase1-processes")
        workers = [c for c in phase.children if c.name == "worker"]
        assert len(workers) == 2
        assert {w.trace_id for w in workers} == {root.trace_id}


class TestDocuments:
    def test_build_trace_document_shape(self):
        trace = build_trace([_span("root", 1.0)], meta={"dataset": "LJGrp"})
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"] == {"dataset": "LJGrp"}
        assert isinstance(trace["traceEvents"], list)

    def test_trace_from_report(self):
        graph = powerlaw_chung_lu(1000, 6.0, exponent=2.2, seed=4)
        with use_registry() as reg:
            count_triangles_lotus(graph)
        report = build_report(reg, meta={"dataset": "synthetic"})
        trace = trace_from_report(report)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"lotus", "preprocess", "hhh+hhn", "hnn", "nnn"} <= names

    def test_trace_from_record_carries_provenance_meta(self):
        record = {
            "run_id": "rX-1",
            "command": "count",
            "config_hash": "sha256:abc",
            "spans": [_span("root", 1.0).to_dict()],
        }
        trace = trace_from_record(record)
        assert trace["otherData"]["run_id"] == "rX-1"
        assert trace["otherData"]["command"] == "count"

    def test_write_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_trace(str(path), build_trace([_span("root", 0.5)]))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][1]["name"] == "root"
