"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    from_edges,
    powerlaw_chung_lu,
    star_graph,
)


@pytest.fixture
def paper_example_graph():
    """The 9-vertex example of Figure 2 (hubs: 0, 1).

    Edges reconstructed from the figure's description: 0 and 1 are hubs
    connected to most vertices; vertex 3 connects to hubs 0, 1 and
    non-hub 2; vertex 6 has edges {0, 1, 4}; vertex 8 connects to 6 and
    no hub.
    """
    edges = np.array(
        [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6),
            (1, 3), (1, 4), (1, 5), (1, 6), (1, 7),
            (2, 3), (4, 6), (5, 7), (6, 8), (7, 8),
        ],
        dtype=np.int64,
    )
    return from_edges(edges, num_vertices=9)


@pytest.fixture
def triangle_graph():
    return complete_graph(3)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def c6():
    return cycle_graph(6)


@pytest.fixture
def empty10():
    return empty_graph(10)


@pytest.fixture
def star20():
    return star_graph(20)


@pytest.fixture
def er_small():
    return erdos_renyi(120, 0.08, seed=42)


@pytest.fixture
def er_medium():
    return erdos_renyi(400, 0.03, seed=7)


@pytest.fixture
def powerlaw_small():
    return powerlaw_chung_lu(800, 8.0, exponent=2.1, seed=5)


@pytest.fixture
def powerlaw_medium():
    return powerlaw_chung_lu(3000, 10.0, exponent=2.05, seed=9)
