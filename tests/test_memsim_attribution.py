"""Attributed replay: per-region accounting, zero-access guards, overhead.

The attribution contract: replaying a trace in attributed mode evolves
the cache/TLB state *identically* to the plain replay, and the
per-region counts sum exactly to the unattributed totals — no access is
lost or double-counted.  The reuse-distance profiles must agree with the
replay on fully-associative geometries (the LRU stack-distance
equivalence), and the attributed mode's overhead over the plain replay
is pinned.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import build_lotus_graph
from repro.graph import load_dataset, powerlaw_chung_lu
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    MACHINES,
    AttributedStats,
    MachineSpec,
    MemoryHierarchy,
    MemoryLayout,
    REGION_H2H,
    REGION_HE,
    REGION_INDICES,
    REGION_NHE,
    REGION_OTHER,
    forward_layout,
    forward_trace,
    lotus_phase1_trace,
    lotus_phase2_trace,
    lotus_phase3_trace,
    lotus_trace,
    reuse_distance_by_region,
)
from repro.memsim.trace import lotus_layout
from repro.obs import MetricsRegistry, use_registry


def _lotus_fixture(name="LJGrp"):
    graph = load_dataset(name)
    lotus = build_lotus_graph(graph)
    layout = lotus_layout(lotus)
    return lotus, layout


def _forward_fixture(name="LJGrp"):
    oriented = apply_degree_ordering(load_dataset(name))[0].orient_lower()
    layout = forward_layout(oriented)
    return forward_trace(oriented, layout), layout


class TestRegionClassifier:
    def test_lines_and_pages_map_to_owning_region(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 1000, 8)
        b = layout.alloc("b", 1000, 8)
        c = layout.classifier()
        lines = np.concatenate([
            a.element_line(np.arange(10)),
            b.element_line(np.arange(10)),
        ])
        rid = c.classify_lines(lines)
        assert c.names == ("a", "b", REGION_OTHER)
        assert (rid[:10] == 0).all() and (rid[10:] == 1).all()
        pages = np.asarray(b.element_addr(np.arange(10))) // 4096
        assert (c.classify_pages(pages) == 1).all()

    def test_addresses_outside_all_regions_hit_other(self):
        layout = MemoryLayout()
        layout.alloc("a", 10, 8)
        c = layout.classifier()
        rid = c.classify_lines(np.array([0, 10**12]))
        assert (rid == c.other_id).all()
        assert c.names[c.other_id] == REGION_OTHER

    def test_empty_layout_classifies_everything_as_other(self):
        c = MemoryLayout().classifier()
        assert (c.classify_lines(np.arange(5)) == c.other_id).all()


class TestAttributedReplayExactness:
    """Per-region counts must sum exactly to the unattributed totals."""

    @pytest.mark.parametrize("machine_name", ["SkyLakeX", "Epyc"])
    def test_lotus_attribution_sums_to_plain_replay(self, machine_name):
        machine = MACHINES[machine_name].scaled(1024)
        lotus, layout = _lotus_fixture()
        trace = lotus_trace(lotus)
        plain = MemoryHierarchy(machine)
        plain.access_lines(trace)
        attributed = MemoryHierarchy(machine)
        att = attributed.access_lines_attributed(trace, layout)
        assert attributed.stats() == plain.stats()
        assert att.totals() == plain.stats()
        assert set(att.regions) == {REGION_HE, REGION_NHE, REGION_H2H, REGION_OTHER}
        assert att.regions[REGION_OTHER].accesses == 0

    def test_forward_attribution_sums_to_plain_replay(self):
        machine = MACHINES["SkyLakeX"].scaled(1024)
        trace, layout = _forward_fixture()
        plain = MemoryHierarchy(machine)
        plain.access_lines(trace)
        attributed = MemoryHierarchy(machine)
        att = attributed.access_lines_attributed(trace, layout)
        assert att.totals() == plain.stats()
        assert att.regions[REGION_INDICES].accesses == plain.stats().accesses

    def test_per_phase_deltas_sum_to_cumulative_stats(self):
        machine = MACHINES["SkyLakeX"].scaled(1024)
        lotus, layout = _lotus_fixture()
        hierarchy = MemoryHierarchy(machine)
        combined = AttributedStats({})
        for phase in (lotus_phase1_trace, lotus_phase2_trace, lotus_phase3_trace):
            combined = combined + hierarchy.access_lines_attributed(
                phase(lotus, layout), layout
            )
        assert combined.totals() == hierarchy.stats()

    def test_miss_shares_sum_to_one_when_misses_exist(self):
        machine = MACHINES["SkyLakeX"].scaled(1024)
        lotus, layout = _lotus_fixture()
        att = MemoryHierarchy(machine).access_lines_attributed(
            lotus_trace(lotus), layout
        )
        for level in ("l1", "l2", "llc", "dtlb"):
            assert sum(att.miss_shares(level).values()) == pytest.approx(1.0)

    def test_unknown_share_level_rejected(self):
        assert AttributedStats({}).totals().accesses == 0
        with pytest.raises(ValueError):
            AttributedStats({}).miss_shares("l9")


class TestZeroAccessGuards:
    """Satellite: zero-access replays must export 0.0 rates, never NaN."""

    def test_hierarchy_stats_rates_are_zero_not_nan(self):
        h = MemoryHierarchy(MACHINES["SkyLakeX"].scaled(1024))
        s = h.stats()
        assert s.accesses == 0
        for rate in (s.l1_hit_rate, s.l2_hit_rate, s.l3_hit_rate, s.dtlb_hit_rate):
            assert rate == 0.0

    def test_export_metrics_on_empty_replay_emits_zero_gauges(self):
        h = MemoryHierarchy(MACHINES["SkyLakeX"].scaled(1024))
        h.access_lines(np.empty(0, dtype=np.int64))
        registry = MetricsRegistry()
        h.export_metrics(registry, prefix="memsim.empty")
        snap = registry.snapshot()
        for label in ("l1", "l2", "l3", "dtlb"):
            value = snap["gauges"][f"memsim.empty.{label}.hit_rate"]
            assert value == 0.0 and value == value  # not NaN

    def test_attributed_replay_of_empty_trace(self):
        layout = MemoryLayout()
        layout.alloc("a", 10, 8)
        h = MemoryHierarchy(MACHINES["SkyLakeX"].scaled(1024))
        att = h.access_lines_attributed(np.empty(0, dtype=np.int64), layout)
        assert att.totals() == h.stats()
        assert all(s.accesses == 0 for s in att.regions.values())
        for level in ("l1", "llc", "dtlb"):
            assert all(v == 0.0 for v in att.miss_shares(level).values())


class TestSpanAndMetricsExport:
    def test_export_nests_region_counters_and_span_attrs(self):
        machine = MACHINES["SkyLakeX"].scaled(1024)
        lotus, layout = _lotus_fixture()
        with use_registry() as registry:
            with registry.span("memsim:lotus"):
                att = MemoryHierarchy(machine).access_lines_attributed(
                    lotus_trace(lotus), layout
                )
                att.export_metrics(registry, prefix="memsim.lotus")
        snap = registry.snapshot()
        he = att.regions[REGION_HE]
        assert snap["counters"][f"memsim.lotus.region.{REGION_HE}.llc.misses"] == he.llc_misses
        assert snap["counters"][f"memsim.lotus.region.{REGION_HE}.llc.accesses"] == he.l2_misses
        assert snap["counters"][f"memsim.lotus.region.{REGION_HE}.l1.accesses"] == he.accesses
        span = registry.find_span("memsim:lotus")
        assert span is not None
        assert span.attrs[f"{REGION_HE}.llc_misses"] == he.llc_misses
        assert span.attrs[f"{REGION_H2H}.dtlb_misses"] == att.regions[
            REGION_H2H
        ].dtlb_misses


class TestReuseVsAttributedReplay:
    """Satellite: per-region LRU predictions vs the simulated hierarchy.

    On a fully-associative L1 (one set, ways == capacity) the LRU
    stack-distance model is exact: an access hits iff its reuse distance
    is below the capacity.  The attributed replay and the one-pass
    per-region reuse profiles must therefore agree per region.
    """

    @pytest.mark.parametrize("seed", [3, 11])
    def test_chung_lu_forward_per_region_agreement(self, seed):
        graph = powerlaw_chung_lu(1500, 14.0, exponent=2.4, seed=seed)
        oriented = apply_degree_ordering(graph)[0].orient_lower()
        layout = forward_layout(oriented)
        trace = forward_trace(oriented, layout)
        capacity = 256
        machine = MachineSpec(
            name="fa-l1", cpu_model="synthetic", frequency_ghz=1.0,
            sockets=1, cores=1,
            l1_bytes=capacity * 64, l1_ways=capacity,
            l2_bytes=0, l2_ways=0, l3_bytes_total=0, l3_ways=0,
        )
        classifier = layout.classifier()
        profiles = reuse_distance_by_region(
            trace, classifier.classify_lines(trace), classifier.names
        )
        att = MemoryHierarchy(machine).access_lines_attributed(trace, classifier)
        for name, stats in att.regions.items():
            if stats.accesses == 0:
                continue
            simulated = stats.l1_hit_rate
            predicted = profiles.per_region[name].hit_rate(capacity)
            assert simulated == pytest.approx(predicted, abs=1e-9)

    def test_chung_lu_lotus_whole_cache_agreement(self):
        graph = powerlaw_chung_lu(1200, 12.0, exponent=2.6, seed=7)
        lotus = build_lotus_graph(graph)
        layout = lotus_layout(lotus)
        trace = lotus_trace(lotus)
        capacity = 128
        machine = MachineSpec(
            name="fa-l1", cpu_model="synthetic", frequency_ghz=1.0,
            sockets=1, cores=1,
            l1_bytes=capacity * 64, l1_ways=capacity,
            l2_bytes=0, l2_ways=0, l3_bytes_total=0, l3_ways=0,
        )
        classifier = layout.classifier()
        profiles = reuse_distance_by_region(
            trace, classifier.classify_lines(trace), classifier.names
        )
        att = MemoryHierarchy(machine).access_lines_attributed(trace, classifier)
        for name in (REGION_HE, REGION_NHE, REGION_H2H):
            stats = att.regions[name]
            predicted = profiles.per_region[name].hit_rate(capacity)
            assert stats.l1_hit_rate == pytest.approx(predicted, abs=1e-9)
        overall = profiles.overall.hit_rate(capacity)
        assert att.totals().l1_hit_rate == pytest.approx(overall, abs=1e-9)

    def test_region_profiles_partition_the_overall_histogram(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 64, 8)
        b = layout.alloc("b", 64, 8)
        rng = np.random.default_rng(0)
        trace = np.concatenate([
            np.asarray(a.element_line(rng.integers(0, 64, 500))),
            np.asarray(b.element_line(rng.integers(0, 64, 500))),
        ])
        classifier = layout.classifier()
        profiles = reuse_distance_by_region(
            trace, classifier.classify_lines(trace), classifier.names
        )
        total = sum(p.total for p in profiles.per_region.values())
        cold = sum(p.cold for p in profiles.per_region.values())
        assert total == profiles.overall.total == trace.size
        assert cold == profiles.overall.cold


class TestAttributionOverhead:
    def test_attributed_replay_overhead_is_bounded(self):
        """Attribution may cost at most ATTRIBUTION_OVERHEAD_FACTOR x plain."""
        ATTRIBUTION_OVERHEAD_FACTOR = 6.0
        machine = MACHINES["SkyLakeX"].scaled(1024)
        lotus, layout = _lotus_fixture("Twtr10")
        trace = lotus_trace(lotus)
        classifier = layout.classifier()

        def best_of(fn, rounds=3):
            samples = []
            for _ in range(rounds):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            return min(samples)

        plain = best_of(lambda: MemoryHierarchy(machine).access_lines(trace))
        attributed = best_of(
            lambda: MemoryHierarchy(machine).access_lines_attributed(
                trace, classifier
            )
        )
        assert attributed <= ATTRIBUTION_OVERHEAD_FACTOR * plain, (
            f"attributed replay {attributed:.3f}s vs plain {plain:.3f}s "
            f"exceeds the pinned {ATTRIBUTION_OVERHEAD_FACTOR}x budget"
        )
