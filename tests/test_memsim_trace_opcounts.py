"""Tests for the trace builders, op-count model, and cost model."""

import numpy as np
import pytest

from repro.core import LotusConfig, build_lotus_graph
from repro.graph import complete_graph, empty_graph, erdos_renyi, from_edges, powerlaw_chung_lu
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    MemoryHierarchy,
    SKYLAKEX,
    forward_opcounts,
    forward_trace,
    h2h_access_lines,
    lotus_opcounts,
    lotus_phase1_trace,
    lotus_phase2_trace,
    lotus_phase3_trace,
    lotus_trace,
    modeled_seconds,
    two_bit_predictor_miss_rate,
)
from repro.memsim.layout import MemoryLayout
from repro.memsim.trace import _merge_touched_per_arc, _phase1_pairs
from repro.tc.intersect import merge_join_touched


class TestLayout:
    def test_alloc_non_overlapping(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 100, 4)
        b = layout.alloc("b", 50, 8)
        assert a.base + a.size_bytes <= b.base

    def test_page_aligned(self):
        layout = MemoryLayout()
        layout.alloc("a", 3, 1)
        b = layout.alloc("b", 1, 1)
        assert b.base % 4096 == 0

    def test_duplicate_name(self):
        layout = MemoryLayout()
        layout.alloc("a", 1, 1)
        with pytest.raises(ValueError):
            layout.alloc("a", 1, 1)

    def test_element_addressing(self):
        layout = MemoryLayout()
        r = layout.alloc("a", 100, 4)
        assert r.element_addr(10) == r.base + 40
        np.testing.assert_array_equal(
            r.element_line(np.array([0, 15, 16])), [r.base // 64, r.base // 64, r.base // 64 + 1]
        )


class TestMergeTouched:
    def test_matches_scalar_rule(self):
        g = erdos_renyi(200, 0.06, seed=1)
        og = apply_degree_ordering(g)[0].orient_lower()
        indptr, indices = og.indptr, og.indices
        src = np.repeat(np.arange(og.num_vertices), og.degrees())
        dst = indices.astype(np.int64)
        touched = _merge_touched_per_arc(indptr, indices, src, dst)
        for k in range(0, src.size, 37):  # spot-check a sample of arcs
            a = og.neighbors(int(src[k]))
            b = og.neighbors(int(dst[k]))
            if a.size and b.size:
                _, tb = merge_join_touched(a, b)
                assert touched[k] == tb
            else:
                assert touched[k] == 0


class TestTraces:
    @pytest.fixture
    def setup(self):
        g = powerlaw_chung_lu(1500, 8.0, exponent=2.05, seed=2)
        og = apply_degree_ordering(g)[0].orient_lower()
        lotus = build_lotus_graph(g)
        return g, og, lotus

    def test_forward_trace_nonempty(self, setup):
        _, og, _ = setup
        trace = forward_trace(og)
        assert trace.size > og.num_edges  # streams + random reads

    def test_forward_trace_empty_graph(self):
        og = empty_graph(5).orient_lower()
        assert forward_trace(og).size == 0

    def test_phase1_pair_count(self, setup):
        _, _, lotus = setup
        pair_indptr, bits = _phase1_pairs(lotus)
        deg = lotus.he.degrees()
        assert bits.size == int((deg * (deg - 1) // 2).sum())
        assert pair_indptr[-1] == bits.size

    def test_phase1_bits_in_range(self, setup):
        _, _, lotus = setup
        _, bits = _phase1_pairs(lotus)
        assert bits.min() >= 0
        assert bits.max() < lotus.h2h.num_bits

    def test_phase1_probe_count_matches_algorithm(self, setup):
        """Trace probes == pairs tested by Algorithm 3 lines 3-5."""
        _, _, lotus = setup
        trace = lotus_phase1_trace(lotus)
        _, bits = _phase1_pairs(lotus)
        deg = lotus.he.degrees()
        # trace = stream lines + one line per probe
        stream_lines_upper = int(deg.sum()) + np.count_nonzero(deg)
        assert bits.size <= trace.size <= bits.size + stream_lines_upper

    def test_phase_traces_disjoint_regions(self, setup):
        """Phase 1 must never touch NHE addresses and phase 3 never H2H."""
        _, _, lotus = setup
        from repro.memsim.trace import lotus_layout

        layout = lotus_layout(lotus)
        nhe = layout["nhe"]
        h2h = layout["h2h"]
        p1 = lotus_phase1_trace(lotus, layout) * 64
        p3 = lotus_phase3_trace(lotus, layout) * 64
        assert not ((p1 >= nhe.base) & (p1 < nhe.base + nhe.size_bytes)).any()
        assert not ((p3 >= h2h.base) & (p3 < h2h.base + h2h.size_bytes)).any()

    def test_lotus_trace_concatenates(self, setup):
        _, _, lotus = setup
        full = lotus_trace(lotus)
        parts = (
            lotus_phase1_trace(lotus).size
            + lotus_phase2_trace(lotus).size
            + lotus_phase3_trace(lotus).size
        )
        assert full.size == parts

    def test_h2h_access_lines_match_fig9_domain(self, setup):
        _, _, lotus = setup
        lines = h2h_access_lines(lotus)
        max_line = (lotus.h2h.data.size - 1) // 64
        assert lines.min() >= 0 and lines.max() <= max_line

    def test_locality_headline(self, setup):
        """The reproduction's core claim: Lotus's trace misses less than
        Forward's on a SkyLakeX-like hierarchy (Figure 4 shape)."""
        _, og, lotus = setup
        m = SKYLAKEX.scaled(1024)
        h1 = MemoryHierarchy(m)
        h1.access_lines(forward_trace(og))
        h2 = MemoryHierarchy(m)
        h2.access_lines(lotus_trace(lotus))
        assert h2.stats().llc_misses < h1.stats().llc_misses


class TestBranchPredictor:
    def test_endpoints(self):
        assert two_bit_predictor_miss_rate(0.0) == 0.0
        assert two_bit_predictor_miss_rate(1.0) == 0.0

    def test_symmetry(self):
        assert two_bit_predictor_miss_rate(0.3) == pytest.approx(
            two_bit_predictor_miss_rate(0.7)
        )

    def test_worst_case_is_half(self):
        assert two_bit_predictor_miss_rate(0.5) == pytest.approx(0.5)

    def test_monotone_toward_half(self):
        rates = two_bit_predictor_miss_rate(np.array([0.05, 0.2, 0.35, 0.5]))
        assert (np.diff(rates) > 0).all()

    @pytest.mark.parametrize("p", [0.1, 0.25, 0.5, 0.8, 0.95])
    def test_matches_simulation(self, p):
        """Closed form vs a literal 2-bit counter simulation."""
        rng = np.random.default_rng(42)
        outcomes = rng.random(200_000) < p
        state, misses = 2, 0
        for taken in outcomes:
            predicted = state >= 2
            if predicted != taken:
                misses += 1
            state = min(state + 1, 3) if taken else max(state - 1, 0)
        assert misses / outcomes.size == pytest.approx(
            float(two_bit_predictor_miss_rate(p)), abs=0.01
        )


class TestOpCounts:
    def test_forward_counts_scale_with_edges(self):
        g1 = erdos_renyi(200, 0.05, seed=3)
        g2 = erdos_renyi(200, 0.15, seed=3)
        og1 = apply_degree_ordering(g1)[0].orient_lower()
        og2 = apply_degree_ordering(g2)[0].orient_lower()
        c1, c2 = forward_opcounts(og1), forward_opcounts(og2)
        assert c2.instructions > c1.instructions
        assert c2.loads > c1.loads

    def test_lotus_beats_forward_on_skewed(self):
        """Figure 5 shape: Lotus needs fewer memory accesses, instructions,
        and branch mispredictions than Forward on power-law graphs."""
        g = powerlaw_chung_lu(4000, 10.0, exponent=2.0, seed=4)
        og = apply_degree_ordering(g)[0].orient_lower()
        lotus = build_lotus_graph(g)
        f, l = forward_opcounts(og), lotus_opcounts(lotus)
        assert l.memory_accesses < f.memory_accesses
        assert l.instructions < f.instructions
        assert l.branch_mispredicts < f.branch_mispredicts

    def test_empty_graph(self):
        og = empty_graph(4).orient_lower()
        c = forward_opcounts(og)
        assert c.loads == 0

    def test_counts_nonnegative(self):
        g = complete_graph(12)
        lotus = build_lotus_graph(g, LotusConfig(hub_count=3))
        c = lotus_opcounts(lotus)
        for field in ("loads", "stores", "instructions", "branches", "branch_mispredicts"):
            assert getattr(c, field) >= 0


class TestCostModel:
    def test_components_positive(self):
        g = powerlaw_chung_lu(1000, 8.0, exponent=2.1, seed=5)
        og = apply_degree_ordering(g)[0].orient_lower()
        m = SKYLAKEX.scaled(1024)
        h = MemoryHierarchy(m)
        h.access_lines(forward_trace(og))
        cm = modeled_seconds(forward_opcounts(og), h.stats(), m)
        assert cm.seconds_single_core > 0
        assert cm.seconds_parallel < cm.seconds_single_core
        assert cm.total_cycles > 0

    def test_more_threads_never_slower(self):
        g = powerlaw_chung_lu(1000, 8.0, exponent=2.1, seed=6)
        og = apply_degree_ordering(g)[0].orient_lower()
        m = SKYLAKEX.scaled(1024)
        h = MemoryHierarchy(m)
        h.access_lines(forward_trace(og))
        ops, stats = forward_opcounts(og), h.stats()
        t1 = modeled_seconds(ops, stats, m, threads=1).seconds_parallel
        t8 = modeled_seconds(ops, stats, m, threads=8).seconds_parallel
        t32 = modeled_seconds(ops, stats, m, threads=32).seconds_parallel
        assert t1 >= t8 >= t32
