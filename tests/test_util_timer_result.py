"""Tests for timers and the TCResult record."""

import time

import pytest

from repro.tc.result import TCResult
from repro.util.timer import PhaseTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first == 0.0


class TestPhaseTimer:
    def test_accumulates(self):
        pt = PhaseTimer()
        with pt.phase("a"):
            time.sleep(0.005)
        with pt.phase("a"):
            time.sleep(0.005)
        with pt.phase("b"):
            pass
        assert pt.phases["a"] >= 0.009
        assert set(pt.phases) == {"a", "b"}
        assert pt.total == pytest.approx(sum(pt.phases.values()))

    def test_fractions_sum_to_one(self):
        pt = PhaseTimer()
        with pt.phase("x"):
            time.sleep(0.002)
        with pt.phase("y"):
            time.sleep(0.002)
        assert sum(pt.fractions().values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert PhaseTimer().fractions() == {}

    def test_insertion_order_preserved(self):
        pt = PhaseTimer()
        for name in ("pre", "p1", "p2", "p3"):
            pt.add(name, 0.1)
        assert list(pt.phases) == ["pre", "p1", "p2", "p3"]


class TestTCResult:
    def test_counting_time(self):
        r = TCResult("x", 10, elapsed=1.0, phases={"preprocess": 0.3, "count": 0.7})
        assert r.preprocessing_time == pytest.approx(0.3)
        assert r.counting_time == pytest.approx(0.7)

    def test_no_preprocess_phase(self):
        r = TCResult("x", 10, elapsed=0.5)
        assert r.preprocessing_time == 0.0
        assert r.counting_time == pytest.approx(0.5)

    def test_rate(self):
        r = TCResult("x", 10, elapsed=2.0)
        assert r.rate_edges_per_second(100) == pytest.approx(50.0)

    def test_rate_zero_time(self):
        assert TCResult("x", 0, elapsed=0.0).rate_edges_per_second(5) == float("inf")
