"""Tests for degree ordering and the LOTUS relabeling array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    apply_degree_ordering,
    degree_ordering_permutation,
    from_edges,
    lotus_relabeling_array,
    powerlaw_chung_lu,
    relabel,
)
from repro.tc import count_triangles_matrix


class TestDegreeOrdering:
    def test_descending(self, star20):
        ra = degree_ordering_permutation(star20)
        assert ra[0] == 0  # the hub gets ID 0

    def test_is_permutation(self, er_small):
        ra = degree_ordering_permutation(er_small)
        assert sorted(ra) == list(range(er_small.num_vertices))

    def test_degrees_monotone_after_relabel(self, powerlaw_small):
        g2, _ = apply_degree_ordering(powerlaw_small)
        deg = g2.degrees()
        assert (np.diff(deg) <= 0).all() or (np.sort(deg)[::-1] == deg).all()

    def test_tie_break_by_id(self):
        g = from_edges(np.array([[0, 1], [2, 3]]))
        ra = degree_ordering_permutation(g)
        np.testing.assert_array_equal(ra, [0, 1, 2, 3])


class TestRelabel:
    def test_identity(self, er_small):
        n = er_small.num_vertices
        assert relabel(er_small, np.arange(n)) == er_small

    def test_preserves_structure(self, er_small):
        rng = np.random.default_rng(0)
        ra = rng.permutation(er_small.num_vertices)
        g2 = relabel(er_small, ra)
        assert g2.num_edges == er_small.num_edges
        g2.validate()

    def test_triangle_count_invariant(self, er_medium):
        """The triangle count is invariant under any relabeling."""
        rng = np.random.default_rng(3)
        ra = rng.permutation(er_medium.num_vertices)
        assert count_triangles_matrix(relabel(er_medium, ra)) == count_triangles_matrix(er_medium)

    def test_rejects_non_permutation(self, k5):
        with pytest.raises(ValueError):
            relabel(k5, np.array([0, 0, 1, 2, 3]))

    def test_rejects_wrong_length(self, k5):
        with pytest.raises(ValueError):
            relabel(k5, np.arange(4))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25)
    def test_random_permutation_preserves_triangles(self, seed):
        g = powerlaw_chung_lu(150, 6.0, exponent=2.2, seed=1)
        rng = np.random.default_rng(seed)
        ra = rng.permutation(g.num_vertices)
        assert count_triangles_matrix(relabel(g, ra)) == count_triangles_matrix(g)


class TestLotusRelabeling:
    def test_is_permutation(self, powerlaw_small):
        ra = lotus_relabeling_array(powerlaw_small)
        assert sorted(ra) == list(range(powerlaw_small.num_vertices))

    def test_head_gets_top_degrees(self, powerlaw_small):
        g = powerlaw_small
        ra = lotus_relabeling_array(g, head_fraction=0.10)
        head = int(round(g.num_vertices * 0.10))
        deg = g.degrees()
        head_old = np.flatnonzero(ra < head)
        tail_old = np.flatnonzero(ra >= head)
        # every head vertex has degree >= every tail vertex
        assert deg[head_old].min() >= deg[tail_old].max() or True  # ties allowed
        # strictly: the head contains the top-`head` degrees as a multiset
        top = np.sort(deg)[::-1][:head]
        np.testing.assert_array_equal(np.sort(deg[head_old])[::-1], top)

    def test_head_sorted_descending(self, powerlaw_small):
        g = powerlaw_small
        ra = lotus_relabeling_array(g, head_fraction=0.05)
        head = int(round(g.num_vertices * 0.05))
        old_in_new_order = np.empty(g.num_vertices, dtype=np.int64)
        old_in_new_order[ra] = np.arange(g.num_vertices)
        head_degrees = g.degrees()[old_in_new_order[:head]]
        assert (np.diff(head_degrees) <= 0).all()

    def test_tail_preserves_original_order(self, er_small):
        """The non-head vertices keep their relative order (Section 4.3.1)."""
        g = er_small
        ra = lotus_relabeling_array(g, head_fraction=0.10)
        head = int(round(g.num_vertices * 0.10))
        tail_old = np.flatnonzero(ra >= head)
        # new IDs of the tail, in old-ID order, must be increasing
        assert (np.diff(ra[tail_old]) > 0).all()

    def test_zero_head_fraction(self, er_small):
        ra = lotus_relabeling_array(er_small, head_fraction=0.0)
        np.testing.assert_array_equal(ra, np.arange(er_small.num_vertices))

    def test_bad_fraction(self, k5):
        with pytest.raises(ValueError):
            lotus_relabeling_array(k5, head_fraction=1.5)
