"""Tests for adaptive dispatch, recursive LOTUS, and Table-1 analytics."""

import numpy as np
import pytest

from repro.core import (
    LotusConfig,
    count_triangles_adaptive,
    count_triangles_lotus_recursive,
    hub_characteristics,
)
from repro.graph import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    powerlaw_chung_lu,
    star_graph,
    watts_strogatz,
)
from repro.graph.degree import hub_mask_top_k
from repro.core.stats import fruitless_search_pct
from repro.tc import count_triangles_matrix


class TestAdaptiveDispatch:
    def test_skewed_goes_lotus(self):
        g = powerlaw_chung_lu(3000, 10.0, exponent=2.0, seed=1)
        r = count_triangles_adaptive(g)
        assert r.extra["dispatch"] == "lotus"
        assert r.triangles == count_triangles_matrix(g)

    def test_uniform_falls_back(self):
        g = watts_strogatz(3000, 8, 0.1, seed=2)
        r = count_triangles_adaptive(g)
        assert r.extra["dispatch"] == "forward-fallback"
        assert r.triangles == count_triangles_matrix(g)

    def test_empty_graph(self):
        r = count_triangles_adaptive(empty_graph(5))
        assert r.triangles == 0


class TestRecursiveLotus:
    def test_correct_on_powerlaw(self):
        g = powerlaw_chung_lu(2500, 9.0, exponent=2.0, seed=3)
        r = count_triangles_lotus_recursive(g, LotusConfig(hub_count=32), min_edges=64)
        assert r.triangles == count_triangles_matrix(g)

    def test_correct_on_er(self):
        g = erdos_renyi(400, 0.05, seed=4)
        r = count_triangles_lotus_recursive(g, LotusConfig(hub_count=16))
        assert r.triangles == count_triangles_matrix(g)

    def test_depth_bounded(self):
        g = powerlaw_chung_lu(2500, 9.0, exponent=2.0, seed=5)
        r = count_triangles_lotus_recursive(
            g, LotusConfig(hub_count=16), max_depth=2, min_edges=8
        )
        assert r.extra["depth"] <= 2

    def test_recursion_happens_when_skewed(self):
        g = powerlaw_chung_lu(4000, 12.0, exponent=2.0, seed=6)
        r = count_triangles_lotus_recursive(
            g, LotusConfig(hub_count=8), max_depth=3, min_edges=32, skew_threshold=1.5
        )
        assert r.extra["depth"] >= 2
        assert r.triangles == count_triangles_matrix(g)

    def test_complete_graph(self):
        g = complete_graph(20)
        r = count_triangles_lotus_recursive(g, LotusConfig(hub_count=4))
        assert r.triangles == 1140


class TestHubCharacteristics:
    def test_percentages_sum(self):
        g = powerlaw_chung_lu(2000, 10.0, exponent=2.05, seed=7)
        hc = hub_characteristics(g, hub_fraction=0.01)
        assert hc.hub_to_hub_pct + hc.hub_to_nonhub_pct == pytest.approx(hc.hub_edges_pct)
        assert hc.hub_edges_pct + hc.nonhub_edges_pct == pytest.approx(100.0)

    def test_skewed_graph_matches_paper_shape(self):
        """Table 1 shape: 1% hubs attract most edges, most triangles, and a
        dense hub sub-graph (RD >> 1)."""
        g = powerlaw_chung_lu(5000, 12.0, exponent=2.0, seed=8)
        hc = hub_characteristics(g, hub_fraction=0.01)
        assert hc.hub_edges_pct > 50.0
        assert hc.hub_triangles_pct > 80.0
        assert hc.relative_density > 50.0

    def test_uniform_graph_weak_hubs(self):
        g = watts_strogatz(3000, 10, 0.2, seed=9)
        hc = hub_characteristics(g, hub_fraction=0.01)
        assert hc.hub_edges_pct < 10.0

    def test_star_graph(self):
        g = star_graph(100)
        hc = hub_characteristics(g, hub_fraction=0.01)
        assert hc.hub_edges_pct == 100.0
        assert hc.hub_triangles_pct == 0.0  # star has no triangles

    def test_empty(self):
        hc = hub_characteristics(empty_graph(10))
        assert hc.hub_edges_pct == 0.0

    def test_fruitless_pct_bounds(self):
        g = powerlaw_chung_lu(1500, 8.0, exponent=2.1, seed=10)
        hubs = hub_mask_top_k(g, 15)
        pct = fruitless_search_pct(g, hubs)
        assert 0.0 <= pct <= 100.0

    def test_fruitless_zero_without_hubs(self):
        g = erdos_renyi(100, 0.1, seed=11)
        assert fruitless_search_pct(g, np.zeros(100, dtype=bool)) == 0.0
