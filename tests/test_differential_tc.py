"""Property-based differential tests: every triangle counter vs a
brute-force oracle.

The oracle is a dense-adjacency ``trace(A^3)/6`` computed with
``np.einsum`` — structurally independent from every production kernel
(which all operate on CSR/CSX).  Each counter in ``repro.tc`` /
``repro.core`` must agree with it on ~20 seeded Chung-Lu / R-MAT
graphs and on the degenerate edge cases the Lotus preprocessing has to
survive (empty graphs, single triangle, cliques, stars, and raw inputs
containing self-loops / multi-edges, which the builders normalise away).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LotusConfig, count_triangles_lotus
from repro.core.adaptive import (
    count_triangles_adaptive,
    count_triangles_lotus_recursive,
)
from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    powerlaw_chung_lu,
    rmat,
    star_graph,
)
from repro.tc import (
    count_triangles_block,
    count_triangles_edge_iterator,
    count_triangles_forward,
    count_triangles_forward_hashed,
    count_triangles_matrix,
    count_triangles_node_iterator,
    count_triangles_spgemm,
)


def oracle_count(graph) -> int:
    """Brute force: dense ``trace(A^3) / 6`` via einsum."""
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return 0
    a = np.zeros((n, n), dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    a[src, graph.indices.astype(np.int64)] = 1
    return int(np.einsum("ij,jk,ki->", a, a, a)) // 6


# every counting entry point under test: name -> graph -> triangle total
COUNTERS = {
    "lotus": lambda g: count_triangles_lotus(g).triangles,
    "lotus-hub4": lambda g: count_triangles_lotus(
        g, LotusConfig(hub_count=4)
    ).triangles,
    "lotus-recursive": lambda g: count_triangles_lotus_recursive(g).triangles,
    "adaptive": lambda g: count_triangles_adaptive(g).triangles,
    "forward": lambda g: count_triangles_forward(g).triangles,
    "forward-unfused": lambda g: count_triangles_forward(g, fused=False).triangles,
    "forward-natural": lambda g: count_triangles_forward(
        g, degree_order=False
    ).triangles,
    "forward-hashed": lambda g: count_triangles_forward_hashed(g).triangles,
    "node-iterator": lambda g: count_triangles_node_iterator(g).triangles,
    "edge-iterator": lambda g: count_triangles_edge_iterator(g).triangles,
    "block": lambda g: count_triangles_block(g, num_blocks=3).triangles,
    "spgemm": lambda g: count_triangles_spgemm(g).triangles,
    "matrix": count_triangles_matrix,
}


def assert_all_counters_match(graph, label: str) -> None:
    expected = oracle_count(graph)
    for name, fn in COUNTERS.items():
        got = fn(graph)
        assert got == expected, (
            f"{name} on {label}: got {got}, oracle says {expected}"
        )


# ~20 seeded random graphs: Chung-Lu social-network stand-ins across the
# skew range plus R-MAT web-graph stand-ins across quadrant skews
RANDOM_GRAPHS = [
    pytest.param("cl", (60, 4.0, 1.9, 1), id="cl-60-s1"),
    pytest.param("cl", (80, 6.0, 2.0, 2), id="cl-80-s2"),
    pytest.param("cl", (100, 5.0, 2.1, 3), id="cl-100-s3"),
    pytest.param("cl", (120, 8.0, 2.2, 4), id="cl-120-s4"),
    pytest.param("cl", (150, 6.0, 2.3, 5), id="cl-150-s5"),
    pytest.param("cl", (200, 7.0, 2.05, 6), id="cl-200-s6"),
    pytest.param("cl", (250, 5.0, 2.5, 7), id="cl-250-s7"),
    pytest.param("cl", (300, 6.0, 3.2, 8), id="cl-300-lowskew"),
    pytest.param("cl", (64, 10.0, 1.8, 9), id="cl-64-dense"),
    pytest.param("cl", (90, 3.0, 2.0, 10), id="cl-90-sparse"),
    pytest.param("rmat", (6, 4, 0.57, 11), id="rmat-6-s11"),
    pytest.param("rmat", (6, 8, 0.62, 12), id="rmat-6-dense"),
    pytest.param("rmat", (7, 4, 0.55, 13), id="rmat-7-s13"),
    pytest.param("rmat", (7, 6, 0.66, 14), id="rmat-7-skewed"),
    pytest.param("rmat", (7, 8, 0.60, 15), id="rmat-7-dense"),
    pytest.param("rmat", (8, 4, 0.57, 16), id="rmat-8-s16"),
    pytest.param("rmat", (8, 6, 0.63, 17), id="rmat-8-skewed"),
    pytest.param("rmat", (8, 8, 0.45, 18), id="rmat-8-mild"),
    pytest.param("rmat", (6, 12, 0.70, 19), id="rmat-6-extreme"),
    pytest.param("rmat", (7, 10, 0.52, 20), id="rmat-7-heavy"),
]


@pytest.mark.parametrize("kind, params", RANDOM_GRAPHS)
def test_random_graphs_match_oracle(kind, params):
    if kind == "cl":
        n, avg_deg, gamma, seed = params
        graph = powerlaw_chung_lu(n, avg_deg, exponent=gamma, seed=seed)
    else:
        scale, ef, a, seed = params
        b = c = (1.0 - a) / 3.0
        graph = rmat(scale, edge_factor=ef, a=a, b=b, c=c, seed=seed)
    assert_all_counters_match(graph, f"{kind}{params}")


EDGE_CASES = [
    pytest.param(lambda: empty_graph(0), id="zero-vertices"),
    pytest.param(lambda: empty_graph(17), id="no-edges"),
    pytest.param(lambda: complete_graph(3), id="single-triangle"),
    pytest.param(lambda: complete_graph(2), id="single-edge"),
    pytest.param(lambda: complete_graph(9), id="clique-9"),
    pytest.param(lambda: star_graph(25), id="star"),
    pytest.param(lambda: cycle_graph(12), id="cycle"),
    pytest.param(
        lambda: from_edges(
            np.array([(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)]),
            num_vertices=8,
        ),
        id="two-triangles-isolated-vertices",
    ),
    pytest.param(
        # raw input with self-loops and duplicate/multi-edges: the builder
        # must normalise them away (Algorithm 2 drops self-loops)
        lambda: from_edges(
            np.array(
                [(0, 0), (1, 1), (0, 1), (1, 0), (0, 1), (1, 2), (2, 0), (2, 2)]
            )
        ),
        id="self-loops-and-multi-edges",
    ),
    pytest.param(
        # a path: wedges but zero triangles
        lambda: from_edges(np.array([(0, 1), (1, 2), (2, 3), (3, 4)])),
        id="path-no-triangles",
    ),
    pytest.param(
        # all vertices tie on degree: degenerate-degree hub selection
        lambda: cycle_graph(30),
        id="degenerate-degrees",
    ),
]


@pytest.mark.parametrize("make", EDGE_CASES)
def test_edge_cases_match_oracle(make, request):
    assert_all_counters_match(make(), request.node.callspec.id)


def test_zero_hub_configuration():
    """hub_count=1 on a graph whose vertex 0 has no edges at all."""
    graph = from_edges(np.array([(1, 2), (2, 3), (3, 1)]), num_vertices=5)
    result = count_triangles_lotus(graph, LotusConfig(hub_count=1))
    assert result.triangles == 1
    result = count_triangles_lotus(graph, LotusConfig(hub_count=5))
    assert result.triangles == 1


def test_hub_count_sweep_on_one_graph():
    """The HHH/HHN/HNN/NNN split must re-assemble to the same total for
    every hub count (the Figure 7 decomposition is a partition)."""
    graph = powerlaw_chung_lu(200, 6.0, exponent=2.0, seed=33)
    expected = oracle_count(graph)
    for hubs in (1, 2, 3, 5, 17, 64, 200):
        result = count_triangles_lotus(graph, LotusConfig(hub_count=hubs))
        counts = result.extra["counts"]
        assert counts.hhh + counts.hhn + counts.hnn + counts.nnn == expected
        assert result.triangles == expected


@st.composite
def raw_edge_lists(draw):
    """Arbitrary small raw edge arrays, self-loops and duplicates included."""
    n = draw(st.integers(min_value=1, max_value=24))
    m = draw(st.integers(min_value=0, max_value=60))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(pairs, dtype=np.int64).reshape(len(pairs), 2)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(raw_edge_lists())
def test_property_all_counters_agree(data):
    n, edges = data
    graph = from_edges(edges, num_vertices=n)
    expected = oracle_count(graph)
    # exercise the fast counters plus lotus with a mid-range hub count on
    # every generated instance; the full matrix runs in the seeded tests
    assert count_triangles_lotus(graph).triangles == expected
    assert count_triangles_lotus(
        graph, LotusConfig(hub_count=max(1, n // 2))
    ).triangles == expected
    assert count_triangles_forward(graph).triangles == expected
    assert count_triangles_forward_hashed(graph).triangles == expected
    assert count_triangles_edge_iterator(graph).triangles == expected
    assert count_triangles_node_iterator(graph).triangles == expected
    assert count_triangles_spgemm(graph).triangles == expected
    assert count_triangles_matrix(graph) == expected
