"""Tests for degree analytics, IO round-trips, and the dataset registry."""

import numpy as np
import pytest

from repro.graph import (
    DATASETS,
    dataset_names,
    degree_statistics,
    hub_mask_top_fraction,
    hub_mask_top_k,
    is_skewed,
    load_dataset,
    load_edgelist,
    load_npz,
    powerlaw_chung_lu,
    save_edgelist,
    save_npz,
    star_graph,
    watts_strogatz,
)
from repro.graph.datasets import LARGE_SUITE, SMALL_SUITE


class TestDegreeStatistics:
    def test_star(self, star20):
        stats = degree_statistics(star20)
        assert stats.max_degree == 19
        assert stats.median_degree == 1
        assert stats.skew_ratio > 1.5

    def test_empty(self, empty10):
        stats = degree_statistics(empty10)
        assert stats.mean_degree == 0.0
        assert stats.gini == 0.0

    def test_regular_graph_gini_zero(self, c6):
        assert degree_statistics(c6).gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_increases_with_skew(self):
        sw = watts_strogatz(1000, 8, 0.05, seed=1)
        pl = powerlaw_chung_lu(1000, 8.0, exponent=2.0, seed=1)
        assert degree_statistics(pl).gini > degree_statistics(sw).gini + 0.2


class TestHubMasks:
    def test_top_k(self, star20):
        mask = hub_mask_top_k(star20, 1)
        assert mask[0] and mask.sum() == 1

    def test_top_k_exceeds_n(self, k5):
        assert hub_mask_top_k(k5, 100).sum() == 5

    def test_top_fraction(self, powerlaw_small):
        mask = hub_mask_top_fraction(powerlaw_small, 0.01)
        assert mask.sum() == round(powerlaw_small.num_vertices * 0.01)

    def test_hubs_have_max_degrees(self, powerlaw_small):
        g = powerlaw_small
        mask = hub_mask_top_k(g, 10)
        deg = g.degrees()
        assert deg[mask].min() >= deg[~mask].max()

    def test_zero_k(self, k5):
        assert hub_mask_top_k(k5, 0).sum() == 0

    def test_bad_fraction(self, k5):
        with pytest.raises(ValueError):
            hub_mask_top_fraction(k5, -0.1)


class TestSkewDetection:
    def test_powerlaw_is_skewed(self):
        g = powerlaw_chung_lu(5000, 10.0, exponent=2.0, seed=2)
        assert is_skewed(g)

    def test_smallworld_not_skewed(self):
        g = watts_strogatz(5000, 10, 0.1, seed=2)
        assert not is_skewed(g)

    def test_empty_not_skewed(self, empty10):
        assert not is_skewed(empty10)


class TestIO:
    def test_npz_roundtrip(self, er_small, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(p, er_small)
        assert load_npz(p) == er_small

    def test_edgelist_roundtrip(self, er_small, tmp_path):
        p = tmp_path / "g.txt"
        save_edgelist(p, er_small)
        assert load_edgelist(p) == er_small

    def test_edgelist_preserves_isolated(self, tmp_path):
        g = star_graph(5).subgraph_mask(np.array([True] * 5))
        p = tmp_path / "g.txt"
        save_edgelist(p, g)
        assert load_edgelist(p).num_vertices == 5

    def test_edgelist_comments(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# a comment\n0 1\n# another\n1 2\n")
        g = load_edgelist(p)
        assert g.num_edges == 2


class TestDatasets:
    def test_registry_names(self):
        assert len(SMALL_SUITE) == 10
        assert len(LARGE_SUITE) == 4
        assert set(dataset_names()) <= set(DATASETS)

    def test_load_is_cached(self):
        assert load_dataset("LJGrp") is load_dataset("LJGrp")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("NoSuchGraph")

    def test_social_networks_are_skewed(self):
        for name in ("LJGrp", "Twtr10"):
            assert is_skewed(load_dataset(name)), name

    def test_friendster_least_skewed_sn(self):
        """The paper's Section 5.5 outlier: Friendster's max degree is tiny
        relative to the other social networks."""
        fr = degree_statistics(load_dataset("Frndstr"))
        tw = degree_statistics(load_dataset("Twtr10"))
        assert fr.max_degree / fr.mean_degree < tw.max_degree / tw.mean_degree / 4

    def test_all_small_suite_nonempty(self):
        for name in SMALL_SUITE:
            g = load_dataset(name)
            assert g.num_edges > 10_000, name
