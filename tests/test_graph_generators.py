"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    powerlaw_chung_lu,
    rmat,
    star_graph,
    watts_strogatz,
)
from repro.graph.degree import degree_statistics


class TestDeterministicGraphs:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert (g.degrees() == 5).all()

    def test_star(self):
        g = star_graph(10)
        assert g.num_edges == 9
        assert g.degree(0) == 9

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_edges == 8
        assert (g.degrees() == 2).all()

    def test_tiny_cycle(self):
        assert cycle_graph(2).num_edges == 0

    def test_empty(self):
        g = empty_graph(5)
        assert g.num_vertices == 5 and g.num_edges == 0


class TestErdosRenyi:
    def test_determinism(self):
        assert erdos_renyi(200, 0.05, seed=3) == erdos_renyi(200, 0.05, seed=3)

    def test_seed_changes_graph(self):
        assert erdos_renyi(200, 0.05, seed=3) != erdos_renyi(200, 0.05, seed=4)

    def test_p_zero(self):
        assert erdos_renyi(50, 0.0, seed=0).num_edges == 0

    def test_p_one(self):
        g = erdos_renyi(20, 1.0, seed=0)
        assert g.num_edges == 190

    def test_edge_count_near_expectation(self):
        n, p = 500, 0.04
        g = erdos_renyi(n, p, seed=12)
        expected = n * (n - 1) / 2 * p
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_valid(self):
        erdos_renyi(300, 0.02, seed=5).validate()

    def test_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestChungLu:
    def test_zero_weights(self):
        assert chung_lu(np.zeros(10)).num_edges == 0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            chung_lu(np.array([-1.0, 2.0]))

    def test_determinism(self):
        w = np.linspace(1, 50, 100)
        assert chung_lu(w, seed=1) == chung_lu(w, seed=1)

    def test_expected_degree_tracking(self):
        # uniform weights ~ ER; mean degree should track the weights
        w = np.full(400, 10.0)
        g = chung_lu(w, seed=2)
        assert 7.0 < g.degrees().mean() < 13.0

    def test_valid(self):
        chung_lu(np.linspace(1, 40, 200), seed=3).validate()


class TestPowerlawChungLu:
    def test_skewed_distribution(self):
        g = powerlaw_chung_lu(2000, 8.0, exponent=2.1, seed=4)
        stats = degree_statistics(g)
        assert stats.max_degree > 20 * stats.median_degree
        assert stats.gini > 0.4

    def test_higher_exponent_less_skew(self):
        g_heavy = powerlaw_chung_lu(2000, 8.0, exponent=2.0, seed=4)
        g_light = powerlaw_chung_lu(2000, 8.0, exponent=3.5, seed=4)
        assert degree_statistics(g_heavy).gini > degree_statistics(g_light).gini

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_chung_lu(100, 5.0, exponent=0.9)


class TestRmat:
    def test_size(self):
        g = rmat(10, edge_factor=8, seed=5)
        assert g.num_vertices == 1024
        # dedup removes some edges but most survive
        assert g.num_edges > 0.4 * 8 * 1024

    def test_determinism(self):
        assert rmat(8, 4, seed=6) == rmat(8, 4, seed=6)

    def test_skewed(self):
        g = rmat(12, 16, seed=7)
        stats = degree_statistics(g)
        assert stats.max_degree > 10 * stats.mean_degree

    def test_uniform_quadrants_like_er(self):
        g = rmat(8, 8, a=0.25, b=0.25, c=0.25, seed=8)
        stats = degree_statistics(g)
        assert stats.max_degree < 8 * stats.mean_degree

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, 4, a=0.9, b=0.2, c=0.2)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(300, 3, seed=9)
        # m edges per new vertex from m+1 onwards, plus the initial star
        assert g.num_edges == 3 + (300 - 4) * 3

    def test_hub_emergence(self):
        g = barabasi_albert(500, 2, seed=10)
        assert g.degrees().max() > 20

    def test_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)


class TestWattsStrogatz:
    def test_no_rewire_is_lattice(self):
        g = watts_strogatz(50, 4, 0.0, seed=11)
        assert (g.degrees() == 4).all()

    def test_rewired_still_valid(self):
        watts_strogatz(200, 6, 0.3, seed=12).validate()

    def test_not_skewed(self):
        g = watts_strogatz(2000, 10, 0.1, seed=13)
        stats = degree_statistics(g)
        assert stats.max_degree < 3 * stats.mean_degree

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(20, 3, 0.1)
