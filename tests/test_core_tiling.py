"""Tests for Squared Edge Tiling (Section 4.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LotusConfig,
    build_lotus_graph,
    edge_balanced_tiling,
    squared_edge_tiling,
    tile_pair_work,
    tiles_for_phase1,
)
from repro.graph import powerlaw_chung_lu


class TestTilePairWork:
    def test_full_list(self):
        # degree d -> d*(d-1)/2 pairs
        assert tile_pair_work(0, 100) == 4950

    def test_split_adds_up(self):
        assert tile_pair_work(0, 45) + tile_pair_work(45, 100) == tile_pair_work(0, 100)

    def test_empty(self):
        assert tile_pair_work(10, 10) == 0
        assert tile_pair_work(10, 5) == 0


class TestSquaredEdgeTiling:
    def test_paper_example(self):
        """Section 4.6: degree 100, 5 partitions -> 0, 45, 63, 77, 89, 100."""
        bounds = squared_edge_tiling(100, 5)
        np.testing.assert_array_equal(bounds, [0, 45, 63, 77, 89, 100])

    def test_boundaries_are_monotone_and_cover(self):
        bounds = squared_edge_tiling(1000, 7)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert (np.diff(bounds) >= 0).all()

    def test_single_partition(self):
        np.testing.assert_array_equal(squared_edge_tiling(50, 1), [0, 50])

    def test_zero_degree(self):
        np.testing.assert_array_equal(squared_edge_tiling(0, 4), [0, 0, 0, 0, 0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            squared_edge_tiling(10, 0)
        with pytest.raises(ValueError):
            squared_edge_tiling(-1, 2)

    @given(st.integers(10, 5000), st.integers(1, 64))
    @settings(max_examples=80)
    def test_work_balance_property(self, degree, p):
        """Tile works differ by at most ~degree (one boundary's rounding),
        vs the O(degree^2/p) imbalance of equal-length splits."""
        bounds = squared_edge_tiling(degree, p)
        works = [
            tile_pair_work(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])
        ]
        assert sum(works) == tile_pair_work(0, degree)
        if p > 1 and degree >= 10 * p:
            target = tile_pair_work(0, degree) / p
            assert max(works) <= target + 2 * degree

    @given(st.integers(100, 3000))
    @settings(max_examples=30)
    def test_beats_edge_balanced(self, degree):
        """Squared tiling's max tile is (much) smaller than edge-balanced's."""
        p = 8
        sq = squared_edge_tiling(degree, p)
        eb = edge_balanced_tiling(degree, p)
        max_sq = max(
            tile_pair_work(int(a), int(b)) for a, b in zip(sq[:-1], sq[1:])
        )
        max_eb = max(
            tile_pair_work(int(a), int(b)) for a, b in zip(eb[:-1], eb[1:])
        )
        assert max_sq <= max_eb


class TestEdgeBalanced:
    def test_equal_lengths(self):
        bounds = edge_balanced_tiling(100, 4)
        np.testing.assert_array_equal(np.diff(bounds), [25, 25, 25, 25])

    def test_last_tile_heaviest(self):
        """Equal-length tiles of a pair workload are maximally unbalanced:
        the last tile does ~(2p-1)x the first tile's work."""
        bounds = edge_balanced_tiling(1000, 10)
        works = [
            tile_pair_work(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])
        ]
        assert works[-1] > 10 * works[0]


class TestTilesForPhase1:
    def test_covers_all_work(self):
        g = powerlaw_chung_lu(2000, 10.0, exponent=2.0, seed=3)
        lotus = build_lotus_graph(g)
        tiles = tiles_for_phase1(lotus.he, partitions=8, degree_threshold=16)
        total_work = sum(t.work for t in tiles)
        deg = lotus.he.degrees()
        expected = int((deg * (deg - 1) // 2).sum())
        assert total_work == expected

    def test_small_rows_single_tile(self):
        g = powerlaw_chung_lu(500, 6.0, exponent=2.2, seed=4)
        lotus = build_lotus_graph(g)
        tiles = tiles_for_phase1(lotus.he, partitions=4, degree_threshold=10**9)
        assert all(t.start == 0 for t in tiles)

    def test_policy_validation(self):
        g = powerlaw_chung_lu(200, 5.0, exponent=2.2, seed=5)
        lotus = build_lotus_graph(g)
        with pytest.raises(ValueError):
            tiles_for_phase1(lotus.he, 4, policy="bogus")

    def test_big_rows_are_split(self):
        g = powerlaw_chung_lu(2000, 12.0, exponent=1.9, seed=6)
        lotus = build_lotus_graph(g)
        tiles = tiles_for_phase1(lotus.he, partitions=4, degree_threshold=8)
        deg = lotus.he.degrees()
        big_vertices = set(np.flatnonzero(deg > 8).tolist())
        split_vertices = {t.vertex for t in tiles if t.start > 0}
        assert split_vertices and split_vertices <= big_vertices
