"""Benchmark-trajectory artifacts and the regression gate.

The gate's contract: identical runs pass, injected regressions (count
growth beyond tolerance, attribution drift, a changed triangle count, a
vanished metric) fail with exit code 1, and improvements pass.  The
committed baseline must itself be a valid artifact for the quick suite.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.obs.regress import (
    DEFAULT_OVERHEAD_CEILING,
    DEFAULT_REL_TOL,
    DEFAULT_SHARE_TOL,
    compare_artifacts,
    format_deltas,
    load_artifact,
    main,
    regressions,
)
from repro.obs.trajectory import (
    ALL_MACHINES,
    QUICK_SUITE,
    build_trajectory_artifact,
    write_trajectory_artifact,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "trajectory" / "BENCH_baseline.json"


def _artifact(metrics):
    return {
        "schema": 1,
        "kind": "bench-trajectory",
        "generated": "2026-01-01",
        "suite": ["LJGrp"],
        "machines": ["SkyLakeX"],
        "metrics": metrics,
        "info": {},
    }


_METRICS = {
    "LJGrp.triangles": 177820,
    "LJGrp.SkyLakeX.forward.llc_misses": 100000,
    "LJGrp.SkyLakeX.forward.dtlb_misses": 5000,
    "LJGrp.SkyLakeX.lotus.region.he.llc_share": 0.66,
    "EU15.phase1.workers4_sim_speedup": 4.0,
    "telemetry.EU15.overhead_ratio": 1.03,
}


class TestCompareArtifacts:
    def test_identical_artifacts_have_no_regressions(self):
        deltas = compare_artifacts(_artifact(_METRICS), _artifact(dict(_METRICS)))
        assert regressions(deltas) == []
        assert all(not d.regressed for d in deltas)

    def test_count_growth_beyond_rel_tol_regresses(self):
        cand = dict(_METRICS)
        cand["LJGrp.SkyLakeX.forward.llc_misses"] = int(
            _METRICS["LJGrp.SkyLakeX.forward.llc_misses"] * (1 + DEFAULT_REL_TOL) + 1
        )
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.key for d in bad] == ["LJGrp.SkyLakeX.forward.llc_misses"]
        assert bad[0].kind == "count"

    def test_count_growth_within_rel_tol_passes(self):
        cand = dict(_METRICS)
        cand["LJGrp.SkyLakeX.forward.llc_misses"] = int(100000 * 1.01)
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_improvement_always_passes(self):
        cand = dict(_METRICS)
        cand["LJGrp.SkyLakeX.forward.llc_misses"] = 50000  # halved: better
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_triangle_count_change_is_exact_regression(self):
        cand = dict(_METRICS)
        cand["LJGrp.triangles"] = _METRICS["LJGrp.triangles"] + 1
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.key for d in bad] == ["LJGrp.triangles"]
        assert bad[0].kind == "exact"

    def test_share_drift_beyond_tol_regresses_both_directions(self):
        for direction in (+1, -1):
            cand = dict(_METRICS)
            cand["LJGrp.SkyLakeX.lotus.region.he.llc_share"] = (
                _METRICS["LJGrp.SkyLakeX.lotus.region.he.llc_share"]
                + direction * (DEFAULT_SHARE_TOL + 0.001)
            )
            bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
            assert [d.kind for d in bad] == ["share"]

    def test_share_drift_within_tol_passes(self):
        cand = dict(_METRICS)
        cand["LJGrp.SkyLakeX.lotus.region.he.llc_share"] = 0.66 + DEFAULT_SHARE_TOL / 2
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_speedup_drop_beyond_tol_regresses(self):
        cand = dict(_METRICS)
        cand["EU15.phase1.workers4_sim_speedup"] = 4.0 * (1 - DEFAULT_REL_TOL) - 0.01
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.key for d in bad] == ["EU15.phase1.workers4_sim_speedup"]
        assert bad[0].kind == "floor"

    def test_speedup_within_tol_passes(self):
        cand = dict(_METRICS)
        cand["EU15.phase1.workers4_sim_speedup"] = 4.0 * (1 - DEFAULT_REL_TOL / 2)
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_speedup_improvement_passes(self):
        # a floor metric gates only the downside: better scaling is fine
        cand = dict(_METRICS)
        cand["EU15.phase1.workers4_sim_speedup"] = 8.0
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_overhead_above_ceiling_regresses(self):
        cand = dict(_METRICS)
        cand["telemetry.EU15.overhead_ratio"] = DEFAULT_OVERHEAD_CEILING + 0.01
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.key for d in bad] == ["telemetry.EU15.overhead_ratio"]
        assert bad[0].kind == "ceiling"
        assert "absolute ceiling" in bad[0].reason

    def test_overhead_under_ceiling_passes_even_when_worse(self):
        # the gate is absolute: growth vs the baseline value alone is fine
        cand = dict(_METRICS)
        cand["telemetry.EU15.overhead_ratio"] = DEFAULT_OVERHEAD_CEILING - 0.01
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand))) == []

    def test_candidate_only_overhead_metric_is_still_gated(self):
        # unlike other candidate-only metrics, a ceiling key gates itself
        cand = dict(_METRICS)
        cand["telemetry.LJGrp.overhead_ratio"] = DEFAULT_OVERHEAD_CEILING + 0.5
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.key for d in bad] == ["telemetry.LJGrp.overhead_ratio"]
        assert bad[0].baseline is None and bad[0].kind == "ceiling"
        ok = dict(_METRICS)
        ok["telemetry.LJGrp.overhead_ratio"] = 1.0
        assert regressions(compare_artifacts(_artifact(_METRICS), _artifact(ok))) == []

    def test_overhead_ceiling_flag_overrides_default(self, tmp_path):
        cand = dict(_METRICS)
        cand["telemetry.EU15.overhead_ratio"] = 1.10
        base_p = tmp_path / "BENCH_baseline.json"
        cand_p = tmp_path / "BENCH_2026-01-02.json"
        base_p.write_text(json.dumps(_artifact(_METRICS)))
        cand_p.write_text(json.dumps(_artifact(cand)))
        assert main([str(base_p), str(cand_p)]) == 0
        assert main([str(base_p), str(cand_p), "--overhead-ceiling", "1.05"]) == 1

    def test_missing_tracked_metric_is_a_regression(self):
        cand = dict(_METRICS)
        del cand["LJGrp.SkyLakeX.forward.dtlb_misses"]
        bad = regressions(compare_artifacts(_artifact(_METRICS), _artifact(cand)))
        assert [d.kind for d in bad] == ["missing"]

    def test_candidate_only_metric_is_informational(self):
        cand = dict(_METRICS)
        cand["LJGrp.Haswell.forward.llc_misses"] = 1
        deltas = compare_artifacts(_artifact(_METRICS), _artifact(cand))
        assert regressions(deltas) == []
        assert [d.kind for d in deltas if d.key.startswith("LJGrp.Haswell")] == ["new"]

    def test_format_deltas_counts_tracked_metrics_only(self):
        cand = dict(_METRICS)
        cand["extra.metric"] = 1
        deltas = compare_artifacts(_artifact(_METRICS), _artifact(cand))
        text = format_deltas(deltas, verbose=True)
        assert f"compared {len(_METRICS)} tracked metrics: 0 regression(s)" in text
        assert "new extra.metric" in text


class TestLoadArtifact:
    def test_rejects_wrong_kind_and_schema(self, tmp_path):
        bad_kind = _artifact(_METRICS) | {"kind": "other"}
        bad_schema = _artifact(_METRICS) | {"schema": 99}
        for payload in (bad_kind, bad_schema):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(payload))
            with pytest.raises(ValueError):
                load_artifact(path)

    def test_rejects_missing_metrics_map(self, tmp_path):
        payload = _artifact(_METRICS)
        payload["metrics"] = None
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_artifact(path)


class TestMainExitCodes:
    """The CLI gate: exit 0 on clean runs, 1 on injected regressions."""

    def _write(self, tmp_path, name, artifact):
        path = tmp_path / name
        path.write_text(json.dumps(artifact))
        return str(path)

    def test_exit_zero_on_identical_artifacts(self, tmp_path, capsys):
        base = self._write(tmp_path, "BENCH_baseline.json", _artifact(_METRICS))
        cand = self._write(tmp_path, "BENCH_2026-01-02.json", _artifact(dict(_METRICS)))
        assert main([base, cand]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        injected = dict(_METRICS)
        injected["LJGrp.SkyLakeX.forward.llc_misses"] = 200000
        injected["LJGrp.triangles"] = 1
        base = self._write(tmp_path, "BENCH_baseline.json", _artifact(_METRICS))
        cand = self._write(tmp_path, "BENCH_2026-01-02.json", _artifact(injected))
        assert main([base, cand]) == 1
        out = capsys.readouterr().out
        assert "2 regression(s)" in out
        assert "REGRESSION LJGrp.triangles" in out

    def test_latest_skips_the_baseline_file(self, tmp_path):
        base = self._write(tmp_path, "BENCH_baseline.json", _artifact(_METRICS))
        self._write(tmp_path, "BENCH_2026-01-02.json", _artifact(dict(_METRICS)))
        injected = dict(_METRICS)
        injected["LJGrp.triangles"] = 0
        self._write(tmp_path, "BENCH_2026-01-05.json", _artifact(injected))
        # newest dated artifact (not the baseline) must be picked: it regresses
        assert main([base, "--latest", str(tmp_path)]) == 1

    def test_latest_with_no_candidates_exits_with_error(self, tmp_path):
        base = self._write(tmp_path, "BENCH_baseline.json", _artifact(_METRICS))
        with pytest.raises(SystemExit):
            main([base, "--latest", str(tmp_path)])

    def test_rel_tol_flag_overrides_default(self, tmp_path):
        cand_metrics = dict(_METRICS)
        cand_metrics["LJGrp.SkyLakeX.forward.llc_misses"] = int(100000 * 1.05)
        base = self._write(tmp_path, "BENCH_baseline.json", _artifact(_METRICS))
        cand = self._write(tmp_path, "BENCH_2026-01-02.json", _artifact(cand_metrics))
        assert main([base, cand]) == 1
        assert main([base, cand, "--rel-tol", "0.10"]) == 0


class TestTrajectoryArtifact:
    def test_build_and_round_trip_tiny_suite(self, tmp_path):
        artifact = build_trajectory_artifact(
            suite=("LJGrp",), machines=("SkyLakeX",), generated="2026-01-01"
        )
        assert artifact["kind"] == "bench-trajectory"
        assert artifact["schema"] == 1
        metrics = artifact["metrics"]
        assert metrics["LJGrp.triangles"] > 0
        for algorithm in ("forward", "lotus"):
            assert metrics[f"LJGrp.SkyLakeX.{algorithm}.llc_misses"] > 0
        # lotus shares present for the named regions, none for "other"
        share_keys = [k for k in metrics if k.endswith("_share")]
        assert any(".lotus.region.he." in k for k in share_keys)
        assert not any(".region.other." in k for k in share_keys)
        path = write_trajectory_artifact(artifact, tmp_path)
        assert path.name == "BENCH_2026-01-01.json"
        assert load_artifact(path)["metrics"] == metrics
        # the same build twice is bit-identical: the gate sees no diffs
        again = build_trajectory_artifact(
            suite=("LJGrp",), machines=("SkyLakeX",), generated="2026-01-01"
        )
        assert regressions(compare_artifacts(artifact, again)) == []

    def test_baseline_naming(self, tmp_path):
        artifact = _artifact(_METRICS)
        path = write_trajectory_artifact(artifact, tmp_path, baseline=True)
        assert path.name == "BENCH_baseline.json"


class TestCommittedBaseline:
    """The repository must ship a loadable, current-format baseline."""

    def test_baseline_exists_and_loads(self):
        artifact = load_artifact(BASELINE)
        assert artifact["suite"] == list(QUICK_SUITE)
        assert artifact["machines"] == list(ALL_MACHINES)
        assert len(artifact["metrics"]) > 0

    def test_baseline_self_compare_is_clean(self):
        artifact = load_artifact(BASELINE)
        assert regressions(compare_artifacts(artifact, copy.deepcopy(artifact))) == []


class TestAgainstRun:
    """``--against-run``: the gate's baseline can be any ledger record."""

    def _ledger_with_trajectory_record(self, tmp_path, metrics):
        from repro.obs.ledger import Ledger, build_run_record

        record = build_run_record(
            None,
            command="bench_trajectory",
            config={"command": "bench_trajectory", "suite": ["LJGrp"]},
            artifact=_artifact(metrics),
        )
        ledger = Ledger(tmp_path / "runs")
        ledger.append(record)
        return ledger

    def test_embedded_artifact_used_verbatim(self, tmp_path, capsys):
        self._ledger_with_trajectory_record(tmp_path, _METRICS)
        cand = tmp_path / "BENCH_2026-01-02.json"
        cand.write_text(json.dumps(_artifact(dict(_METRICS))))
        assert main([
            "--against-run", "latest", "--ledger", str(tmp_path / "runs"),
            str(cand),
        ]) == 0
        out = capsys.readouterr().out
        assert "ledger run r" in out
        assert f"compared {len(_METRICS)} tracked metrics: 0 regression(s)" in out

    def test_regression_against_recorded_run_exits_one(self, tmp_path, capsys):
        self._ledger_with_trajectory_record(tmp_path, _METRICS)
        injected = dict(_METRICS)
        injected["LJGrp.triangles"] = 1
        cand = tmp_path / "BENCH_2026-01-02.json"
        cand.write_text(json.dumps(_artifact(injected)))
        assert main([
            "--against-run", "latest", "--ledger", str(tmp_path / "runs"),
            str(cand),
        ]) == 1
        assert "REGRESSION LJGrp.triangles" in capsys.readouterr().out

    def test_plain_record_projected_onto_flat_metrics(self, tmp_path, capsys):
        # a non-trajectory record (no embedded artifact) is compared via
        # its flattened metric projection, with the ledger kind map
        from repro.obs import use_registry
        from repro.obs.ledger import Ledger, build_run_record

        def _record():
            with use_registry() as reg:
                reg.counter("pairs").add(100)
                reg.gauge("hit_rate").set(0.5)
            return build_run_record(
                None if reg is None else reg,
                command="count",
                config={"command": "count"},
                meta={"triangles": 7, "elapsed": 1.0},
            )

        ledger = Ledger(tmp_path / "runs")
        ledger.append(_record())
        cand_record = _record()
        cand_record["meta"]["elapsed"] = 99.0  # timing: must not gate
        cand = tmp_path / "candidate-record.json"
        cand.write_text(json.dumps(cand_record))
        assert main([
            "--against-run", "latest", "--ledger", str(tmp_path / "runs"),
            str(cand), "-v",
        ]) == 0
        out = capsys.readouterr().out
        assert "ok meta.elapsed" in out
        assert "ok counter.pairs" in out

    def test_unknown_ref_is_usage_error(self, tmp_path):
        self._ledger_with_trajectory_record(tmp_path, _METRICS)
        with pytest.raises(SystemExit) as exc:
            main([
                "--against-run", "nope-none", "--ledger",
                str(tmp_path / "runs"), "x.json",
            ])
        assert exc.value.code == 2

    def test_no_baseline_and_no_against_run_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--latest", "."])
        assert exc.value.code == 2
