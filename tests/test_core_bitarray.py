"""Tests for the H2H triangular bit array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitarray import TriangularBitArray, triangular_index


class TestIndexing:
    def test_paper_formula(self):
        # bit index h1*(h1-1)/2 + h2 (Section 4.2)
        assert triangular_index(1, 0) == 0
        assert triangular_index(2, 0) == 1
        assert triangular_index(2, 1) == 2
        assert triangular_index(3, 0) == 3

    def test_indices_are_dense(self):
        """Pairs in (h1-major, h2-minor) order map to consecutive bits."""
        n = 20
        idx = [triangular_index(h1, h2) for h1 in range(1, n) for h2 in range(h1)]
        assert idx == list(range(n * (n - 1) // 2))


class TestSetAndTest:
    def test_set_then_test(self):
        ba = TriangularBitArray(10)
        ba.set(7, 3)
        assert ba.is_set(7, 3)
        assert ba.is_set(3, 7)  # order-insensitive scalar API
        assert not ba.is_set(7, 4)

    def test_diagonal_is_false(self):
        ba = TriangularBitArray(5)
        assert not ba.is_set(2, 2)

    def test_vectorised_set(self):
        ba = TriangularBitArray(100)
        h1 = np.array([10, 50, 99])
        h2 = np.array([3, 20, 0])
        ba.set_pairs(h1, h2)
        assert ba.test_pairs(h1, h2).all()
        assert ba.count_set() == 3

    def test_idempotent_set(self):
        ba = TriangularBitArray(8)
        ba.set(5, 2)
        ba.set(5, 2)
        assert ba.count_set() == 1

    def test_duplicate_pairs_in_one_call(self):
        ba = TriangularBitArray(8)
        ba.set_pairs(np.array([5, 5]), np.array([2, 2]))
        assert ba.count_set() == 1

    def test_rejects_bad_order(self):
        ba = TriangularBitArray(8)
        with pytest.raises(ValueError):
            ba.set_pairs(np.array([2]), np.array([5]))

    def test_rejects_out_of_range(self):
        ba = TriangularBitArray(8)
        with pytest.raises(IndexError):
            ba.set_pairs(np.array([9]), np.array([0]))

    @given(
        st.lists(
            st.tuples(st.integers(1, 63), st.integers(0, 62)).filter(lambda p: p[0] > p[1]),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_python_set(self, pairs):
        ba = TriangularBitArray(64)
        reference = set()
        for h1, h2 in pairs:
            ba.set(h1, h2)
            reference.add((h1, h2))
        assert ba.count_set() == len(reference)
        for h1 in range(1, 64):
            for h2 in range(h1):
                assert ba.is_set(h1, h2) == ((h1, h2) in reference)


class TestAnalytics:
    def test_sizes(self):
        ba = TriangularBitArray(1 << 16)
        # the paper's constant: 64K hubs -> 2^16*(2^16-1)/2 bits ~ 256 MB
        assert ba.num_bits == (1 << 16) * ((1 << 16) - 1) // 2
        assert ba.nbytes == (ba.num_bits + 7) // 8
        assert 255_000_000 < ba.nbytes < 269_000_000

    def test_density(self):
        ba = TriangularBitArray(4)  # 6 bits
        ba.set(1, 0)
        ba.set(3, 2)
        assert ba.density() == pytest.approx(2 / 6)

    def test_density_empty(self):
        assert TriangularBitArray(0).density() == 0.0
        assert TriangularBitArray(1).density() == 0.0

    def test_zero_cachelines_all_zero(self):
        ba = TriangularBitArray(256)
        assert ba.zero_cacheline_fraction() == 1.0

    def test_zero_cachelines_after_set(self):
        ba = TriangularBitArray(256)
        ba.set(1, 0)  # bit 0 -> first cacheline
        frac = ba.zero_cacheline_fraction()
        nlines = (ba.data.size + 63) // 64
        assert frac == pytest.approx((nlines - 1) / nlines)

    def test_bit_index_to_cacheline(self):
        ba = TriangularBitArray(256)
        idx = np.array([0, 511, 512, 1024])
        np.testing.assert_array_equal(ba.bit_index_to_cacheline(idx), [0, 0, 1, 2])
