"""Unit tests for the metrics registry: counter / gauge / histogram
semantics, get-or-create behaviour, disabled-mode no-ops, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    enabled,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add(5)
        c.inc()
        c.add(2.5)
        assert c.value == 8.5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_thread_safe_increments(self):
        c = Counter("x")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("rate")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_coerces_to_float(self):
        g = Gauge("n")
        g.set(3)
        assert isinstance(g.value, float)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("work", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)
        assert h.min == 0.5
        assert h.max == 500
        assert h.mean == pytest.approx(560.5 / 5)

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("work", buckets=(1.0, 10.0))
        h.observe(1.0)   # <= 1.0 -> first bucket
        h.observe(2.0)   # <= 10.0 -> second bucket
        h.observe(11.0)  # overflow bucket
        assert h.counts == [1, 1, 1]

    def test_default_buckets_cover_wide_range(self):
        h = Histogram("work")
        h.observe(1)
        h.observe(1 << 29)
        assert h.count == 2
        assert h.counts[0] == 1

    def test_quantile(self):
        h = Histogram("work", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (1, 2, 2, 4, 8):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 8.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("work").quantile(0.5) == 0.0

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("work", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(7)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 7.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        with reg.span("s"):
            pass
        reg.clear()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert reg.roots == []


class TestDisabledMode:
    def test_default_registry_is_disabled(self):
        assert get_registry() is NULL_REGISTRY
        assert not enabled()

    def test_null_registry_operations_are_noops(self):
        NULL_REGISTRY.counter("x").add(5)
        NULL_REGISTRY.gauge("y").set(1.0)
        NULL_REGISTRY.histogram("z").observe(3)
        assert NULL_REGISTRY.counter("x").value == 0
        assert NULL_REGISTRY.gauge("y").value == 0.0
        assert NULL_REGISTRY.histogram("z").count == 0
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {}

    def test_null_span_records_nothing(self):
        with NULL_REGISTRY.span("phase") as span:
            span.set("ops", 10)
            span.add("ops", 5)
        assert not span.enabled
        assert span.attrs == {}
        assert NULL_REGISTRY.roots == []
        assert NULL_REGISTRY.current_span() is None

    def test_use_registry_enables_and_restores(self):
        assert not enabled()
        with use_registry() as reg:
            assert enabled()
            assert get_registry() is reg
            reg.counter("c").inc()
        assert not enabled()
        assert reg.counter("c").value == 1

    def test_use_registry_nests(self):
        with use_registry() as outer:
            with use_registry() as inner:
                assert get_registry() is inner
            assert get_registry() is outer

    def test_set_registry_none_disables(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
