"""Unit tests for the metrics registry: counter / gauge / histogram
semantics, get-or-create behaviour, disabled-mode no-ops, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    enabled,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add(5)
        c.inc()
        c.add(2.5)
        assert c.value == 8.5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_thread_safe_increments(self):
        c = Counter("x")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("rate")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_coerces_to_float(self):
        g = Gauge("n")
        g.set(3)
        assert isinstance(g.value, float)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("work", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)
        assert h.min == 0.5
        assert h.max == 500
        assert h.mean == pytest.approx(560.5 / 5)

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("work", buckets=(1.0, 10.0))
        h.observe(1.0)   # <= 1.0 -> first bucket
        h.observe(2.0)   # <= 10.0 -> second bucket
        h.observe(11.0)  # overflow bucket
        assert h.counts == [1, 1, 1]

    def test_default_buckets_cover_wide_range(self):
        h = Histogram("work")
        h.observe(1)
        h.observe(1 << 29)
        assert h.count == 2
        assert h.counts[0] == 1

    def test_quantile(self):
        h = Histogram("work", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (1, 2, 2, 4, 8):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 8.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("work").quantile(0.5) == 0.0

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("work", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(7)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 7.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        with reg.span("s"):
            pass
        reg.clear()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert reg.roots == []


class TestHistogramMerge:
    def test_merge_snapshot_folds_counts_and_extremes(self):
        a = Histogram("x", buckets=(1.0, 2.0, 4.0))
        b = Histogram("x", buckets=(1.0, 2.0, 4.0))
        a.observe(0.5)
        b.observe(3.0)
        b.observe(100.0)  # overflow bucket
        a.merge_snapshot(b.snapshot())
        assert a.count == 3
        assert a.sum == pytest.approx(103.5)
        assert a.min == 0.5 and a.max == 100.0
        assert a.counts == [1, 0, 1, 1]

    def test_merge_snapshot_into_empty_histogram(self):
        a = Histogram("x", buckets=(1.0,))
        b = Histogram("x", buckets=(1.0,))
        b.observe(0.5)
        a.merge_snapshot(b.snapshot())
        assert a.count == 1 and a.min == 0.5 and a.max == 0.5

    def test_merge_snapshot_rejects_differing_bounds(self):
        a = Histogram("x", buckets=(1.0, 2.0))
        b = Histogram("x", buckets=(1.0, 8.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge_snapshot(b.snapshot())


class TestRegistryEdgeCases:
    """Hardened lookups: empty-histogram quantiles and prefix families."""

    def test_histogram_quantile_missing_metric_is_none(self):
        assert MetricsRegistry().histogram_quantile("nope", 0.5) is None

    def test_histogram_quantile_empty_histogram_is_none(self):
        reg = MetricsRegistry()
        reg.histogram("lat")  # registered, never observed
        assert reg.histogram_quantile("lat", 0.5) is None

    def test_histogram_quantile_observed(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            hist.observe(v)
        assert reg.histogram_quantile("lat", 0.5) == hist.quantile(0.5)

    def test_histogram_quantile_rejects_out_of_range(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        for q in (-0.1, 1.0001):
            with pytest.raises(ValueError):
                reg.histogram_quantile("lat", q)

    def test_family_matches_dotted_prefix_only(self):
        # family("serve") must not leak server.* (or any serveX.*) metrics
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc()
        reg.counter("server.requests").add(7)
        reg.counter("served").inc()
        reg.gauge("serve.cache_bytes").set(1.0)
        fam = reg.family("serve")
        assert set(fam["counters"]) == {"serve.requests"}
        assert set(fam["gauges"]) == {"serve.cache_bytes"}
        assert reg.family("server")["counters"] == {"server.requests": 7}

    def test_family_accepts_trailing_dot(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc()
        assert reg.family("serve.") == reg.family("serve")


class TestDisabledMode:
    def test_default_registry_is_disabled(self):
        assert get_registry() is NULL_REGISTRY
        assert not enabled()

    def test_null_registry_operations_are_noops(self):
        NULL_REGISTRY.counter("x").add(5)
        NULL_REGISTRY.gauge("y").set(1.0)
        NULL_REGISTRY.histogram("z").observe(3)
        assert NULL_REGISTRY.counter("x").value == 0
        assert NULL_REGISTRY.gauge("y").value == 0.0
        assert NULL_REGISTRY.histogram("z").count == 0
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {}

    def test_null_span_records_nothing(self):
        with NULL_REGISTRY.span("phase") as span:
            span.set("ops", 10)
            span.add("ops", 5)
        assert not span.enabled
        assert span.attrs == {}
        assert NULL_REGISTRY.roots == []
        assert NULL_REGISTRY.current_span() is None

    def test_use_registry_enables_and_restores(self):
        assert not enabled()
        with use_registry() as reg:
            assert enabled()
            assert get_registry() is reg
            reg.counter("c").inc()
        assert not enabled()
        assert reg.counter("c").value == 1

    def test_use_registry_nests(self):
        with use_registry() as outer:
            with use_registry() as inner:
                assert get_registry() is inner
            assert get_registry() is outer

    def test_set_registry_none_disables(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
