"""Smoke tests: every example script must run to completion.

Examples are the user-facing contract; each runs in-process (imported as
a module and its ``main()`` called) so failures surface with full
tracebacks and coverage.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

# the cache-replay example runs multi-minute simulations; exercised by
# benchmarks/bench_fig4.py instead
_SKIP = {"web_graph_locality.py"}


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.name not in _SKIP], ids=lambda p: p.name
)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its results


def test_example_inventory():
    """The README promises at least these runnable examples."""
    names = {p.name for p in EXAMPLES}
    for required in (
        "quickstart.py",
        "social_network_clustering.py",
        "web_graph_locality.py",
        "streaming_triangles.py",
        "kclique_hubs.py",
        "adaptive_and_parallel.py",
        "distributed_and_compression.py",
        "graph_mining.py",
    ):
        assert required in names
