"""Unit tests for the benchmark-trajectory builders (repro.obs.trajectory)
and malformed-baseline handling in the regression gate.

The builders were previously exercised only end-to-end through
``scripts/bench_trajectory.py``; these tests pin their schemas, their
correctness canaries and their input validation on small datasets.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import regress
from repro.obs.trajectory import (
    TRAJECTORY_SCHEMA_VERSION,
    build_profiler_overhead_measurements,
    build_scaling_measurements,
    build_serve_measurements,
    build_telemetry_overhead_measurements,
    build_trajectory_artifact,
    write_trajectory_artifact,
)


class TestScalingMeasurements:
    def test_metrics_and_info_schema(self):
        metrics, info = build_scaling_measurements("Twtr10", workers=(1, 2))
        assert metrics["Twtr10.phase1.hits"] > 0
        for w in (1, 2):
            assert metrics[f"Twtr10.phase1.workers{w}_sim_speedup"] > 0
            assert info[f"Twtr10.phase1.workers{w}_seconds"] > 0
        # measured speedup is derived from the recorded seconds
        assert info["Twtr10.phase1.workers2_measured_speedup"] == pytest.approx(
            info["Twtr10.phase1.workers1_seconds"]
            / info["Twtr10.phase1.workers2_seconds"],
            rel=1e-3,
        )

    def test_speedup_keys_classified_as_floor(self):
        assert regress._metric_kind("X.phase1.workers4_sim_speedup") == "floor"
        assert regress._metric_kind("X.phase1.hits") == "count"


class TestServeMeasurements:
    def test_hit_rate_and_latency_quantiles(self):
        metrics, info = build_serve_measurements("Twtr10", requests=4)
        assert metrics["serve.Twtr10.hit_rate"] == pytest.approx(3 / 4)
        assert metrics["serve.Twtr10.latency_p50_seconds"] >= 0
        assert metrics["serve.Twtr10.latency_p95_seconds"] >= (
            metrics["serve.Twtr10.latency_p50_seconds"]
        )
        assert info["serve.Twtr10.requests"] == 4
        assert info["serve.Twtr10.cold_ms"] > 0
        # every serve.* key is timing-kind: trended, never gated
        for key in metrics:
            assert regress._metric_kind(key) == "timing"

    def test_too_few_requests_rejected(self):
        with pytest.raises(ValueError):
            build_serve_measurements("Twtr10", requests=1)


class TestOverheadMeasurements:
    def test_telemetry_overhead_schema(self):
        metrics, info = build_telemetry_overhead_measurements(
            "Twtr10", repeats=1
        )
        ratio = metrics["telemetry.Twtr10.overhead_ratio"]
        assert ratio > 0
        assert regress._metric_kind("telemetry.Twtr10.overhead_ratio") == (
            "ceiling"
        )
        assert info["telemetry.Twtr10.events"] > 0
        assert info["telemetry.Twtr10.off_seconds"] > 0

    def test_profiler_overhead_schema(self):
        metrics, info = build_profiler_overhead_measurements(
            "Twtr10", repeats=1, interval_ms=2.0
        )
        ratio = metrics["profiler.Twtr10.overhead_ratio"]
        assert ratio > 0
        assert regress._metric_kind("profiler.Twtr10.overhead_ratio") == (
            "ceiling"
        )
        assert info["profiler.Twtr10.samples"] > 0
        assert info["profiler.Twtr10.interval_ms"] == 2.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_telemetry_overhead_measurements("Twtr10", repeats=0)
        with pytest.raises(ValueError):
            build_profiler_overhead_measurements("Twtr10", repeats=0)
        with pytest.raises(ValueError):
            build_profiler_overhead_measurements(
                "Twtr10", repeats=1, interval_ms=0
            )


class TestTrajectoryArtifact:
    @pytest.fixture(scope="class")
    def artifact(self):
        return build_trajectory_artifact(
            suite=("Twtr10",), machines=("SkyLakeX",), generated="2026-01-01"
        )

    def test_artifact_schema(self, artifact):
        assert artifact["schema"] == TRAJECTORY_SCHEMA_VERSION
        assert artifact["kind"] == "bench-trajectory"
        assert artifact["generated"] == "2026-01-01"
        assert artifact["suite"] == ["Twtr10"]
        assert artifact["profiler_overhead"] is None  # opt-in section
        metrics = artifact["metrics"]
        assert metrics["Twtr10.triangles"] > 0
        assert metrics["Twtr10.SkyLakeX.lotus.llc_misses"] > 0
        share_keys = [k for k in metrics if k.endswith("_share")]
        assert share_keys
        assert artifact["info"]["Twtr10.lotus_seconds"] > 0

    def test_write_and_reload_via_regress(self, artifact, tmp_path):
        path = write_trajectory_artifact(artifact, tmp_path)
        assert path.name == "BENCH_2026-01-01.json"
        loaded = regress.load_artifact(path)
        assert loaded["metrics"] == artifact["metrics"]
        baseline_path = write_trajectory_artifact(
            artifact, tmp_path, baseline=True
        )
        assert baseline_path.name == "BENCH_baseline.json"

    def test_self_comparison_has_no_regressions(self, artifact):
        deltas = regress.compare_artifacts(artifact, artifact)
        assert regress.regressions(deltas) == []


class TestMalformedBaselines:
    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = self._write(tmp_path, {"kind": "nonsense", "schema": 1})
        with pytest.raises(ValueError, match="not a bench-trajectory"):
            regress.load_artifact(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            {"kind": "bench-trajectory", "schema": 99, "metrics": {}},
        )
        with pytest.raises(ValueError, match="unsupported schema"):
            regress.load_artifact(path)

    def test_missing_metrics_rejected(self, tmp_path):
        path = self._write(
            tmp_path, {"kind": "bench-trajectory", "schema": 1}
        )
        with pytest.raises(ValueError, match="missing metrics"):
            regress.load_artifact(path)


class TestProfilerCeilingGate:
    """profiler.*.overhead_ratio gates against the tighter absolute
    ceiling, even when the key is candidate-only (no baseline value)."""

    def _artifact(self, metrics):
        return {
            "schema": 1,
            "kind": "bench-trajectory",
            "generated": "2026-01-01",
            "metrics": metrics,
        }

    def test_candidate_only_profiler_ratio_gated_at_1_10(self):
        baseline = self._artifact({})
        ok = self._artifact({"profiler.EU15.overhead_ratio": 1.08})
        bad = self._artifact({"profiler.EU15.overhead_ratio": 1.15})
        assert regress.regressions(
            regress.compare_artifacts(baseline, ok)
        ) == []
        (delta,) = regress.regressions(
            regress.compare_artifacts(baseline, bad)
        )
        assert delta.key == "profiler.EU15.overhead_ratio"
        assert "1.1" in delta.reason

    def test_telemetry_ratio_keeps_the_looser_ceiling(self):
        baseline = self._artifact({})
        candidate = self._artifact({"telemetry.EU15.overhead_ratio": 1.15})
        assert regress.regressions(
            regress.compare_artifacts(baseline, candidate)
        ) == []

    def test_ceiling_override(self):
        baseline = self._artifact({})
        candidate = self._artifact({"profiler.EU15.overhead_ratio": 1.15})
        assert regress.regressions(
            regress.compare_artifacts(
                baseline, candidate, profiler_ceiling=1.2
            )
        ) == []

    def test_ledger_kinds_for_profiler_metrics(self):
        from repro.obs.ledger import ledger_metric_kind

        assert ledger_metric_kind("profiler.EU15.overhead_ratio") == "ceiling"
        assert ledger_metric_kind("counter.profiler.samples") == "timing"
        assert ledger_metric_kind("counter.profiler.dropped") == "timing"
        assert ledger_metric_kind("gauge.profiler.window_samples") == "timing"
