"""Regression pins: exact triangle counts of every synthetic dataset.

The differential suite (test_differential_tc.py) found no discrepancy
between the counters and the brute-force oracle, so per the hardening
plan these tests pin the current totals for all 14 paper stand-ins (plus
the SmallWorld control) — any future change to the generators, the
relabeling, or a counting kernel that shifts a total will fail loudly
here rather than silently skewing every benchmark.

LOTUS is used for verification (it is the fastest counter on these
skewed graphs); the differential suite already establishes cross-
algorithm agreement, and the LotusCounts partition is re-checked here.
"""

from __future__ import annotations

import pytest

from repro.core import count_triangles_lotus
from repro.graph import load_dataset
from repro.graph.datasets import DATASETS

# exact totals at seed state (2026-08); keyed by registry name
PINNED_TRIANGLES = {
    "LJGrp": 616_437,
    "Twtr10": 1_582_644,
    "Twtr": 2_380_567,
    "TwtrMpi": 4_523_646,
    "Frndstr": 4_888,
    "SK": 3_029_192,
    "WbCc": 4_372_682,
    "UKDls": 7_662_712,
    "UU": 8_486_726,
    "UKDmn": 5_337_652,
    "MClst": 2_637_508,
    "ClWb12": 14_681_187,
    "WDC14": 18_044_387,
    "EU15": 21_189_581,
    "SmallWorld": 171_173,
}


def test_every_dataset_is_pinned():
    assert set(PINNED_TRIANGLES) == set(DATASETS)


@pytest.mark.parametrize("name", sorted(PINNED_TRIANGLES))
def test_dataset_triangle_count_pinned(name):
    result = count_triangles_lotus(load_dataset(name))
    assert result.triangles == PINNED_TRIANGLES[name]
    counts = result.extra["counts"]
    assert counts.hhh + counts.hhn + counts.hnn + counts.nnn == result.triangles
