"""Run-ledger tests: hashing determinism, append/index/resolve, diffing.

The determinism contract (ISSUE 3 satellite): two runs with identical
config + seed must produce identical config hashes and dataset
fingerprints, and byte-identical metric snapshots on the dense-oracle
datasets.
"""

from __future__ import annotations

import json

import pytest

from repro.core import count_triangles_lotus
from repro.graph import complete_graph, erdos_renyi, powerlaw_chung_lu
from repro.obs import use_registry
from repro.obs.ledger import (
    Ledger,
    LedgerError,
    build_run_record,
    canonical_json,
    collect_provenance,
    config_hash,
    dataset_fingerprint,
    diff_runs,
    flatten_record_metrics,
    format_run_diff,
    ledger_metric_kind,
    run_span_deltas,
)
from repro.obs.regress import regressions


def _record(tmp_path=None, command="test", config=None, graph=None, **kw):
    return build_run_record(None, command=command, config=config, graph=graph, **kw)


class TestConfigHash:
    def test_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_nested_and_none(self):
        assert config_hash(None) == config_hash({})
        assert config_hash({"x": {"b": 1, "a": 2}}) == config_hash(
            {"x": {"a": 2, "b": 1}}
        )

    def test_numpy_scalars_coerced(self):
        import numpy as np

        assert config_hash({"n": np.int64(5)}) == config_hash({"n": 5})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestDatasetFingerprint:
    def test_same_graph_same_hash(self):
        a = erdos_renyi(100, 0.1, seed=3)
        b = erdos_renyi(100, 0.1, seed=3)
        fa, fb = dataset_fingerprint(a), dataset_fingerprint(b)
        assert fa["edge_hash"] == fb["edge_hash"]
        assert fa["num_vertices"] == 100
        assert fa["num_edges"] == a.num_edges

    def test_different_graph_different_hash(self):
        a = erdos_renyi(100, 0.1, seed=3)
        b = erdos_renyi(100, 0.1, seed=4)
        assert dataset_fingerprint(a)["edge_hash"] != dataset_fingerprint(b)["edge_hash"]

    def test_registry_params_for_known_dataset(self):
        from repro.graph import load_dataset

        fp = dataset_fingerprint(load_dataset("LJGrp"), name="LJGrp")
        assert fp["name"] == "LJGrp"
        assert fp["registry"]["paper_name"] == "LiveJournal"
        assert fp["registry"]["kind"] == "SN"

    def test_unknown_name_has_no_registry_block(self):
        fp = dataset_fingerprint(complete_graph(4), name="nope")
        assert "registry" not in fp

    def test_graphless_fingerprint(self):
        assert dataset_fingerprint(None) == {"name": None}


class TestProvenance:
    def test_stamp_has_environment_fields(self):
        prov = collect_provenance()
        assert prov["python"].count(".") >= 1
        assert prov["numpy"]
        assert prov["hostname"]
        # inside this repo, git data should resolve
        assert prov["git_sha"] is None or len(prov["git_sha"]) == 40

    def test_machine_model_recorded_when_given(self):
        assert collect_provenance("SkyLakeX")["machine_model"] == "SkyLakeX"


class TestRunRecord:
    def test_record_shape_and_run_id(self):
        g = complete_graph(5)
        with use_registry() as reg:
            count_triangles_lotus(g)
        record = build_run_record(
            reg, command="count", config={"algorithm": "lotus"}, graph=g,
            seed=7, meta={"triangles": 10},
        )
        assert record["schema"] == 1
        assert record["kind"] == "run-record"
        assert record["run_id"].startswith("r")
        assert "-" in record["run_id"]
        assert record["config_hash"] == config_hash({"algorithm": "lotus"})
        assert record["seed"] == 7
        assert record["metrics"]["counters"] is not None
        assert record["spans"], "observed run must carry its span trees"

    def test_registry_none_gives_empty_metrics(self):
        record = _record()
        assert record["metrics"] == {}
        assert record["spans"] == []


class TestDeterminism:
    """Identical config + seed => identical hashes and byte-identical metrics."""

    @pytest.mark.parametrize("make", [
        lambda: erdos_renyi(200, 0.08, seed=42),
        lambda: powerlaw_chung_lu(500, 8.0, exponent=2.1, seed=5),
        lambda: complete_graph(32),
    ])
    def test_two_identical_runs_snapshot_identically(self, make):
        snapshots, hashes, fingerprints = [], [], []
        for _ in range(2):
            graph = make()
            with use_registry() as reg:
                count_triangles_lotus(graph)
            config = {"algorithm": "lotus", "seed": 42}
            snapshots.append(canonical_json(reg.snapshot()).encode())
            hashes.append(config_hash(config))
            fingerprints.append(dataset_fingerprint(graph))
        assert hashes[0] == hashes[1]
        assert fingerprints[0]["edge_hash"] == fingerprints[1]["edge_hash"]
        assert snapshots[0] == snapshots[1], "metric snapshots must be byte-identical"

    def test_flattened_metrics_identical_across_reruns(self):
        flats = []
        for _ in range(2):
            graph = erdos_renyi(150, 0.1, seed=9)
            with use_registry() as reg:
                result = count_triangles_lotus(graph)
            record = build_run_record(
                reg, command="count", config={"seed": 9}, graph=graph,
                meta={"triangles": int(result.triangles)},
            )
            flat = flatten_record_metrics(record)
            flats.append({k: v for k, v in flat.items()
                          if ledger_metric_kind(k) != "timing"})
        assert flats[0] == flats[1]


class TestLedger:
    def _seed_ledger(self, tmp_path, n=3):
        ledger = Ledger(tmp_path / "runs")
        ids = []
        for i in range(n):
            record = _record(config={"i": i}, meta={"triangles": i * 10})
            record["run_id"] = f"r2026010{i}T000000Z-{i:08x}"  # stable ids
            ids.append(ledger.append(record))
        return ledger, ids

    def test_append_and_list(self, tmp_path):
        ledger, ids = self._seed_ledger(tmp_path)
        entries = ledger.entries()
        assert [e["run_id"] for e in entries] == ids
        assert [r["run_id"] for r in ledger.records()] == ids

    def test_get_by_id_prefix_latest(self, tmp_path):
        ledger, ids = self._seed_ledger(tmp_path)
        assert ledger.get(ids[1])["run_id"] == ids[1]
        assert ledger.get(ids[1][:12])["run_id"] == ids[1]
        assert ledger.get("latest")["run_id"] == ids[-1]
        assert ledger.get("latest~2")["run_id"] == ids[0]

    def test_ambiguous_prefix_rejected(self, tmp_path):
        ledger, ids = self._seed_ledger(tmp_path)
        with pytest.raises(LedgerError, match="ambiguous"):
            ledger.get("r2026010")

    def test_unknown_ref_and_out_of_range(self, tmp_path):
        ledger, _ = self._seed_ledger(tmp_path)
        with pytest.raises(LedgerError, match="no run matching"):
            ledger.get("zzz")
        with pytest.raises(LedgerError, match="out of range"):
            ledger.get("latest~99")

    def test_empty_ledger(self, tmp_path):
        with pytest.raises(LedgerError, match="empty"):
            Ledger(tmp_path / "runs").get("latest")

    def test_index_rebuilt_when_missing_or_stale(self, tmp_path):
        ledger, ids = self._seed_ledger(tmp_path)
        ledger.index_path.unlink()
        assert [e["run_id"] for e in ledger.entries()] == ids
        # corrupt the index: entries() must fall back to the JSONL
        ledger.index_path.write_text("{not json")
        assert ledger.get(ids[0])["run_id"] == ids[0]

    def test_malformed_jsonl_raises_ledger_error(self, tmp_path):
        ledger, _ = self._seed_ledger(tmp_path, n=1)
        with open(ledger.path, "a") as fh:
            fh.write("{broken\n")
        with pytest.raises(LedgerError, match="malformed"):
            list(ledger.records())

    def test_non_record_append_rejected(self, tmp_path):
        with pytest.raises(LedgerError):
            Ledger(tmp_path / "runs").append({"kind": "other"})

    def test_jsonl_is_append_only_json_lines(self, tmp_path):
        ledger, ids = self._seed_ledger(tmp_path)
        lines = ledger.path.read_text().strip().splitlines()
        assert len(lines) == len(ids)
        for line in lines:
            json.loads(line)


class TestDiffRuns:
    def _observed_record(self, seed=3, tweak=None):
        graph = erdos_renyi(150, 0.1, seed=seed)
        with use_registry() as reg:
            result = count_triangles_lotus(graph)
            reg.counter("work.pairs").add(1000)
        record = build_run_record(
            reg, command="count", config={"algorithm": "lotus", "seed": seed},
            graph=graph,
            meta={"triangles": int(result.triangles),
                  "elapsed": float(result.elapsed)},
        )
        if tweak:
            tweak(record)
        return record

    def test_identical_runs_have_no_regressions(self):
        a = self._observed_record()
        b = self._observed_record()
        diff = diff_runs(a, b)
        assert diff["same_config"] and diff["same_dataset"]
        assert regressions(diff["metrics"]) == []

    def test_triangle_change_is_exact_regression(self):
        a = self._observed_record()
        b = self._observed_record(tweak=lambda r: r["meta"].update(triangles=1))
        bad = regressions(diff_runs(a, b)["metrics"])
        assert any(d.key == "meta.triangles" and d.kind == "exact" for d in bad)

    def test_counter_growth_beyond_tolerance_regresses(self):
        a = self._observed_record()
        b = self._observed_record()
        counters = b["metrics"]["counters"]
        key = next(iter(counters))
        counters[key] = counters[key] * 2 + 10
        bad = regressions(diff_runs(a, b)["metrics"])
        assert any(d.key == f"counter.{key}" and d.kind == "count" for d in bad)

    def test_elapsed_is_timing_and_never_gates(self):
        a = self._observed_record()
        b = self._observed_record(tweak=lambda r: r["meta"].update(elapsed=999.0))
        deltas = diff_runs(a, b)["metrics"]
        timing = [d for d in deltas if d.key == "meta.elapsed"]
        assert timing and timing[0].kind == "timing" and not timing[0].regressed

    def test_different_config_and_dataset_flagged(self):
        a = self._observed_record(seed=3)
        b = self._observed_record(seed=4)
        b["config"]["seed"] = 4
        from repro.obs.ledger import config_hash as ch

        b["config_hash"] = ch(b["config"])
        diff = diff_runs(a, b)
        assert not diff["same_config"]
        assert not diff["same_dataset"]

    def test_span_deltas_align_by_path(self):
        a = self._observed_record()
        b = self._observed_record()
        deltas = {d.path: d for d in run_span_deltas(a, b)}
        assert "lotus" in deltas
        assert "lotus/preprocess" in deltas
        d = deltas["lotus/preprocess"]
        assert d.a_elapsed is not None and d.b_elapsed is not None
        assert d.delta == pytest.approx(d.b_elapsed - d.a_elapsed)

    def test_span_only_in_one_run(self):
        a = self._observed_record()
        b = self._observed_record()
        b["spans"].append({"name": "extra", "elapsed": 0.5})
        deltas = {d.path: d for d in run_span_deltas(a, b)}
        assert deltas["extra"].a_elapsed is None
        assert deltas["extra"].b_elapsed == pytest.approx(0.5)
        assert deltas["extra"].delta is None

    def test_format_run_diff_renders(self):
        a = self._observed_record()
        b = self._observed_record()
        text = format_run_diff(diff_runs(a, b), verbose=True)
        assert "config:  identical" in text
        assert "dataset: identical" in text
        assert "span timings" in text
        assert "lotus/preprocess" in text


class TestFlatten:
    def test_artifact_metrics_pass_through_unprefixed(self):
        record = _record(
            artifact={"kind": "bench-trajectory", "schema": 1,
                      "metrics": {"LJGrp.triangles": 7}},
        )
        flat = flatten_record_metrics(record)
        assert flat["LJGrp.triangles"] == 7

    def test_kind_map(self):
        assert ledger_metric_kind("meta.triangles") == "exact"
        assert ledger_metric_kind("LJGrp.triangles") == "exact"
        assert ledger_metric_kind("gauge.memsim.lotus.l1.hit_rate") == "share"
        assert ledger_metric_kind("x.region.he.llc_share") == "share"
        assert ledger_metric_kind("meta.elapsed") == "timing"
        assert ledger_metric_kind("info.LJGrp.lotus_seconds") == "timing"
        assert ledger_metric_kind("counter.parallel.tiles") == "count"
