"""Property-based accuracy tests for the streaming estimators.

Three layers, one per satellite requirement:

* **exact modes equal the exact counter** — DOULION at ``p=1``, the
  reservoir estimator with a reservoir covering the whole stream, and
  ``StreamingLotusCounter`` at ``nn_keep_prob=1`` must all reproduce
  :func:`repro.tc.count_triangles_forward` exactly, for arbitrary
  graphs and arbitrary stream orders (hypothesis drives the graph shape
  and the shuffle);
* **sampled modes are statistically sound** — averaged over seeds, the
  estimates land within a loose tolerance of the truth (the estimators
  are unbiased; the tolerance bounds the variance of the seed-mean);
* **update_many ≡ update loop** — batch ingestion is exactly the loop,
  including RNG consumption, so both orders end in identical state.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import erdos_renyi, powerlaw_chung_lu
from repro.tc import count_triangles_forward
from repro.tc.streaming import (
    StreamingLotusCounter,
    doulion_estimate,
    reservoir_triangle_estimate,
)

# a graph drawn from a small family: (generator, size, density-ish, seed)
graph_params = st.tuples(
    st.sampled_from(["er", "pl"]),
    st.integers(min_value=10, max_value=120),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def _make_graph(params):
    kind, n, density, seed = params
    if kind == "er":
        return erdos_renyi(n, min(1.0, density / 50.0), seed=seed)
    return powerlaw_chung_lu(n, float(density), exponent=2.2, seed=seed)


def _hubs(graph, count):
    order = np.argsort(-graph.degrees(), kind="stable")
    return order[: max(1, count)]


class TestExactModes:
    @given(params=graph_params, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_doulion_p1_is_exact(self, params, seed):
        graph = _make_graph(params)
        exact = count_triangles_forward(graph).triangles
        assert doulion_estimate(graph, p=1.0, seed=seed) == exact

    @given(params=graph_params, order_seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_full_reservoir_is_exact(self, params, order_seed):
        graph = _make_graph(params)
        exact = count_triangles_forward(graph).triangles
        edges = graph.edges()
        rng = np.random.default_rng(order_seed)
        edges = edges[rng.permutation(edges.shape[0])]
        size = max(1, edges.shape[0])
        assert reservoir_triangle_estimate(edges, size, seed=0) == exact

    @given(
        params=graph_params,
        order_seed=st.integers(0, 1000),
        hub_frac=st.floats(0.01, 0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_streaming_lotus_exact_mode(self, params, order_seed, hub_frac):
        graph = _make_graph(params)
        exact = count_triangles_forward(graph).triangles
        edges = graph.edges()
        rng = np.random.default_rng(order_seed)
        edges = edges[rng.permutation(edges.shape[0])]
        hubs = _hubs(graph, int(hub_frac * graph.num_vertices))
        counter = StreamingLotusCounter(hubs, nn_keep_prob=1.0)
        counter.update_many(edges)
        assert counter.estimate_total() == exact
        # exact mode: the decomposition is integral and consistent
        assert counter.hub_triangles + counter.nnn_estimate == exact


class TestUpdateManyEquivalence:
    @given(
        params=graph_params,
        keep=st.sampled_from([1.0, 0.7, 0.4]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_update_many_is_update_loop(self, params, keep, seed):
        graph = _make_graph(params)
        edges = graph.edges()
        hubs = _hubs(graph, max(1, graph.num_vertices // 20))
        batch = StreamingLotusCounter(hubs, nn_keep_prob=keep, seed=seed)
        batch.update_many(edges)
        loop = StreamingLotusCounter(hubs, nn_keep_prob=keep, seed=seed)
        for u, v in np.asarray(edges, dtype=np.int64):
            loop.update(int(u), int(v))
        assert batch.estimate_total() == loop.estimate_total()
        assert batch.hub_triangles == loop.hub_triangles
        assert batch.nnn_estimate == loop.nnn_estimate
        assert batch.edges_seen == loop.edges_seen
        assert batch.edges_stored == loop.edges_stored


class TestSampledAccuracy:
    """Statistical tolerance over seeds: the estimators are unbiased, so
    the mean over many seeds must approach the truth.  Tolerances are
    loose (they bound the seed-mean's noise, not a single estimate)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_chung_lu(600, 10.0, exponent=2.1, seed=77)

    @pytest.fixture(scope="class")
    def exact(self, graph):
        return count_triangles_forward(graph).triangles

    def test_doulion_seed_mean_converges(self, graph, exact):
        estimates = [doulion_estimate(graph, p=0.6, seed=s) for s in range(30)]
        mean = float(np.mean(estimates))
        assert abs(mean - exact) / exact < 0.25

    def test_reservoir_seed_mean_converges(self, graph, exact):
        edges = graph.edges()
        size = max(1, edges.shape[0] // 2)
        estimates = [
            reservoir_triangle_estimate(edges, size, seed=s) for s in range(20)
        ]
        mean = float(np.mean(estimates))
        assert abs(mean - exact) / exact < 0.25

    def test_streaming_lotus_sampled_mean_converges(self, graph, exact):
        hubs = _hubs(graph, graph.num_vertices // 50)
        estimates = []
        for s in range(20):
            c = StreamingLotusCounter(hubs, nn_keep_prob=0.5, seed=s)
            c.update_many(graph.edges())
            estimates.append(c.estimate_total())
        mean = float(np.mean(estimates))
        assert abs(mean - exact) / exact < 0.25

    def test_streaming_lotus_hub_class_is_exact_under_sampling(self, graph, exact):
        """The resident hub structure keeps >=1-hub triangles closed by a
        hub edge exact for any keep probability — the variance all sits
        in the sampled non-hub remainder, so the hub tally never exceeds
        the truth by more than its own estimator noise floor."""
        hubs = _hubs(graph, graph.num_vertices // 50)
        exact_counter = StreamingLotusCounter(hubs, nn_keep_prob=1.0)
        exact_counter.update_many(graph.edges())
        exact_hub = exact_counter.hub_triangles
        sampled_means = []
        for s in range(10):
            c = StreamingLotusCounter(hubs, nn_keep_prob=0.5, seed=s)
            c.update_many(graph.edges())
            sampled_means.append(c.hub_triangles)
        mean = float(np.mean(sampled_means))
        assert abs(mean - exact_hub) / max(1, exact_hub) < 0.25


class TestSeededDeterminism:
    """Regression pins for :class:`StreamingLotusCounter` reproducibility.

    The estimate for a given ``(stream, seed)`` is a contract: the pinned
    values below were produced by the fixed implementation (one coin flip
    per *distinct* edge — re-arrivals of a subsampled-away edge are
    no-ops).  The pre-fix counter let duplicates of dropped edges close
    triangles again *and* draw a second coin, so its estimates depended
    on duplicate multiplicity and silently drifted per run order."""

    # seed -> (estimate_total, hub_triangles, nnn_estimate, edges_stored)
    PINNED = {
        3: (1712.0, 1600.0, 112.0, 1016),
        4: (1708.0, 1604.0, 104.0, 982),
    }

    @pytest.fixture(scope="class")
    def chung_lu(self):
        return powerlaw_chung_lu(400, 8.0, exponent=2.2, seed=11)

    @pytest.mark.parametrize("seed", sorted(PINNED))
    def test_pinned_chung_lu_estimates(self, chung_lu, seed):
        hubs = _hubs(chung_lu, 8)
        counter = StreamingLotusCounter(hubs, nn_keep_prob=0.5, seed=seed)
        counter.update_many(chung_lu.edges())
        total, hub, nnn, stored = self.PINNED[seed]
        assert counter.estimate_total() == total
        assert counter.hub_triangles == hub
        assert counter.nnn_estimate == nnn
        assert counter.edges_stored == stored


class TestSubsampleBoundary:
    """Updates that arrive *after* an edge fell to the subsampling coin."""

    def test_duplicate_of_dropped_edge_is_a_noop(self):
        # make_rng(0) opens with 0.6369... >= 0.5, so the non-hub edge
        # (0, 1) is deterministically dropped; vertex 2 is a hub, so the
        # wedge edges (0,2), (1,2) are always stored without a coin flip
        counter = StreamingLotusCounter(
            hubs=np.array([2]), nn_keep_prob=0.5, seed=0
        )
        counter.update(0, 1)
        assert counter.edges_stored == 0
        counter.update(0, 2)
        counter.update(1, 2)
        # pre-fix, this re-arrival closed the 0-1-2 wedge (estimate 1.0)
        # and flipped a second coin for the same distinct edge
        counter.update(0, 1)
        assert counter.estimate_total() == 0.0
        assert counter.edges_stored == 2
        assert counter.edges_seen == 4

    @given(
        params=graph_params,
        keep=st.sampled_from([0.3, 0.6]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_duplicated_stream_equals_distinct_stream(self, params, keep, seed):
        """Estimator state is a function of the distinct-edge stream: a
        stream with every edge played twice ends in the identical state
        to the deduplicated stream under the same seed."""
        graph = _make_graph(params)
        edges = np.asarray(graph.edges(), dtype=np.int64)
        hubs = _hubs(graph, max(1, graph.num_vertices // 20))
        doubled = StreamingLotusCounter(hubs, nn_keep_prob=keep, seed=seed)
        for u, v in edges:
            doubled.update(int(u), int(v))
            doubled.update(int(v), int(u))  # swapped-endpoint duplicate
        distinct = StreamingLotusCounter(hubs, nn_keep_prob=keep, seed=seed)
        distinct.update_many(edges)
        assert doubled.estimate_total() == distinct.estimate_total()
        assert doubled.hub_triangles == distinct.hub_triangles
        assert doubled.nnn_estimate == distinct.nnn_estimate
        assert doubled.edges_stored == distinct.edges_stored
        assert doubled.edges_seen == 2 * distinct.edges_seen
