"""Tests for the command-line interface."""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.cli import main
from repro.graph import erdos_renyi, save_edgelist, save_npz
from repro.obs import report_from_json, spans_from_report


@pytest.fixture
def edgelist_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist(path, g)
    return str(path)


@pytest.fixture
def npz_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.npz"
    save_npz(path, g)
    return str(path)


class TestCount:
    def test_lotus_on_file(self, edgelist_file, capsys):
        assert main(["count", "--file", edgelist_file]) == 0
        out = capsys.readouterr().out
        assert "triangles:" in out and "types:" in out

    def test_forward_on_npz(self, npz_file, capsys):
        assert main(["count", "--file", npz_file, "--algorithm", "forward"]) == 0
        assert "triangles:" in capsys.readouterr().out

    def test_all_algorithms_agree(self, edgelist_file, capsys):
        counts = set()
        for alg in ("lotus", "forward", "forward-hashed", "edge-iterator"):
            main(["count", "--file", edgelist_file, "--algorithm", alg])
            out = capsys.readouterr().out
            line = next(l for l in out.splitlines() if l.startswith("triangles:"))
            counts.add(line)
        assert len(counts) == 1

    def test_hub_count_flag(self, edgelist_file, capsys):
        assert main(["count", "--file", edgelist_file, "--hub-count", "5"]) == 0

    def test_dataset(self, capsys):
        assert main(["count", "--dataset", "LJGrp"]) == 0
        assert "616,437" in capsys.readouterr().out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["count"])

    @pytest.mark.parametrize("backend", ["sequential", "threads", "processes"])
    def test_backend_flags_agree(self, backend, capsys):
        assert main([
            "count", "--dataset", "LJGrp", "--backend", backend, "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "616,437" in out
        assert f"backend: {backend} (workers=2)" in out

    def test_backend_auto_resolves(self, capsys):
        assert main(["count", "--dataset", "LJGrp", "--backend", "auto"]) == 0
        out = capsys.readouterr().out
        assert "616,437" in out and "backend: " in out

    def test_backend_requires_lotus(self, edgelist_file):
        with pytest.raises(SystemExit):
            main([
                "count", "--file", edgelist_file,
                "--algorithm", "forward", "--backend", "threads",
            ])

    def test_invalid_worker_count(self, edgelist_file):
        with pytest.raises(SystemExit):
            main(["count", "--file", edgelist_file, "--workers", "0"])


class TestOtherCommands:
    def test_analyze(self, edgelist_file, capsys):
        assert main(["analyze", "--file", edgelist_file]) == 0
        out = capsys.readouterr().out
        assert "hub triangles:" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "LJGrp" in out and "EU15" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table8"]) == 0
        assert "H2H" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])

    def test_experiment_private_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "_lotus"])

    def test_simulate(self, edgelist_file, capsys):
        assert main([
            "simulate", "--file", edgelist_file, "--machine", "Epyc", "--scale", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "forward" in out and "lotus" in out and "LLC misses" in out


class TestLocality:
    def test_table_covers_both_algorithms_and_regions(self, edgelist_file, capsys):
        assert main([
            "locality", "--file", edgelist_file, "--scale", "64",
        ]) == 0
        out = capsys.readouterr().out
        for token in ("forward", "lotus", "indices", "he", "nhe"):
            assert token in out
        assert "LLC" in out and "DTLB" in out

    def test_json_region_counts_sum_to_totals(self, edgelist_file, capsys):
        assert main([
            "locality", "--file", edgelist_file, "--format", "json", "--scale", "64",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert set(report["algorithms"]) == {"forward", "lotus"}
        for payload in report["algorithms"].values():
            totals = payload["totals"]
            for key in ("accesses", "l1_misses", "llc_misses", "dtlb_misses"):
                summed = sum(r["counts"][key] for r in payload["regions"].values())
                assert summed == totals[key]

    def test_single_algorithm_and_output_file(self, edgelist_file, tmp_path, capsys):
        dest = tmp_path / "locality.json"
        assert main([
            "locality", "--file", edgelist_file, "--algorithm", "lotus",
            "--format", "json", "--output", str(dest), "--scale", "64",
        ]) == 0
        assert "wrote json locality report" in capsys.readouterr().out
        report = json.loads(dest.read_text())
        assert list(report["algorithms"]) == ["lotus"]
        assert set(report["algorithms"]["lotus"]["phases"]) == {
            "hhh+hhn", "hnn", "nnn",
        }


class TestReport:
    def test_json_report_has_span_tree(self, edgelist_file, capsys):
        assert main(["report", "--file", edgelist_file]) == 0
        report = report_from_json(capsys.readouterr().out)
        assert report["meta"]["algorithm"] == "lotus"
        roots = spans_from_report(report)
        lotus = next(s for s in roots if s.name == "lotus")
        child_names = [c.name for c in lotus.children]
        assert child_names == ["preprocess", "hhh+hhn", "hnn", "nnn"]
        assert lotus.attrs["triangles"] == report["meta"]["triangles"]

    def test_json_report_other_algorithm(self, npz_file, capsys):
        assert main([
            "report", "--file", npz_file, "--algorithm", "forward",
        ]) == 0
        report = report_from_json(capsys.readouterr().out)
        roots = spans_from_report(report)
        assert any(s.name == "forward" for s in roots)

    def test_csv_format(self, edgelist_file, capsys):
        assert main(["report", "--file", edgelist_file, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "record,name,value,detail"
        assert any(line.startswith("span,lotus/preprocess,") for line in lines)

    def test_tree_format(self, edgelist_file, capsys):
        assert main(["report", "--file", edgelist_file, "--format", "tree"]) == 0
        out = capsys.readouterr().out
        for phase in ("lotus", "preprocess", "hhh+hhn", "hnn", "nnn"):
            assert phase in out

    def test_output_file(self, edgelist_file, tmp_path, capsys):
        dest = tmp_path / "report.json"
        assert main([
            "report", "--file", edgelist_file, "--output", str(dest),
        ]) == 0
        assert "wrote json report" in capsys.readouterr().out
        report = report_from_json(dest.read_text())
        assert report["meta"]["triangles"] >= 0

    def test_memsim_metrics_in_report(self, edgelist_file, capsys):
        assert main([
            "report", "--file", edgelist_file, "--memsim", "--scale", "64",
        ]) == 0
        report = report_from_json(capsys.readouterr().out)
        gauges = report["metrics"]["gauges"]
        for alg in ("forward", "lotus"):
            assert f"memsim.{alg}.l1.hit_rate" in gauges
            assert 0.0 <= gauges[f"memsim.{alg}.l1.hit_rate"] <= 1.0
        roots = spans_from_report(report)
        assert any(s.name == "memsim:lotus" for s in roots)

    def test_dataset_meta(self, capsys):
        assert main([
            "report", "--dataset", "Frndstr", "--format", "json",
        ]) == 0
        report = report_from_json(capsys.readouterr().out)
        assert report["meta"]["dataset"] == "Frndstr"
        assert report["meta"]["triangles"] == 4_888
        assert report["schema"] == 1

    def test_report_is_valid_json_document(self, edgelist_file, capsys):
        """The raw stdout must be a single well-formed JSON document."""
        assert main(["report", "--file", edgelist_file]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert set(parsed) >= {"schema", "meta", "metrics", "spans"}

def _exit2(argv):
    """Input errors must exit with status 2 and a one-line diagnostic."""
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2


class TestInputErrors:
    def test_count_missing_file(self, capsys):
        _exit2(["count", "--file", "/nonexistent/graph.txt"])
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_count_malformed_edgelist(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("this is\nnot an edge list\nat all\n")
        _exit2(["count", "--file", str(bad)])
        assert "error: cannot load graph" in capsys.readouterr().err

    def test_count_unknown_dataset(self, capsys):
        _exit2(["count", "--dataset", "NoSuchGraph"])
        assert "unknown dataset" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        _exit2(["report", "--file", "/nonexistent/graph.txt"])
        assert "no such file" in capsys.readouterr().err

    def test_locality_missing_file(self, capsys):
        _exit2(["locality", "--file", "/nonexistent/graph.txt"])
        assert "no such file" in capsys.readouterr().err

    def test_locality_malformed_npz(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"\x00\x01 not a zipfile")
        _exit2(["locality", "--file", str(bad)])
        assert "error: cannot load graph" in capsys.readouterr().err


class TestRunsLedger:
    @pytest.fixture
    def ledger_dir(self, tmp_path):
        return str(tmp_path / "runs")

    def _record(self, edgelist_file, ledger_dir, capsys):
        assert main([
            "count", "--file", edgelist_file, "--trace", "--ledger", ledger_dir,
        ]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("recorded run "))
        return line.split()[2]

    def test_count_trace_appends_record(self, edgelist_file, ledger_dir, capsys):
        run_id = self._record(edgelist_file, ledger_dir, capsys)
        assert run_id.startswith("r")
        ledger = json.loads(
            (pathlib.Path(ledger_dir) / "ledger.jsonl").read_text()
        )
        assert ledger["run_id"] == run_id
        assert ledger["config_hash"].startswith("sha256:")
        assert ledger["spans"], "traced run must persist its span tree"

    def test_runs_list_and_show(self, edgelist_file, ledger_dir, capsys):
        run_id = self._record(edgelist_file, ledger_dir, capsys)
        assert main(["runs", "list", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert run_id in out and "1 run(s)" in out
        assert main(["runs", "show", "latest", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert f"run:      {run_id}" in out and "lotus" in out

    def test_runs_show_json(self, edgelist_file, ledger_dir, capsys):
        run_id = self._record(edgelist_file, ledger_dir, capsys)
        assert main([
            "runs", "show", run_id[:12], "--format", "json",
            "--ledger", ledger_dir,
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["run_id"] == run_id
        assert record["provenance"]["python"]

    def test_runs_diff_identical_runs_exit_zero(
        self, edgelist_file, ledger_dir, capsys
    ):
        self._record(edgelist_file, ledger_dir, capsys)
        self._record(edgelist_file, ledger_dir, capsys)
        assert main([
            "runs", "diff", "latest~1", "latest", "--ledger", ledger_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_runs_diff_detects_exact_regression(
        self, edgelist_file, ledger_dir, capsys
    ):
        self._record(edgelist_file, ledger_dir, capsys)
        self._record(edgelist_file, ledger_dir, capsys)
        path = pathlib.Path(ledger_dir) / "ledger.jsonl"
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["meta"]["triangles"] += 1
        path.write_text(lines[0] + "\n" + json.dumps(record) + "\n")
        assert main([
            "runs", "diff", "latest~1", "latest", "--ledger", ledger_dir,
        ]) == 1
        assert "regression" in capsys.readouterr().out

    def test_runs_export_trace(self, edgelist_file, ledger_dir, tmp_path, capsys):
        self._record(edgelist_file, ledger_dir, capsys)
        dest = tmp_path / "run.trace.json"
        assert main([
            "runs", "export", "latest", "--ledger", ledger_dir,
            "--output", str(dest),
        ]) == 0
        trace = json.loads(dest.read_text())
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert "lotus" in names and "preprocess" in names

    def test_runs_export_record(self, edgelist_file, ledger_dir, capsys):
        run_id = self._record(edgelist_file, ledger_dir, capsys)
        assert main([
            "runs", "export", "latest", "--format", "record",
            "--ledger", ledger_dir,
        ]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == run_id

    def test_runs_missing_ledger(self, tmp_path, capsys):
        _exit2(["runs", "list", "--ledger", str(tmp_path / "empty")])
        assert "no ledger at" in capsys.readouterr().err

    def test_runs_unknown_ref(self, edgelist_file, ledger_dir, capsys):
        self._record(edgelist_file, ledger_dir, capsys)
        _exit2(["runs", "show", "zzzznope", "--ledger", ledger_dir])
        assert "error:" in capsys.readouterr().err

    def test_runs_latest_out_of_range(self, edgelist_file, ledger_dir, capsys):
        self._record(edgelist_file, ledger_dir, capsys)
        _exit2(["runs", "show", "latest~5", "--ledger", ledger_dir])

    def test_runs_malformed_ledger_line(self, edgelist_file, ledger_dir, capsys):
        self._record(edgelist_file, ledger_dir, capsys)
        path = pathlib.Path(ledger_dir) / "ledger.jsonl"
        path.write_text(path.read_text() + "{malformed\n")
        _exit2(["runs", "list", "--ledger", ledger_dir])
        assert "error:" in capsys.readouterr().err

    def test_report_ledger_flag_appends(self, edgelist_file, ledger_dir, capsys):
        assert main([
            "report", "--file", edgelist_file, "--ledger", ledger_dir,
            "--output", os.devnull,
        ]) == 0
        assert "recorded run " in capsys.readouterr().out
        assert main(["runs", "list", "--ledger", ledger_dir]) == 0
        assert "report" in capsys.readouterr().out
