"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import erdos_renyi, save_edgelist, save_npz


@pytest.fixture
def edgelist_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist(path, g)
    return str(path)


@pytest.fixture
def npz_file(tmp_path):
    g = erdos_renyi(100, 0.1, seed=1)
    path = tmp_path / "g.npz"
    save_npz(path, g)
    return str(path)


class TestCount:
    def test_lotus_on_file(self, edgelist_file, capsys):
        assert main(["count", "--file", edgelist_file]) == 0
        out = capsys.readouterr().out
        assert "triangles:" in out and "types:" in out

    def test_forward_on_npz(self, npz_file, capsys):
        assert main(["count", "--file", npz_file, "--algorithm", "forward"]) == 0
        assert "triangles:" in capsys.readouterr().out

    def test_all_algorithms_agree(self, edgelist_file, capsys):
        counts = set()
        for alg in ("lotus", "forward", "forward-hashed", "edge-iterator"):
            main(["count", "--file", edgelist_file, "--algorithm", alg])
            out = capsys.readouterr().out
            line = next(l for l in out.splitlines() if l.startswith("triangles:"))
            counts.add(line)
        assert len(counts) == 1

    def test_hub_count_flag(self, edgelist_file, capsys):
        assert main(["count", "--file", edgelist_file, "--hub-count", "5"]) == 0

    def test_dataset(self, capsys):
        assert main(["count", "--dataset", "LJGrp"]) == 0
        assert "616,437" in capsys.readouterr().out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["count"])


class TestOtherCommands:
    def test_analyze(self, edgelist_file, capsys):
        assert main(["analyze", "--file", edgelist_file]) == 0
        out = capsys.readouterr().out
        assert "hub triangles:" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "LJGrp" in out and "EU15" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table8"]) == 0
        assert "H2H" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])

    def test_experiment_private_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "_lotus"])

    def test_simulate(self, edgelist_file, capsys):
        assert main([
            "simulate", "--file", edgelist_file, "--machine", "Epyc", "--scale", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "forward" in out and "lotus" in out and "LLC misses" in out
