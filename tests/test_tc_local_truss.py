"""Tests for local triangle counting, clustering, and k-truss."""

import numpy as np
import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    from_edges,
    powerlaw_chung_lu,
    star_graph,
)
from repro.tc import (
    count_triangles_matrix,
    edge_supports,
    global_transitivity,
    k_truss,
    local_clustering_coefficients,
    local_triangle_counts,
    truss_numbers,
)


def _to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.num_vertices))
    h.add_edges_from(map(tuple, g.edges()))
    return h


class TestLocalTriangleCounts:
    def test_matches_networkx(self, er_medium):
        counts = local_triangle_counts(er_medium)
        expected = nx.triangles(_to_nx(er_medium))
        assert all(counts[v] == expected[v] for v in range(er_medium.num_vertices))

    def test_sum_is_three_times_total(self, powerlaw_small):
        counts = local_triangle_counts(powerlaw_small)
        assert counts.sum() == 3 * count_triangles_matrix(powerlaw_small)

    def test_natural_order_agrees(self, er_small):
        a = local_triangle_counts(er_small, degree_order=True)
        b = local_triangle_counts(er_small, degree_order=False)
        np.testing.assert_array_equal(a, b)

    def test_complete_graph(self):
        counts = local_triangle_counts(complete_graph(6))
        assert (counts == 10).all()  # C(5,2) per vertex

    def test_triangle_free(self):
        assert local_triangle_counts(cycle_graph(8)).sum() == 0
        assert local_triangle_counts(star_graph(9)).sum() == 0

    def test_empty(self):
        assert local_triangle_counts(empty_graph(5)).sum() == 0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_vs_networkx(self, seed):
        g = erdos_renyi(80, 0.1, seed=seed)
        counts = local_triangle_counts(g)
        expected = nx.triangles(_to_nx(g))
        assert all(counts[v] == expected[v] for v in range(80))


class TestClustering:
    def test_matches_networkx(self, er_medium):
        mine = local_clustering_coefficients(er_medium)
        theirs = nx.clustering(_to_nx(er_medium))
        np.testing.assert_allclose(
            mine, [theirs[v] for v in range(er_medium.num_vertices)]
        )

    def test_transitivity_matches_networkx(self, powerlaw_small):
        assert global_transitivity(powerlaw_small) == pytest.approx(
            nx.transitivity(_to_nx(powerlaw_small))
        )

    def test_complete_graph_is_one(self):
        assert (local_clustering_coefficients(complete_graph(5)) == 1.0).all()
        assert global_transitivity(complete_graph(5)) == pytest.approx(1.0)

    def test_degree_one_vertices_zero(self):
        assert (local_clustering_coefficients(star_graph(6))[1:] == 0.0).all()

    def test_empty(self):
        assert global_transitivity(empty_graph(3)) == 0.0


class TestEdgeSupports:
    def test_triangle(self):
        g = complete_graph(3)
        edges, support = edge_supports(g)
        assert (support == 1).all()

    def test_k4(self):
        edges, support = edge_supports(complete_graph(4))
        assert (support == 2).all()  # every edge in 2 triangles

    def test_sum_is_three_times_triangles(self, er_medium):
        _, support = edge_supports(er_medium)
        assert support.sum() == 3 * count_triangles_matrix(er_medium)

    def test_no_triangles(self):
        _, support = edge_supports(cycle_graph(10))
        assert (support == 0).all()

    def test_two_triangles_shared_edge(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2], [0, 3], [1, 3]]))
        edges, support = edge_supports(g)
        by_edge = {tuple(e): s for e, s in zip(edges.tolist(), support.tolist())}
        assert by_edge[(0, 1)] == 2
        assert by_edge[(1, 2)] == 1


class TestKTruss:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_networkx(self, k):
        g = erdos_renyi(120, 0.1, seed=9)
        mine = k_truss(g, k)
        theirs = nx.k_truss(_to_nx(g), k)
        assert set(map(tuple, mine.edges())) == {
            tuple(sorted(e)) for e in theirs.edges()
        }

    def test_k2_keeps_everything(self, er_small):
        assert k_truss(er_small, 2).num_edges == er_small.num_edges

    def test_complete_graph(self):
        g = complete_graph(6)
        assert k_truss(g, 6).num_edges == 15  # K6 is a 6-truss
        assert k_truss(g, 7).num_edges == 0

    def test_truss_numbers_monotone_with_support(self, er_medium):
        edges, truss = truss_numbers(er_medium)
        _, support = edge_supports(er_medium)
        # trussness is at most support + 2
        assert (truss <= support + 2).all()
        assert (truss >= 2).all()

    def test_invalid_k(self, k5):
        with pytest.raises(ValueError):
            k_truss(k5, 1)

    def test_empty_graph(self):
        edges, truss = truss_numbers(empty_graph(4))
        assert truss.size == 0

    def test_powerlaw_against_networkx(self):
        g = powerlaw_chung_lu(300, 8.0, exponent=2.1, seed=10)
        for k in (3, 4):
            mine = k_truss(g, k)
            theirs = nx.k_truss(_to_nx(g), k)
            assert set(map(tuple, mine.edges())) == {
                tuple(sorted(e)) for e in theirs.edges()
            }
