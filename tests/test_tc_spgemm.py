"""Tests for the from-scratch masked/boolean SpGEMM."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import complete_graph, cycle_graph, empty_graph, erdos_renyi, powerlaw_chung_lu
from repro.tc import count_triangles_matrix, count_triangles_spgemm
from repro.tc.spgemm import masked_spgemm_count, spgemm_boolean


class TestMaskedSpGEMM:
    def test_matches_matrix_oracle(self, er_medium):
        assert count_triangles_spgemm(er_medium).triangles == count_triangles_matrix(
            er_medium
        )

    def test_powerlaw(self, powerlaw_small):
        assert (
            count_triangles_spgemm(powerlaw_small).triangles
            == count_triangles_matrix(powerlaw_small)
        )

    def test_complete(self):
        assert count_triangles_spgemm(complete_graph(8)).triangles == 56

    def test_triangle_free(self):
        assert count_triangles_spgemm(cycle_graph(12)).triangles == 0

    def test_empty(self):
        assert count_triangles_spgemm(empty_graph(5)).triangles == 0

    def test_natural_order(self, er_small):
        assert (
            count_triangles_spgemm(er_small, degree_order=False).triangles
            == count_triangles_matrix(er_small)
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_property(self, seed):
        g = erdos_renyi(90, 0.1, seed=seed)
        assert count_triangles_spgemm(g).triangles == count_triangles_matrix(g)

    def test_chunking_invariance(self):
        """The count must not depend on the chunk budget."""
        g = powerlaw_chung_lu(800, 10.0, exponent=2.0, seed=4)
        og = g.orient_lower()
        full = masked_spgemm_count(og.indptr, og.indices)
        tiny = masked_spgemm_count(og.indptr, og.indices, budget=64)
        assert full == tiny == count_triangles_matrix(g)

    def test_invalid_budget(self, er_small):
        og = er_small.orient_lower()
        with pytest.raises(ValueError):
            masked_spgemm_count(og.indptr, og.indices, budget=0)


class TestBooleanSpGEMM:
    def _scipy_product(self, ip_a, ix_a, ip_b, ix_b, n):
        A = sp.csr_matrix(
            (np.ones(ix_a.size), ix_a.astype(np.int64), ip_a), shape=(ip_a.size - 1, n)
        )
        B = sp.csr_matrix(
            (np.ones(ix_b.size), ix_b.astype(np.int64), ip_b), shape=(ip_b.size - 1, n)
        )
        P = (A @ B).tocsr()
        P.sum_duplicates()
        P.sort_indices()
        return P.indptr.astype(np.int64), P.indices.astype(np.int64)

    def test_matches_scipy(self, er_small):
        og = er_small.orient_lower()
        n = og.num_vertices
        ip, ix = spgemm_boolean(og.indptr, og.indices, og.indptr, og.indices, n)
        eip, eix = self._scipy_product(og.indptr, og.indices, og.indptr, og.indices, n)
        np.testing.assert_array_equal(ip, eip)
        np.testing.assert_array_equal(ix, eix)

    def test_full_symmetric_product(self, er_small):
        g = er_small
        n = g.num_vertices
        ip, ix = spgemm_boolean(g.indptr, g.indices, g.indptr, g.indices, n)
        eip, eix = self._scipy_product(g.indptr, g.indices, g.indptr, g.indices, n)
        np.testing.assert_array_equal(ip, eip)
        np.testing.assert_array_equal(ix, eix)

    def test_empty(self):
        ip = np.array([0, 0], dtype=np.int64)
        ix = np.array([], dtype=np.uint32)
        rip, rix = spgemm_boolean(ip, ix, ip, ix, 1)
        np.testing.assert_array_equal(rip, [0, 0])
        assert rix.size == 0
