"""Golden tests for the dynamic CLI surface: ``replay`` and the serve
update protocol.

The update response field order is a published contract like the count
responses in ``test_cli_serve.py`` (docs/serving.md, docs/dynamic.md).
Invocation errors follow the usual contract — one-line ``error: ...`` on
stderr, exit status 2 — and malformed *update requests* must not kill a
serve session.
"""

import json

import pytest

from repro.cli import main
from repro.dynamic import synthesize_stream, write_stream
from repro.graph import erdos_renyi, save_edgelist

UPDATE_FIELDS = [
    "id", "ok", "op", "status", "dataset", "version", "applied",
    "rejected", "triangle_delta", "triangles", "queued_ms", "elapsed_ms",
]
OK_FIELDS = [
    "id", "ok", "op", "status", "dataset", "algorithm", "triangles",
    "cache", "batched", "queued_ms", "elapsed_ms",
]


@pytest.fixture
def graph():
    return erdos_renyi(100, 0.08, seed=31)


@pytest.fixture
def edgelist_file(tmp_path, graph):
    path = tmp_path / "g.txt"
    save_edgelist(path, graph)
    return str(path)


@pytest.fixture
def stream_file(tmp_path, graph):
    path = tmp_path / "stream.txt"
    write_stream(str(path), synthesize_stream(graph, 300, seed=6))
    return str(path)


def _serve(tmp_path, lines):
    request_file = tmp_path / "requests.jsonl"
    request_file.write_text("\n".join(lines) + "\n")
    assert main(["serve", "--input", str(request_file)]) == 0


class TestReplayCommand:
    def test_verified_replay_with_report_and_metrics(
        self, tmp_path, edgelist_file, stream_file, capsys
    ):
        report_file = tmp_path / "report.json"
        prom_file = tmp_path / "metrics.prom"
        assert main([
            "replay", "--file", edgelist_file, "--stream", stream_file,
            "--batch", "32", "--compact-every", "4", "--verify",
            "--track-hubs", "--json", str(report_file),
            "--metrics-file", str(prom_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "verified: incremental count equals full recount" in out
        assert "verified: H2H patched exactly" in out
        assert "applied" in out and "compactions" in out

        report = json.loads(report_file.read_text())
        assert report["ops"] == 300
        assert report["applied"] + report["rejected"] == 300
        assert report["applied"] >= 240  # only the noise share rejects
        assert report["compactions"] >= 1
        assert len(report["trajectory"]) == report["batches"]
        assert report["final_triangles"] == (
            report["trajectory"][-1]["triangles"]
        )

        prom = prom_file.read_text()
        assert "dynamic_updates_applied" in prom
        applied_line = next(
            line for line in prom.splitlines()
            if line.startswith("dynamic_updates_applied ")
        )
        assert int(applied_line.split()[1]) == report["applied"]

    def test_progress_prints_trajectory_to_stderr(
        self, tmp_path, edgelist_file, stream_file, capsys
    ):
        assert main([
            "replay", "--file", edgelist_file, "--stream", stream_file,
            "--batch", "64", "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "batch" in err and "triangles=" in err

    def _exit2(self, argv, capsys, needle):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert needle in capsys.readouterr().err

    def test_missing_stream_file(self, edgelist_file, capsys):
        self._exit2(
            ["replay", "--file", edgelist_file, "--stream", "/no/such.txt"],
            capsys, "no such file",
        )

    def test_unparseable_stream(self, tmp_path, edgelist_file, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2\nsmash boom bang pow wham\n")
        self._exit2(
            ["replay", "--file", edgelist_file, "--stream", str(bad)],
            capsys, "cannot parse",
        )

    def test_empty_stream(self, tmp_path, edgelist_file, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# only comments\n")
        self._exit2(
            ["replay", "--file", edgelist_file, "--stream", str(empty)],
            capsys, "no update ops",
        )

    def test_bad_flags(self, tmp_path, edgelist_file, stream_file, capsys):
        self._exit2(
            ["replay", "--file", edgelist_file, "--stream", stream_file,
             "--batch", "0"],
            capsys, "--batch",
        )
        self._exit2(
            ["replay", "--file", edgelist_file, "--stream", stream_file,
             "--kernel", "quantum"],
            capsys, "unknown kernel",
        )


class TestServeUpdateProtocol:
    def test_update_response_field_order(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [json.dumps({
            "file": edgelist_file, "op": "insert", "id": "u1",
            "edges": [[0, 1], [0, 2], [1, 2]],
        })])
        obj = json.loads(capsys.readouterr().out.strip())
        assert list(obj) == UPDATE_FIELDS
        assert obj["id"] == "u1" and obj["ok"] is True
        assert obj["op"] == "insert"
        assert obj["applied"] + obj["rejected"] == 3
        assert obj["version"] >= 1

    def test_insert_delete_round_trip_restores_count(
        self, tmp_path, edgelist_file, capsys
    ):
        edges = [[0, 1], [0, 2], [1, 2]]
        _serve(tmp_path, [
            json.dumps({"file": edgelist_file, "id": "base"}),
            json.dumps({"file": edgelist_file, "op": "insert",
                        "edges": edges, "id": "ins"}),
            json.dumps({"file": edgelist_file, "op": "delete",
                        "edges": edges, "id": "del"}),
            json.dumps({"file": edgelist_file, "algorithm": "maintained",
                        "id": "after"}),
        ])
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        by_id = {obj["id"]: obj for obj in lines}
        assert by_id["ins"]["applied"] == by_id["del"]["applied"]
        assert (by_id["ins"]["triangle_delta"]
                == -by_id["del"]["triangle_delta"])
        assert by_id["after"]["triangles"] == by_id["base"]["triangles"]
        # the maintained read is served from the session, not the cache
        assert by_id["after"]["cache"] is None
        assert by_id["after"]["version"] == by_id["del"]["version"]

    def test_count_after_update_carries_version(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(tmp_path, [
            json.dumps({"file": edgelist_file, "op": "insert",
                        "edges": [[0, 1], [2, 3]], "id": "u"}),
            json.dumps({"file": edgelist_file, "algorithm": "forward",
                        "id": "c"}),
        ])
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        update, count = lines
        assert list(count) == OK_FIELDS + ["version"]
        assert count["version"] == update["version"]
        assert count["triangles"] == update["triangles"]

    def test_compact_response(self, tmp_path, edgelist_file, capsys):
        _serve(tmp_path, [
            json.dumps({"file": edgelist_file, "op": "insert",
                        "edges": [[0, 1]], "id": "u"}),
            json.dumps({"file": edgelist_file, "op": "compact", "id": "k"}),
        ])
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        compact = lines[1]
        assert list(compact) == UPDATE_FIELDS
        assert compact["op"] == "compact"
        assert compact["triangle_delta"] == 0
        assert compact["triangles"] == lines[0]["triangles"]
        assert compact["version"] == lines[0]["version"]

    def test_bad_updates_do_not_kill_session(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(tmp_path, [
            json.dumps({"file": edgelist_file, "op": "insert", "id": "e1"}),
            json.dumps({"file": edgelist_file, "op": "insert",
                        "edges": [[0, "x"]], "id": "e2"}),
            json.dumps({"file": edgelist_file, "op": "count",
                        "edges": [[0, 1]], "id": "e3"}),
            json.dumps({"file": edgelist_file, "algorithm": "maintained",
                        "id": "e4"}),
            json.dumps({"file": edgelist_file, "id": "ok"}),
        ])
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        by_id = {obj["id"]: obj for obj in lines}
        assert "non-empty edges list" in by_id["e1"]["error"]
        assert by_id["e2"]["ok"] is False
        assert "edges" in by_id["e3"]["error"]
        assert "requires a dynamic session" in by_id["e4"]["error"]
        assert by_id["ok"]["ok"] is True

    def test_stats_report_dynamic_sessions(
        self, tmp_path, edgelist_file, capsys
    ):
        _serve(tmp_path, [
            json.dumps({"file": edgelist_file, "op": "insert",
                        "edges": [[0, 1]], "id": "u"}),
            json.dumps({"op": "stats", "id": "s"}),
        ])
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        assert lines[1]["stats"]["dynamic_sessions"] == 1
