"""Cross-validation of every triangle-counting algorithm.

All implementations must agree with the matrix oracle (tr(A^3)/6) and —
on small graphs — with networkx.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.graph import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    from_edges,
    powerlaw_chung_lu,
    star_graph,
    watts_strogatz,
)
from repro.tc import (
    count_triangles_block,
    count_triangles_edge_iterator,
    count_triangles_forward,
    count_triangles_forward_hashed,
    count_triangles_matrix,
    count_triangles_node_iterator,
)
from repro.core import count_triangles_lotus, LotusConfig

ALGORITHMS = [
    ("forward", lambda g: count_triangles_forward(g).triangles),
    ("forward-unfused", lambda g: count_triangles_forward(g, fused=False).triangles),
    ("forward-natural", lambda g: count_triangles_forward(g, degree_order=False).triangles),
    ("node-iterator", lambda g: count_triangles_node_iterator(g).triangles),
    ("edge-iterator", lambda g: count_triangles_edge_iterator(g).triangles),
    ("forward-hashed", lambda g: count_triangles_forward_hashed(g).triangles),
    ("block-4", lambda g: count_triangles_block(g, num_blocks=4).triangles),
    ("block-1", lambda g: count_triangles_block(g, num_blocks=1).triangles),
    ("lotus", lambda g: count_triangles_lotus(g).triangles),
    ("lotus-16hubs", lambda g: count_triangles_lotus(g, LotusConfig(hub_count=16)).triangles),
]


def _nx_triangles(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.num_vertices))
    h.add_edges_from(map(tuple, g.edges()))
    return sum(nx.triangles(h).values()) // 3


@pytest.mark.parametrize("name,count", ALGORITHMS)
class TestAgainstOracle:
    def test_complete_k6(self, name, count):
        assert count(complete_graph(6)) == 20  # C(6,3)

    def test_triangle_free_cycle(self, name, count):
        assert count(cycle_graph(10)) == 0

    def test_single_triangle(self, name, count):
        assert count(complete_graph(3)) == 1

    def test_empty(self, name, count):
        assert count(empty_graph(12)) == 0

    def test_star_no_triangles(self, name, count):
        assert count(star_graph(15)) == 0

    def test_er_matches_matrix(self, name, count):
        g = erdos_renyi(150, 0.07, seed=21)
        assert count(g) == count_triangles_matrix(g)

    def test_powerlaw_matches_matrix(self, name, count):
        g = powerlaw_chung_lu(600, 7.0, exponent=2.1, seed=22)
        assert count(g) == count_triangles_matrix(g)

    def test_smallworld_matches_matrix(self, name, count):
        g = watts_strogatz(300, 6, 0.2, seed=23)
        assert count(g) == count_triangles_matrix(g)

    def test_matches_networkx(self, name, count):
        g = erdos_renyi(80, 0.12, seed=24)
        assert count(g) == _nx_triangles(g)


class TestMatrixOracle:
    def test_against_networkx_random(self):
        for seed in range(5):
            g = erdos_renyi(60, 0.15, seed=seed)
            assert count_triangles_matrix(g) == _nx_triangles(g)

    def test_two_triangles_sharing_edge(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2], [0, 3], [1, 3]]))
        assert count_triangles_matrix(g) == 2


class TestProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_forward_equals_matrix_on_random_graphs(self, seed):
        g = erdos_renyi(100, 0.08, seed=seed)
        assert count_triangles_forward(g).triangles == count_triangles_matrix(g)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_lotus_equals_matrix_on_random_graphs(self, seed):
        g = powerlaw_chung_lu(200, 6.0, exponent=2.2, seed=seed)
        assert count_triangles_lotus(g).triangles == count_triangles_matrix(g)

    @given(st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_complete_graph_closed_form(self, n):
        expected = n * (n - 1) * (n - 2) // 6
        assert count_triangles_forward(complete_graph(n)).triangles == expected

    def test_adding_edge_never_decreases(self):
        g1 = erdos_renyi(50, 0.1, seed=3)
        edges = g1.edges()
        # add one absent edge
        present = {tuple(e) for e in edges.tolist()}
        for u in range(50):
            for v in range(u + 1, 50):
                if (u, v) not in present:
                    g2 = from_edges(
                        np.vstack([edges, [[u, v]]]), num_vertices=50
                    )
                    assert (
                        count_triangles_forward(g2).triangles
                        >= count_triangles_forward(g1).triangles
                    )
                    return


class TestResultMetadata:
    def test_phases_recorded(self, er_small):
        r = count_triangles_forward(er_small)
        assert "preprocess" in r.phases and "count" in r.phases
        assert r.elapsed == pytest.approx(sum(r.phases.values()))

    def test_rate(self, er_small):
        r = count_triangles_forward(er_small)
        assert r.rate_edges_per_second(er_small.num_edges) > 0
