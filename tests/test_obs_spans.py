"""Span tracing tests: nesting, cross-thread parents, pipeline span trees,
and JSON/CSV round-trips of emitted reports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import count_triangles_lotus
from repro.graph import powerlaw_chung_lu
from repro.obs import (
    MetricsRegistry,
    Span,
    build_report,
    render_span_tree,
    report_from_json,
    report_to_csv,
    report_to_json,
    spans_from_report,
    timed_phase,
    use_registry,
)
from repro.tc import (
    count_triangles_edge_iterator,
    count_triangles_forward,
    count_triangles_forward_hashed,
    count_triangles_matrix,
    count_triangles_node_iterator,
)
from repro.util.timer import PhaseTimer


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            with reg.span("a"):
                with reg.span("a1"):
                    pass
            with reg.span("b"):
                pass
        (root,) = reg.roots
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_sequential_roots_accumulate(self):
        reg = MetricsRegistry()
        with reg.span("first"):
            pass
        with reg.span("second"):
            pass
        assert [r.name for r in reg.roots] == ["first", "second"]

    def test_elapsed_and_self_time(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            with reg.span("child"):
                pass
        (root,) = reg.roots
        assert root.elapsed >= root.children[0].elapsed >= 0.0
        assert root.self_time() == pytest.approx(
            root.elapsed - root.children[0].elapsed
        )

    def test_explicit_parent_across_threads(self):
        reg = MetricsRegistry()
        with reg.span("phase") as phase:
            def work():
                with reg.span("tile", parent=phase) as t:
                    t.set("hits", 1)

            threads = [threading.Thread(target=work) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        (root,) = reg.roots
        assert len(root.children) == 8
        assert root.total_attr("hits") == 8

    def test_attrs_set_and_add(self):
        span = Span("s")
        span.set("label", "x")
        span.add("ops", 3)
        span.add("ops", 4)
        assert span.attrs == {"label": "x", "ops": 7}

    def test_find_and_iter(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            with reg.span("inner"):
                with reg.span("leaf"):
                    pass
            with reg.span("leaf"):
                pass
        (root,) = reg.roots
        assert root.find("leaf") is root.children[0].children[0]
        assert len(root.find_all("leaf")) == 2
        assert [s.name for s in root.iter_spans()] == [
            "root", "inner", "leaf", "leaf",
        ]
        assert reg.find_span("inner") is not None
        assert reg.find_span("missing") is None

    def test_timed_phase_feeds_both_timer_and_span(self):
        timer = PhaseTimer()
        reg = MetricsRegistry()
        with use_registry(reg):
            with timed_phase(timer, "work") as span:
                span.set("ops", 5)
        assert "work" in timer.phases
        (root,) = reg.roots
        assert root.name == "work"
        assert root.attrs["ops"] == 5
        assert root.elapsed > 0.0


class TestPipelineSpanTrees:
    """The instrumented entry points must emit per-phase span trees."""

    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_chung_lu(1200, 8.0, exponent=2.1, seed=17)

    def test_lotus_emits_phase_tree_with_op_counts(self, graph):
        with use_registry() as reg:
            result = count_triangles_lotus(graph)
        root = reg.find_span("lotus")
        assert root is not None
        phases = [c.name for c in root.children]
        assert phases == ["preprocess", "hhh+hhn", "hnn", "nnn"]
        assert root.attrs["triangles"] == result.triangles
        pre = root.find("preprocess")
        assert pre.attrs["he_edges"] + pre.attrs["nhe_edges"] == graph.num_edges
        p1 = root.find("hhh+hhn")
        assert p1.attrs["pairs_tested"] >= 0
        assert p1.attrs["hhh"] + p1.attrs["hhn"] >= 0
        counts = result.extra["counts"]
        assert p1.attrs["hhh"] == counts.hhh
        assert root.find("hnn").attrs["hnn"] == counts.hnn
        assert root.find("nnn").attrs["nnn"] == counts.nnn
        # span times mirror the PhaseTimer breakdown
        for name, seconds in result.phases.items():
            assert root.find(name).elapsed == pytest.approx(seconds, rel=0.5, abs=0.01)

    @pytest.mark.parametrize(
        "fn, root_name",
        [
            (count_triangles_forward, "forward"),
            (count_triangles_forward_hashed, "forward-hashed"),
            (count_triangles_edge_iterator, "edge-iterator"),
        ],
    )
    def test_two_phase_algorithms_emit_trees(self, graph, fn, root_name):
        with use_registry() as reg:
            result = fn(graph)
        root = reg.find_span(root_name)
        assert root is not None
        assert [c.name for c in root.children] == ["preprocess", "count"]
        assert root.attrs["triangles"] == result.triangles
        assert root.attrs["num_edges"] == graph.num_edges

    def test_single_phase_algorithms_emit_root_spans(self, graph):
        with use_registry() as reg:
            result = count_triangles_node_iterator(graph)
            matrix = count_triangles_matrix(graph)
        node = reg.find_span("node-iterator")
        assert node.attrs["triangles"] == result.triangles
        assert node.attrs["intersections"] > 0
        assert reg.find_span("matrix").attrs["triangles"] == matrix

    def test_disabled_mode_emits_nothing(self, graph):
        # no active registry: the same code paths must leave no trace
        from repro.obs import NULL_REGISTRY

        count_triangles_lotus(graph)
        assert NULL_REGISTRY.roots == []


class TestReportRoundTrip:
    def _sample_registry(self):
        reg = MetricsRegistry()
        with reg.span("root", dataset="test") as root:
            with reg.span("phase") as phase:
                phase.add("ops", 42)
            root.set("triangles", 7)
        reg.counter("pairs").add(10)
        reg.gauge("hit_rate").set(0.875)
        reg.histogram("tile_work", buckets=(1.0, 8.0, 64.0)).observe(5)
        return reg

    def test_json_round_trip_preserves_everything(self):
        reg = self._sample_registry()
        report = build_report(reg, meta={"algorithm": "lotus"})
        text = report_to_json(report)
        back = report_from_json(text)
        assert back["meta"] == {"algorithm": "lotus"}
        assert back["metrics"] == reg.snapshot()
        (root,) = spans_from_report(back)
        orig = reg.roots[0]
        assert root.name == orig.name
        assert root.attrs == orig.attrs
        assert root.elapsed == orig.elapsed
        assert root.children[0].attrs == {"ops": 42}
        # a second round-trip is byte-identical
        assert report_to_json(build_reparsed(back)) == text

    def test_rejects_wrong_schema_and_missing_sections(self):
        with pytest.raises(ValueError):
            report_from_json(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            report_from_json(json.dumps({"schema": 1, "meta": {}, "spans": []}))

    def test_csv_projection(self):
        reg = self._sample_registry()
        csv_text = report_to_csv(build_report(reg))
        lines = csv_text.strip().splitlines()
        assert lines[0] == "record,name,value,detail"
        records = {line.split(",")[0] for line in lines[1:]}
        assert records == {"counter", "gauge", "histogram", "span"}
        assert any(line.startswith("span,root/phase,") for line in lines)

    def test_render_span_tree(self):
        reg = self._sample_registry()
        text = render_span_tree(reg.roots[0])
        assert "root" in text and "phase" in text and "ops=42" in text

    def test_numpy_scalars_serialise(self):
        import numpy as np

        reg = MetricsRegistry()
        with reg.span("s") as span:
            span.set("n", np.int64(3))
        text = report_to_json(build_report(reg))
        assert json.loads(text)["spans"][0]["attrs"]["n"] == 3


def build_reparsed(report: dict) -> dict:
    """Rebuild a report dict from its parsed spans (round-trip helper)."""
    return {
        "schema": report["schema"],
        "meta": report["meta"],
        "metrics": report["metrics"],
        "spans": [s.to_dict() for s in spans_from_report(report)],
    }


class TestSpanExceptionSafety:
    """Raising inside ``with registry.span(...)`` must unwind the span
    stack — a leaked entry would silently re-parent every later span."""

    def test_exception_pops_span(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("inside span")
        assert reg.current_span() is None
        (root,) = reg.roots
        assert root.name == "boom"
        assert root.elapsed >= 0.0  # timing finalised despite the raise

    def test_exception_in_nested_span_unwinds_to_parent(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            with pytest.raises(ValueError):
                with reg.span("child"):
                    raise ValueError("child failed")
            assert reg.current_span().name == "root"
            with reg.span("sibling"):
                pass
        (root,) = reg.roots
        assert [c.name for c in root.children] == ["child", "sibling"]

    def test_next_run_tree_uncorrupted_after_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("first"):
                with reg.span("inner"):
                    raise RuntimeError
        with reg.span("second"):
            with reg.span("second-child"):
                pass
        assert [r.name for r in reg.roots] == ["first", "second"]
        second = reg.roots[1]
        assert [c.name for c in second.children] == ["second-child"]

    def test_abandoned_inner_contexts_are_unwound(self):
        # __exit__ called on an outer span while inner contexts were
        # abandoned (e.g. generator torn down mid-iteration): the pop must
        # clear everything above the exiting span, not strand it.
        reg = MetricsRegistry()
        outer = reg.span("outer")
        outer.__enter__()
        inner = reg.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # inner never exited
        assert reg.current_span() is None
        with reg.span("after"):
            pass
        assert [r.name for r in reg.roots] == ["outer", "after"]

    def test_use_registry_restores_on_exception(self):
        from repro.obs import get_registry, NULL_REGISTRY

        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError
        assert get_registry() is NULL_REGISTRY


class TestSelfTimeClamp:
    """Stitched worker spans ran concurrently on their own processes'
    clocks, so a parent's direct children can legitimately sum past its
    own elapsed — ``self_time`` must clamp at 0, never go negative."""

    def test_concurrent_children_exceeding_parent_clamp_to_zero(self):
        # the shape stitch_worker_payloads produces: a 1s phase span with
        # four concurrent 0.9s worker children (3.6s of child time)
        parent = Span("phase1-processes")
        parent.elapsed = 1.0
        for w in range(4):
            child = Span("worker", {"worker": w})
            child.elapsed = 0.9
            parent.children.append(child)
        assert parent.self_time() == 0.0

    def test_sequential_children_keep_real_self_time(self):
        parent = Span("phase")
        parent.elapsed = 1.0
        for elapsed in (0.25, 0.25):
            child = Span("step")
            child.elapsed = elapsed
            parent.children.append(child)
        assert parent.self_time() == pytest.approx(0.5)

    def test_stitched_tree_reports_nonnegative_self_time_everywhere(self):
        from repro.obs.telemetry import worker_payload, stitch_worker_payloads

        reg = MetricsRegistry()
        worker_reg = MetricsRegistry()
        with worker_reg.span("worker") as w:
            pass
        w.elapsed = 5.0  # simulate a long concurrent worker
        payloads = [worker_payload(worker_reg, 0, 1234)] * 3
        with use_registry(reg):
            with reg.span("phase1") as phase:
                stitch_worker_payloads(reg, phase, payloads)
        (root,) = reg.roots
        assert len(root.children) == 3
        for span in root.iter_spans():
            assert span.self_time() >= 0.0
        assert root.self_time() == 0.0  # 15s of children in a ~0s parent
