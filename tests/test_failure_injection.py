"""Failure injection: validators must catch every corrupted structure,
and the query service must degrade per-request, never per-process.

The first half constructs deliberately broken CSR/Lotus structures
(bypassing the builders) and asserts that ``validate()`` rejects each
corruption — the guard rail that keeps downstream algorithms from
silently producing wrong counts.  The second half injects faults into
the serving path: slow builders that blow request deadlines, executors
that crash like a dead worker process, and a real crashed process-pool
worker — in every case the engine must answer the affected requests
with a failure *result* (no hang, no crash) and keep serving afterwards
from an intact cache.
"""

import time

import numpy as np
import pytest

from repro.core import LotusConfig, build_lotus_graph
from repro.graph import complete_graph, erdos_renyi, from_edges
from repro.graph.csr import CSRGraph, OrientedGraph


def _raw(indptr, indices):
    return CSRGraph(
        np.asarray(indptr, dtype=np.int64), np.asarray(indices, dtype=np.uint32)
    )


class TestCSRValidation:
    def test_clean_graph_passes(self, er_small):
        er_small.validate()

    def test_self_loop_detected(self):
        g = _raw([0, 1, 2], [0, 1])  # 0->0 self loop
        with pytest.raises(ValueError, match="self-loop"):
            g.validate()

    def test_asymmetry_detected(self):
        g = _raw([0, 1, 1], [1])  # 0->1 without 1->0
        with pytest.raises(ValueError, match="symmetric|duplicate"):
            g.validate()

    def test_duplicate_edge_detected(self):
        g = _raw([0, 2, 4], [1, 1, 0, 0])
        with pytest.raises(ValueError):
            g.validate()

    def test_unsorted_row_detected(self):
        g = _raw([0, 2, 3, 4], [2, 1, 0, 0])
        with pytest.raises(ValueError, match="sorted"):
            g.validate()

    def test_out_of_range_neighbor_detected(self):
        g = _raw([0, 1, 2], [1, 5])
        with pytest.raises(ValueError, match="range"):
            g.validate()

    def test_bad_indptr_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 5]), np.array([1], dtype=np.uint32))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.uint32))

    def test_float_indices_rejected(self):
        with pytest.raises(TypeError):
            CSRGraph(np.array([0, 1]), np.array([0.5]))


class TestOrientedValidation:
    def test_clean_orientation_passes(self, er_small):
        er_small.orient_lower().validate()

    def test_neighbor_geq_vertex_detected(self):
        og = OrientedGraph(
            np.array([0, 1], dtype=np.int64), np.array([0], dtype=np.uint32)
        )
        with pytest.raises(ValueError, match=">="):
            og.validate()

    def test_unsorted_detected(self):
        og = OrientedGraph(
            np.array([0, 0, 0, 0, 2], dtype=np.int64),
            np.array([2, 1], dtype=np.uint32),
        )
        with pytest.raises(ValueError, match="sorted"):
            og.validate()


class TestLotusValidation:
    def _lotus(self):
        return build_lotus_graph(erdos_renyi(80, 0.1, seed=1), LotusConfig(hub_count=8))

    def test_clean_structure_passes(self):
        self._lotus().validate()

    def test_missing_h2h_bit_detected(self):
        lotus = self._lotus()
        if lotus.h2h.count_set() == 0:
            pytest.skip("no hub-hub edges in this instance")
        # clear one byte that contains set bits
        nz = np.flatnonzero(lotus.h2h.data)[0]
        lotus.h2h.data[nz] = 0
        with pytest.raises(ValueError, match="H2H"):
            lotus.validate()

    def test_extra_h2h_bit_detected(self):
        lotus = self._lotus()
        # find a clear bit and set it
        for byte in range(lotus.h2h.data.size):
            if lotus.h2h.data[byte] != 0xFF and byte * 8 < lotus.h2h.num_bits:
                for bit in range(8):
                    if not (lotus.h2h.data[byte] >> bit) & 1:
                        lotus.h2h.data[byte] |= 1 << bit
                        with pytest.raises(ValueError):
                            lotus.validate()
                        return
        pytest.skip("H2H is full")

    def test_hub_id_in_nhe_detected(self):
        lotus = self._lotus()
        if lotus.nhe.indices.size == 0:
            pytest.skip("no NHE edges")
        lotus.nhe.indices[0] = 0  # hub ID smuggled into NHE
        with pytest.raises(ValueError, match="NHE"):
            lotus.validate()

    def test_nonhub_id_in_he_detected(self):
        lotus = self._lotus()
        if lotus.he.indices.size == 0:
            pytest.skip("no HE edges")
        # overwrite the last HE entry (owned by the highest vertex) with a
        # non-hub ID — must violate the "only hubs in HE" invariant
        lotus.he.indices[-1] = lotus.hub_count
        with pytest.raises(ValueError):
            lotus.validate()

    def test_edge_partition_mismatch_detected(self):
        lotus = self._lotus()
        lotus.num_edges += 1
        with pytest.raises(ValueError, match="partition"):
            lotus.validate()


class TestAlgorithmsRejectGarbageGracefully:
    """Algorithms should produce correct results or fail loudly, never
    return silently wrong counts for *valid* unusual inputs."""

    def test_vertex_count_larger_than_edges_touch(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]), num_vertices=1000)
        from repro.core import count_triangles_lotus
        from repro.tc import count_triangles_forward

        assert count_triangles_forward(g).triangles == 1
        assert count_triangles_lotus(g).triangles == 1

    def test_dense_small_graph(self):
        from repro.core import count_triangles_lotus

        g = complete_graph(30)
        assert count_triangles_lotus(g, LotusConfig(hub_count=2)).triangles == 4060


# --------------------------------------------------------------------------
# serving-path fault injection
# --------------------------------------------------------------------------


@pytest.fixture
def serve_graph():
    return erdos_renyi(150, 0.08, seed=55)


@pytest.fixture
def serve_oracle(serve_graph):
    from repro.tc import count_triangles_forward

    return count_triangles_forward(serve_graph).triangles


class TestServeDeadlineExpiry:
    """A deadline expiring mid-dispatch yields a timeout *result* — the
    request never hangs and never occupies the backend."""

    def test_deadline_blown_by_slow_build(self, serve_graph, serve_oracle):
        from repro.serve import QueryEngine, QueryRequest, StructureCache

        def slow_builder(graph, config):
            time.sleep(0.3)
            return build_lotus_graph(graph, config)

        engine = QueryEngine(StructureCache(), builder=slow_builder)
        with engine:
            doomed = engine.query(
                QueryRequest(graph=serve_graph, timeout=0.05), wait_timeout=30
            )
            assert doomed.status == "timeout"
            assert "deadline expired" in doomed.error
            # the build completed and was cached: the engine still serves
            ok = engine.query(QueryRequest(graph=serve_graph), wait_timeout=30)
            assert ok.ok and ok.triangles == serve_oracle
            assert ok.cache == "hit"

    def test_deadline_expired_while_queued(self, serve_graph):
        from repro.serve import QueryEngine, QueryRequest, StructureCache

        engine = QueryEngine(StructureCache())  # not started: requests sit
        ticket = engine.submit(QueryRequest(graph=serve_graph, timeout=0.01))
        time.sleep(0.05)
        engine.start()
        result = ticket.result(timeout=30)
        engine.stop()
        assert result.status == "timeout"
        assert "queue" in result.error


class TestServeWorkerCrash:
    """A crashed worker fails only the batch it was computing; the cache
    entry survives and later queries succeed."""

    def test_injected_crash_fails_only_affected_batch(
        self, serve_graph, serve_oracle
    ):
        from repro.parallel.procpool import WorkerCrashError
        from repro.serve import QueryEngine, QueryRequest, StructureCache
        from repro.serve.engine import _default_executor

        crashes = {"armed": True}

        def crashing_executor(entry, request, backend, workers):
            if crashes["armed"]:
                crashes["armed"] = False
                raise WorkerCrashError("worker(s) [0] died", {0: 23})
            return _default_executor(entry, request, backend, workers)

        other = erdos_renyi(100, 0.1, seed=66)
        with QueryEngine(
            StructureCache(), executor=crashing_executor, max_batch=8
        ) as engine:
            # first query hits the armed crash
            crashed = engine.query(QueryRequest(graph=serve_graph), wait_timeout=30)
            assert crashed.status == "error"
            assert "WorkerCrashError" in crashed.error
            # a different graph is unaffected
            ok_other = engine.query(QueryRequest(graph=other), wait_timeout=30)
            assert ok_other.ok
            # the crashed graph's cache entry survived: warm hit, correct count
            retried = engine.query(QueryRequest(graph=serve_graph), wait_timeout=30)
            assert retried.ok and retried.triangles == serve_oracle
            assert retried.cache == "hit"

    def test_crash_isolated_to_its_computation_group(self, serve_graph):
        """Two computations coalesced from one micro-batch: the crashing
        one fails its peers, the other completes."""
        from repro.parallel.procpool import WorkerCrashError
        from repro.serve import QueryEngine, QueryRequest, StructureCache
        from repro.serve.engine import _default_executor

        def executor(entry, request, backend, workers):
            if request.algorithm == "lotus":
                raise WorkerCrashError("worker(s) [1] died", {1: 23})
            return _default_executor(entry, request, backend, workers)

        engine = QueryEngine(StructureCache(), executor=executor, max_batch=8)
        t_lotus = engine.submit(QueryRequest(graph=serve_graph, algorithm="lotus"))
        t_fwd = engine.submit(QueryRequest(graph=serve_graph, algorithm="forward"))
        engine.start()
        r_lotus = t_lotus.result(timeout=30)
        r_fwd = t_fwd.result(timeout=30)
        engine.stop()
        assert r_lotus.status == "error" and "WorkerCrashError" in r_lotus.error
        assert r_fwd.ok

    def test_real_process_worker_crash_surfaces(self):
        """End-to-end: a genuinely killed worker process raises
        WorkerCrashError through run_phase1, and both shared segments are
        unlinked (no leak)."""
        from repro.parallel.backend import run_phase1
        from repro.parallel.procpool import WorkerCrashError

        lotus = build_lotus_graph(erdos_renyi(200, 0.1, seed=9))
        with pytest.raises(WorkerCrashError):
            run_phase1(lotus, backend="processes", workers=2, fault_worker=0)

    def test_real_crash_spares_borrowed_segment(self):
        """With a lent manifest (the serving cache's segment), a worker
        crash must NOT unlink the borrowed segment — the cache still owns
        a usable structure afterwards."""
        from repro.parallel.backend import run_phase1
        from repro.parallel.procpool import WorkerCrashError
        from repro.serve import StructureCache

        graph = erdos_renyi(200, 0.1, seed=9)
        with StructureCache(share=True) as cache:
            entry, _ = cache.get_or_build(graph)
            with pytest.raises(WorkerCrashError):
                run_phase1(
                    entry.lotus,
                    backend="processes",
                    workers=2,
                    fault_worker=0,
                    graph_manifest=entry.manifest,
                )
            # the segment survived the crash: a clean dispatch still works
            hhh, hhn = run_phase1(
                entry.lotus,
                backend="processes",
                workers=2,
                graph_manifest=entry.manifest,
            )
            from repro.core.count import count_hhh_hhn

            assert (hhh, hhn) == count_hhh_hhn(entry.lotus)
