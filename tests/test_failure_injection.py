"""Failure injection: validators must catch every corrupted structure.

These tests construct deliberately broken CSR/Lotus structures (bypassing
the builders) and assert that ``validate()`` rejects each corruption —
the guard rail that keeps downstream algorithms from silently producing
wrong counts.
"""

import numpy as np
import pytest

from repro.core import LotusConfig, build_lotus_graph
from repro.graph import complete_graph, erdos_renyi, from_edges
from repro.graph.csr import CSRGraph, OrientedGraph


def _raw(indptr, indices):
    return CSRGraph(
        np.asarray(indptr, dtype=np.int64), np.asarray(indices, dtype=np.uint32)
    )


class TestCSRValidation:
    def test_clean_graph_passes(self, er_small):
        er_small.validate()

    def test_self_loop_detected(self):
        g = _raw([0, 1, 2], [0, 1])  # 0->0 self loop
        with pytest.raises(ValueError, match="self-loop"):
            g.validate()

    def test_asymmetry_detected(self):
        g = _raw([0, 1, 1], [1])  # 0->1 without 1->0
        with pytest.raises(ValueError, match="symmetric|duplicate"):
            g.validate()

    def test_duplicate_edge_detected(self):
        g = _raw([0, 2, 4], [1, 1, 0, 0])
        with pytest.raises(ValueError):
            g.validate()

    def test_unsorted_row_detected(self):
        g = _raw([0, 2, 3, 4], [2, 1, 0, 0])
        with pytest.raises(ValueError, match="sorted"):
            g.validate()

    def test_out_of_range_neighbor_detected(self):
        g = _raw([0, 1, 2], [1, 5])
        with pytest.raises(ValueError, match="range"):
            g.validate()

    def test_bad_indptr_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 5]), np.array([1], dtype=np.uint32))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.uint32))

    def test_float_indices_rejected(self):
        with pytest.raises(TypeError):
            CSRGraph(np.array([0, 1]), np.array([0.5]))


class TestOrientedValidation:
    def test_clean_orientation_passes(self, er_small):
        er_small.orient_lower().validate()

    def test_neighbor_geq_vertex_detected(self):
        og = OrientedGraph(
            np.array([0, 1], dtype=np.int64), np.array([0], dtype=np.uint32)
        )
        with pytest.raises(ValueError, match=">="):
            og.validate()

    def test_unsorted_detected(self):
        og = OrientedGraph(
            np.array([0, 0, 0, 0, 2], dtype=np.int64),
            np.array([2, 1], dtype=np.uint32),
        )
        with pytest.raises(ValueError, match="sorted"):
            og.validate()


class TestLotusValidation:
    def _lotus(self):
        return build_lotus_graph(erdos_renyi(80, 0.1, seed=1), LotusConfig(hub_count=8))

    def test_clean_structure_passes(self):
        self._lotus().validate()

    def test_missing_h2h_bit_detected(self):
        lotus = self._lotus()
        if lotus.h2h.count_set() == 0:
            pytest.skip("no hub-hub edges in this instance")
        # clear one byte that contains set bits
        nz = np.flatnonzero(lotus.h2h.data)[0]
        lotus.h2h.data[nz] = 0
        with pytest.raises(ValueError, match="H2H"):
            lotus.validate()

    def test_extra_h2h_bit_detected(self):
        lotus = self._lotus()
        # find a clear bit and set it
        for byte in range(lotus.h2h.data.size):
            if lotus.h2h.data[byte] != 0xFF and byte * 8 < lotus.h2h.num_bits:
                for bit in range(8):
                    if not (lotus.h2h.data[byte] >> bit) & 1:
                        lotus.h2h.data[byte] |= 1 << bit
                        with pytest.raises(ValueError):
                            lotus.validate()
                        return
        pytest.skip("H2H is full")

    def test_hub_id_in_nhe_detected(self):
        lotus = self._lotus()
        if lotus.nhe.indices.size == 0:
            pytest.skip("no NHE edges")
        lotus.nhe.indices[0] = 0  # hub ID smuggled into NHE
        with pytest.raises(ValueError, match="NHE"):
            lotus.validate()

    def test_nonhub_id_in_he_detected(self):
        lotus = self._lotus()
        if lotus.he.indices.size == 0:
            pytest.skip("no HE edges")
        # overwrite the last HE entry (owned by the highest vertex) with a
        # non-hub ID — must violate the "only hubs in HE" invariant
        lotus.he.indices[-1] = lotus.hub_count
        with pytest.raises(ValueError):
            lotus.validate()

    def test_edge_partition_mismatch_detected(self):
        lotus = self._lotus()
        lotus.num_edges += 1
        with pytest.raises(ValueError, match="partition"):
            lotus.validate()


class TestAlgorithmsRejectGarbageGracefully:
    """Algorithms should produce correct results or fail loudly, never
    return silently wrong counts for *valid* unusual inputs."""

    def test_vertex_count_larger_than_edges_touch(self):
        g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]), num_vertices=1000)
        from repro.core import count_triangles_lotus
        from repro.tc import count_triangles_forward

        assert count_triangles_forward(g).triangles == 1
        assert count_triangles_lotus(g).triangles == 1

    def test_dense_small_graph(self):
        from repro.core import count_triangles_lotus

        g = complete_graph(30)
        assert count_triangles_lotus(g, LotusConfig(hub_count=2)).triangles == 4060
