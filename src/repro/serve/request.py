"""Request / response records of the query service.

A :class:`QueryRequest` names a graph (dataset registry entry, edge-list
file, or an in-process :class:`~repro.graph.csr.CSRGraph`), an algorithm,
and an optional per-request deadline.  A :class:`QueryResult` carries the
answer plus the serving telemetry a client needs to reason about the
request's fate: which cache outcome it saw, how large its micro-batch
was, and how long it waited in the queue versus executing.

``status`` is a closed enum:

* ``ok``        — the query ran and ``triangles`` is valid;
* ``timeout``   — the deadline expired before or during dispatch;
* ``cancelled`` — the client cancelled the ticket before dispatch;
* ``error``     — the query failed (bad input, worker crash, ...);
* ``stopped``   — the engine shut down before the query ran.

The JSON projection (:meth:`QueryResult.to_json_dict`) has a **stable
field order** — the golden CLI tests snapshot it, and scripting clients
may rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph

__all__ = [
    "ServeError",
    "QueueFullError",
    "EngineStoppedError",
    "QueryRequest",
    "QueryResult",
    "result_fields",
    "RESULT_FIELDS",
    "UPDATE_FIELDS",
    "ERROR_FIELDS",
    "KNOWN_OPS",
    "UPDATE_OPS",
]


class ServeError(Exception):
    """Base class of query-service errors."""


class QueueFullError(ServeError):
    """Admission control rejected the request: the queue is at capacity."""


class EngineStoppedError(ServeError):
    """The engine is not accepting requests (stopped or never started)."""


# ops the engine understands; "stats" is answered by the CLI loop itself
KNOWN_OPS = ("count", "insert", "delete", "compact")

# ops that mutate the named graph's dynamic session (docs/dynamic.md)
UPDATE_OPS = ("insert", "delete", "compact")


@dataclass
class QueryRequest:
    """One triangle-count query against the service.

    Exactly one of ``dataset`` / ``file`` / ``graph`` names the input.
    ``hub_count`` is part of the *build config* (it changes the Lotus
    structure, hence the cache key); ``backend`` / ``workers`` only
    change execution and never the cache key.  ``timeout`` is a
    per-request deadline in seconds, measured from submission.
    """

    dataset: str | None = None
    file: str | None = None
    graph: "CSRGraph | None" = None
    op: str = "count"
    algorithm: str = "lotus"
    hub_count: int | None = None
    backend: str | None = None
    workers: int | None = None
    timeout: float | None = None
    id: str | None = None
    edges: Any = None  # (m, 2) edge list for insert / delete ops

    def validate(self) -> None:
        if self.op not in KNOWN_OPS:
            raise ValueError(f"unknown op {self.op!r}; one of {KNOWN_OPS}")
        sources = sum(x is not None for x in (self.dataset, self.file, self.graph))
        if sources != 1:
            raise ValueError(
                "exactly one of dataset / file / graph must be given "
                f"(got {sources})"
            )
        if self.op in ("insert", "delete"):
            if self.edges is None or not len(self.edges):
                raise ValueError(f"op {self.op!r} requires a non-empty edges list")
            for pair in self.edges:
                if len(pair) != 2 or not all(
                    isinstance(x, int) and not isinstance(x, bool) for x in pair
                ):
                    raise ValueError(
                        "edges must be a list of [u, v] integer pairs"
                    )
        elif self.edges is not None:
            raise ValueError(f"op {self.op!r} does not accept edges")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")

    def source_label(self) -> str:
        """Human-readable graph source for results and spans."""
        if self.dataset is not None:
            return self.dataset
        if self.file is not None:
            return self.file
        return "<graph>"

    def source_key(self) -> tuple:
        """Hashable identity of the *source* (pre-fingerprint grouping).

        Requests sharing a source key are candidates for the same
        micro-batch; the authoritative cache key is the CSR-byte
        fingerprint computed after the graph is resolved.
        """
        if self.dataset is not None:
            return ("dataset", self.dataset, self.hub_count)
        if self.file is not None:
            return ("file", self.file, self.hub_count)
        return ("graph", id(self.graph), self.hub_count)

    def graph_key(self) -> tuple:
        """Source identity *without* build config — the key of the graph's
        dynamic session.  Updates through any hub_count mutate the same
        underlying graph, so the config must not split sessions."""
        if self.dataset is not None:
            return ("dataset", self.dataset)
        if self.file is not None:
            return ("file", self.file)
        return ("graph", id(self.graph))


# stable JSON field orders (golden-tested; do not reorder)
RESULT_FIELDS = (
    "id", "ok", "op", "status", "dataset", "algorithm", "triangles",
    "cache", "batched", "queued_ms", "elapsed_ms",
)
UPDATE_FIELDS = (
    "id", "ok", "op", "status", "dataset", "version", "applied",
    "rejected", "triangle_delta", "triangles", "queued_ms", "elapsed_ms",
)
ERROR_FIELDS = ("id", "ok", "op", "status", "error")


@dataclass
class QueryResult:
    """Outcome of one query (see module docstring for ``status``)."""

    id: str | None
    op: str
    status: str
    dataset: str | None = None
    algorithm: str | None = None
    triangles: int | None = None
    counts: dict[str, int] | None = None
    cache: str | None = None  # "hit" | "miss" | "eviction" | None
    batched: int = 1
    queued_ms: float = 0.0
    elapsed_ms: float = 0.0
    error: str | None = None
    version: int | None = None  # dynamic-session snapshot version
    applied: int | None = None  # update ops only
    rejected: int | None = None
    triangle_delta: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_dict(self) -> dict[str, Any]:
        """Stable-field-order projection for the JSON-lines protocol."""
        if self.status != "ok":
            return {
                "id": self.id,
                "ok": False,
                "op": self.op,
                "status": self.status,
                "error": self.error or self.status,
            }
        if self.op in UPDATE_OPS:
            return {
                "id": self.id,
                "ok": True,
                "op": self.op,
                "status": self.status,
                "dataset": self.dataset,
                "version": self.version,
                "applied": self.applied,
                "rejected": self.rejected,
                "triangle_delta": self.triangle_delta,
                "triangles": self.triangles,
                "queued_ms": round(self.queued_ms, 3),
                "elapsed_ms": round(self.elapsed_ms, 3),
            }
        out: dict[str, Any] = {
            "id": self.id,
            "ok": True,
            "op": self.op,
            "status": self.status,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "triangles": self.triangles,
            "cache": self.cache,
            "batched": self.batched,
            "queued_ms": round(self.queued_ms, 3),
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        # version appears only for counts served from a dynamic session:
        # static sources keep the exact golden-tested projection
        if self.version is not None:
            out["version"] = self.version
        if self.counts is not None:
            out["counts"] = dict(self.counts)
        return out


def result_fields(result: QueryResult) -> tuple[str, ...]:
    """The field order :meth:`QueryResult.to_json_dict` will emit."""
    if result.status != "ok":
        return ERROR_FIELDS
    if result.op in UPDATE_OPS:
        return UPDATE_FIELDS
    fields = RESULT_FIELDS
    if result.version is not None:
        fields = fields + ("version",)
    if result.counts is not None:
        fields = fields + ("counts",)
    return fields
