"""The structure cache: built CSR/Lotus pairs keyed by graph bytes + config.

The cache key is ``<edge_hash>/<config_hash>``:

* ``edge_hash`` is the run ledger's dataset fingerprint
  (:func:`repro.obs.ledger.dataset_fingerprint`) — a SHA-256 over the
  exact ``indptr`` / ``indices`` bytes, so two queries share an entry iff
  they query the very same graph, regardless of how it was named;
* ``config_hash`` is the ledger's canonical config hash
  (:func:`repro.obs.ledger.config_hash`) over the
  :class:`~repro.core.structure.LotusConfig` fields — a different
  ``hub_count`` builds a different structure and must occupy a
  different entry.

Eviction is LRU under two budgets (resident bytes and entry count).
Every lookup is classified into exactly one of three **disjoint**
outcomes, so the ``serve.cache.hit`` + ``serve.cache.miss`` +
``serve.cache.eviction`` counters sum to the number of lookups:

* ``hit``      — the entry was resident;
* ``miss``     — the entry was built and inserted without evicting;
* ``eviction`` — the entry was built and inserting it evicted at least
  one resident entry (a capacity miss).

``serve.cache.evicted_entries`` separately counts the entries removed
(one insert can evict several).  With ``share=True`` each entry also
holds the Lotus structure's shared-memory segment
(:meth:`LotusGraph.to_shared`), so the process backend can attach
workers zero-copy without re-sharing per dispatch; the cache owns those
segments and unlinks them on eviction / ``clear``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.structure import LotusConfig, LotusGraph, build_lotus_graph
from repro.graph.csr import CSRGraph
from repro.obs import get_registry
from repro.obs.ledger import config_hash, dataset_fingerprint
from repro.util.timer import clock

__all__ = ["CacheEntry", "StructureCache", "structure_key", "DEFAULT_CACHE_BYTES"]

DEFAULT_CACHE_BYTES = 256 << 20
DEFAULT_CACHE_ENTRIES = 8


def structure_key(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    *,
    version: int | None = None,
) -> str:
    """``<edge_hash>/<config_hash>`` cache key for one (graph, config).

    ``version`` tags snapshot entries of a dynamic session
    (``.../<cfg>@v3``).  The fingerprint alone already distinguishes
    snapshots — different versions have different bytes — but the tag
    keeps (fingerprint, version) explicit in the key so entries read as
    snapshot entries in stats and logs, and so a graph that returns to a
    previous byte-identical state still keys the same entry per version.
    """
    config = config or LotusConfig()
    fp = dataset_fingerprint(graph)
    cfg = config_hash(
        {"hub_count": config.hub_count, "head_fraction": config.head_fraction}
    )
    key = f"{fp['edge_hash']}/{cfg}"
    if version is not None:
        key = f"{key}@v{version}"
    return key


def _entry_nbytes(graph: CSRGraph, lotus: LotusGraph) -> int:
    """Resident bytes of one entry: the CSR plus every Lotus array."""
    return int(
        graph.indptr.nbytes
        + graph.indices.nbytes
        + lotus.h2h.data.nbytes
        + lotus.he.indptr.nbytes
        + lotus.he.indices.nbytes
        + lotus.nhe.indptr.nbytes
        + lotus.nhe.indices.nbytes
        + lotus.ra.nbytes
    )


@dataclass
class CacheEntry:
    """One resident structure: the graph, its Lotus build, bookkeeping."""

    key: str
    graph: CSRGraph
    lotus: LotusGraph
    nbytes: int
    dataset: str | None = None
    build_seconds: float = 0.0
    hits: int = 0
    shared: Any = None  # SharedArrays handle when the cache shares segments
    version: int | None = None  # dynamic-session snapshot version
    pins: int = 0  # in-flight queries holding this entry (never evicted)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def manifest(self) -> dict | None:
        """Picklable shared-memory manifest (``None`` unless shared)."""
        return self.shared.manifest if self.shared is not None else None

    def release(self) -> None:
        """Drop the shared segment (idempotent; called on eviction)."""
        if self.shared is not None:
            self.shared.close()
            self.shared.unlink()
            self.shared = None


class StructureCache:
    """Byte-budgeted LRU over built structures.  Thread-safe.

    ``max_bytes`` / ``max_entries`` bound residency; the newest entry is
    never evicted, so a single structure larger than the byte budget
    still serves (it is evicted by the *next* insert).  ``share=True``
    additionally copies each Lotus build into a shared-memory segment for
    zero-copy process-backend dispatch.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        share: bool = False,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self.share = share
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        # internal totals mirror the serve.cache.* registry counters so
        # stats work even when no registry is active
        self.hits = 0
        self.misses = 0
        self.evicting_misses = 0
        self.evicted_entries = 0

    # -- sizing -----------------------------------------------------------
    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    # -- the one entry point ----------------------------------------------
    def get_or_build(
        self,
        graph: CSRGraph,
        config: LotusConfig | None = None,
        *,
        key: str | None = None,
        dataset: str | None = None,
        version: int | None = None,
        builder: Callable[[CSRGraph, LotusConfig | None], LotusGraph] | None = None,
    ) -> tuple[CacheEntry, str]:
        """Return ``(entry, outcome)`` with outcome in hit/miss/eviction.

        ``key`` may be precomputed (:func:`structure_key`) to avoid
        re-hashing the CSR bytes when classifying many requests of one
        micro-batch.  ``builder`` overrides
        :func:`~repro.core.structure.build_lotus_graph` (tests inject
        slow or crashing builders).
        """
        config = config or LotusConfig()
        if key is None:
            key = structure_key(graph, config)
        registry = get_registry()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.hits += 1
                registry.counter("serve.cache.hit").add(1)
                return entry, "hit"

            started = clock()
            build = builder or (lambda g, c: build_lotus_graph(g, c))
            lotus = build(graph, config)
            entry = CacheEntry(
                key=key,
                graph=graph,
                lotus=lotus,
                nbytes=_entry_nbytes(graph, lotus),
                dataset=dataset,
                build_seconds=clock() - started,
                version=version,
            )
            if self.share:
                entry.shared = lotus.to_shared()
            self._entries[key] = entry
            evicted = self._evict_over_budget()
            outcome = "eviction" if evicted else "miss"
            if evicted:
                self.evicting_misses += 1
                registry.counter("serve.cache.eviction").add(1)
            else:
                self.misses += 1
                registry.counter("serve.cache.miss").add(1)
            self._export_gauges(registry)
            return entry, outcome

    def _evict_over_budget(self) -> int:
        """Pop LRU entries until under both budgets; returns count evicted.

        Pinned entries are snapshot versions held by in-flight queries —
        skipping them is what makes reads snapshot-isolated: an update
        can supersede a pinned version but the structure survives until
        the last reader unpins.  The newest entry is likewise never
        evicted (it is the one being served right now).
        """
        registry = get_registry()
        evicted = 0
        total = sum(e.nbytes for e in self._entries.values())
        keys = list(self._entries)  # LRU -> MRU
        for key in keys[:-1]:  # never the newest
            if len(self._entries) <= self.max_entries and total <= self.max_bytes:
                break
            victim = self._entries[key]
            if victim.pins > 0:
                continue
            del self._entries[key]
            total -= victim.nbytes
            victim.release()
            evicted += 1
        if evicted:
            self.evicted_entries += evicted
            registry.counter("serve.cache.evicted_entries").add(evicted)
        return evicted

    # -- snapshot pinning ---------------------------------------------------
    def pin(self, key: str) -> None:
        """Hold ``key`` resident until the matching :meth:`unpin`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.pins += 1

    def unpin(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.pins > 0:
                entry.pins -= 1

    def _export_gauges(self, registry) -> None:
        registry.gauge("serve.cache.bytes").set(
            sum(e.nbytes for e in self._entries.values())
        )
        registry.gauge("serve.cache.entries").set(len(self._entries))

    # -- lifecycle ---------------------------------------------------------
    def clear(self) -> None:
        """Evict everything (releases any shared segments)."""
        with self._lock:
            for entry in self._entries.values():
                entry.release()
            self._entries.clear()
            self._export_gauges(get_registry())

    def stats(self) -> dict[str, Any]:
        """Point-in-time totals (independent of any active registry)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": sum(e.nbytes for e in self._entries.values()),
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evicting_misses": self.evicting_misses,
                "evicted_entries": self.evicted_entries,
            }

    def __enter__(self) -> "StructureCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.clear()
