"""``repro.serve`` — the long-lived in-process triangle-count query engine.

The ROADMAP's north star is a serving system, not a batch pipeline: the
dominant cost of every query is the Section-4 preprocessing (CSR load +
Lotus structure build), and GraphChallenge's serving-oriented
evaluations show that amortizing that construction across repeated
queries is where real deployments win.  This package provides exactly
that amortization:

* :mod:`repro.serve.cache` — a byte-budgeted LRU **structure cache**
  keyed by the run ledger's dataset fingerprint (exact CSR bytes) plus a
  canonical build-config hash, holding the built
  :class:`~repro.graph.csr.CSRGraph` / :class:`~repro.core.structure.LotusGraph`
  pair (and optionally their shared-memory manifests) so repeated
  queries skip construction entirely;
* :mod:`repro.serve.request` — the :class:`QueryRequest` /
  :class:`QueryResult` records and the service error taxonomy
  (admission rejections, deadline expiry, worker crashes);
* :mod:`repro.serve.engine` — :class:`QueryEngine`: a bounded submission
  queue with admission control, per-request deadlines with cooperative
  cancellation, micro-batching that coalesces requests against the same
  structure into one backend dispatch
  (:mod:`repro.parallel.backend`), and a ``serve.*`` metric family
  exported through :mod:`repro.obs.registry`.

Quick start::

    from repro.serve import QueryEngine, QueryRequest

    with QueryEngine() as engine:
        cold = engine.query(QueryRequest(dataset="LJGrp"))   # builds
        warm = engine.query(QueryRequest(dataset="LJGrp"))   # cache hit
    assert warm.cache == "hit" and warm.triangles == cold.triangles

See ``docs/serving.md`` for the architecture, cache-keying rules, and
the JSON-lines protocol of ``repro.cli serve`` / ``repro.cli query``.
"""

from repro.serve.cache import CacheEntry, StructureCache, structure_key
from repro.serve.engine import QueryEngine, QueryTicket
from repro.serve.request import (
    KNOWN_OPS,
    UPDATE_OPS,
    EngineStoppedError,
    QueryRequest,
    QueryResult,
    QueueFullError,
    ServeError,
    result_fields,
)

__all__ = [
    "CacheEntry",
    "EngineStoppedError",
    "KNOWN_OPS",
    "QueryEngine",
    "QueryRequest",
    "QueryResult",
    "QueryTicket",
    "QueueFullError",
    "ServeError",
    "StructureCache",
    "UPDATE_OPS",
    "result_fields",
    "structure_key",
]
