"""The query engine: bounded queue, deadlines, micro-batching, dispatch.

One :class:`QueryEngine` owns

* a **bounded submission queue** — :meth:`submit` enqueues and returns a
  :class:`QueryTicket`; when the queue is at capacity, admission control
  rejects the request with :class:`~repro.serve.request.QueueFullError`
  instead of building unbounded backlog;
* a single **dispatcher thread** — it drains up to ``max_batch`` queued
  requests at a time, groups them by structure key (same graph bytes +
  same build config), resolves each group against the
  :class:`~repro.serve.cache.StructureCache` exactly once per request
  (so the ``serve.cache.*`` counters sum to the request count), and runs
  each *distinct* computation of a group once, fanning the answer out to
  every coalesced request;
* **deadlines with cooperative cancellation** — each request's
  ``timeout`` fixes a deadline at submission; the dispatcher checks it
  before building, after building, and before computing, so an expired
  request gets a ``timeout`` result instead of occupying the backend
  (and a client may :meth:`QueryTicket.cancel` a queued request);
* **backend dispatch** — lotus queries run through
  :mod:`repro.parallel.backend`; with a shared-structure cache
  (``share=True``) the process backend reuses the entry's
  shared-memory manifest instead of re-copying the structure per batch.

Failure isolation: an exception inside one computation (including
:class:`~repro.parallel.procpool.WorkerCrashError` from a crashed
worker process) fails only the requests coalesced onto that
computation; the cache entry stays resident and the engine keeps
serving.

The ``serve.*`` metric family (exported through the active
:class:`~repro.obs.registry.MetricsRegistry`):

===============================  ==========  =================================
``serve.cache.hit/miss/eviction``  counter   disjoint per-request cache outcome
``serve.cache.evicted_entries``    counter   entries removed by LRU pressure
``serve.cache.bytes/entries``      gauge     cache residency
``serve.requests.submitted``       counter   admitted requests
``serve.requests.rejected``        counter   admission-control rejections
``serve.requests.completed``       counter   ``ok`` results
``serve.requests.timeout``         counter   deadline expiries
``serve.requests.cancelled``       counter   client cancellations
``serve.requests.failed``          counter   errors (incl. worker crashes)
``serve.requests.stopped``         counter   drained at shutdown
``serve.queue.depth``              gauge     submission-queue depth
``serve.batches.dispatched``       counter   micro-batches executed
``serve.batch.coalesced``          counter   requests served by another's run
``serve.batch.size``               histogram micro-batch sizes
``serve.latency_seconds``          histogram submit-to-result latency
===============================  ==========  =================================

**Dynamic graphs.**  ``insert`` / ``delete`` / ``compact`` ops open a
per-source :class:`~repro.dynamic.graph.DynamicGraph` session on first
use; later counts against that source are served from the session's
current *snapshot* — an immutable versioned CSR cached under a
``(fingerprint, version)``-tagged structure key, pinned while any
in-flight query reads it (updates supersede snapshots, never invalidate
a pinned one).  The ``maintained`` pseudo-algorithm answers straight
from the session's incrementally-maintained count without touching the
cache.  See docs/dynamic.md.

When a :class:`~repro.obs.telemetry.TelemetryBus` is active the engine
also streams events *during* the session: every counter increment is
mirrored as a ``counter`` event, and any request whose submit-to-result
latency exceeds ``slow_query_s`` emits a ``slow_query`` event with its
id, source, cache outcome and latency (docs/observability.md, "Live
telemetry").
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from typing import Any, Callable

from repro.core.count import lotus_count_from_structure
from repro.core.structure import LotusConfig
from repro.obs import get_registry
from repro.obs.telemetry import get_bus
from repro.serve.cache import CacheEntry, StructureCache, structure_key
from repro.serve.request import (
    UPDATE_OPS,
    EngineStoppedError,
    QueryRequest,
    QueryResult,
    QueueFullError,
)
from repro.util.timer import clock

__all__ = ["QueryEngine", "QueryTicket", "LATENCY_BUCKETS", "BATCH_BUCKETS"]

# submit-to-result latency in seconds: 0.1 ms .. ~52 s, geometric
LATENCY_BUCKETS = tuple(1e-4 * 2**i for i in range(20))
BATCH_BUCKETS = tuple(float(1 << i) for i in range(8))


class QueryTicket:
    """Handle for one submitted request; resolves to a :class:`QueryResult`."""

    def __init__(self, request: QueryRequest, deadline: float | None) -> None:
        self.request = request
        self.submitted = clock()
        self.dispatched: float | None = None
        self.deadline = deadline
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._result: QueryResult | None = None

    def cancel(self) -> None:
        """Cooperatively cancel a queued request (no-op once dispatched)."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else clock()) >= self.deadline

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the result is ready.

        ``timeout`` bounds the *wait*, not the query — it raises
        :class:`TimeoutError` without affecting the in-flight request
        (use the request's own ``timeout`` for a service-side deadline).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"no result after {timeout}s for request {self.request.id!r}"
            )
        assert self._result is not None
        return self._result

    # called by the dispatcher only
    def _finish(self, result: QueryResult) -> None:
        result.queued_ms = result.queued_ms or 0.0
        self._result = result
        self._done.set()


class QueryEngine:
    """Long-lived in-process triangle-count query service.

    ``backend`` / ``workers`` are the default execution backend for
    lotus queries (per-request overrides win).  ``builder`` and
    ``executor`` are injection points for tests (slow builds, crashing
    workers); production callers leave them ``None``.
    """

    def __init__(
        self,
        cache: StructureCache | None = None,
        *,
        max_queue: int = 64,
        max_batch: int = 8,
        backend: str | None = None,
        workers: int | None = None,
        default_timeout: float | None = None,
        builder: Callable | None = None,
        executor: Callable[[CacheEntry, QueryRequest, str | None, int | None], dict] | None = None,
        slow_query_s: float | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if slow_query_s is not None and slow_query_s <= 0:
            raise ValueError("slow_query_s must be positive")
        self.slow_query_s = slow_query_s
        self.cache = cache if cache is not None else StructureCache()
        self.max_batch = max_batch
        self.backend = backend
        self.workers = workers
        self.default_timeout = default_timeout
        self._builder = builder
        self._executor = executor or _default_executor
        self._queue: "queue_mod.Queue[QueryTicket]" = queue_mod.Queue(maxsize=max_queue)
        self._stop = threading.Event()
        self._stopped = False
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # graph-source memo: avoids re-reading edge-list files per request
        self._sources: dict[tuple, Any] = {}
        # dynamic sessions by graph_key(); dispatcher-thread-only, so the
        # order of updates vs. snapshot reads is the dispatch order
        self._dynamic: dict[tuple, Any] = {}

    # -- telemetry ---------------------------------------------------------
    @staticmethod
    def _count(registry: Any, name: str, amount: int = 1) -> None:
        """Increment a counter and mirror it onto the live event bus."""
        registry.counter(name).add(amount)
        bus = get_bus()
        if bus.enabled:
            bus.emit({"event": "counter", "name": name, "value": amount})

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "QueryEngine":
        with self._lock:
            if self._stopped:
                raise EngineStoppedError("engine already stopped")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop, name="repro-serve", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop accepting requests, finish in-flight work, drain the rest."""
        with self._lock:
            self._stopped = True
            thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout)
        self._drain_stopped()

    def __enter__(self) -> "QueryEngine":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- submission --------------------------------------------------------
    def submit(self, request: QueryRequest) -> QueryTicket:
        """Admit one request; returns its ticket.

        Raises :class:`QueueFullError` when the queue is at capacity and
        :class:`EngineStoppedError` after :meth:`stop`.  Submitting
        before :meth:`start` is allowed — requests queue up and dispatch
        together once the engine starts (tests use this to force
        deterministic micro-batches).
        """
        if self._stopped:
            raise EngineStoppedError("engine is stopped")
        request.validate()
        registry = get_registry()
        timeout = request.timeout if request.timeout is not None else self.default_timeout
        ticket = QueryTicket(
            request, deadline=(clock() + timeout) if timeout is not None else None
        )
        try:
            self._queue.put_nowait(ticket)
        except queue_mod.Full:
            self._count(registry, "serve.requests.rejected")
            raise QueueFullError(
                f"queue full ({self._queue.maxsize} requests); retry later"
            ) from None
        self._count(registry, "serve.requests.submitted")
        registry.gauge("serve.queue.depth").set(self._queue.qsize())
        return ticket

    def query(
        self, request: QueryRequest, wait_timeout: float | None = None
    ) -> QueryResult:
        """Submit and wait (auto-starting the dispatcher)."""
        self.start()
        return self.submit(request).result(wait_timeout)

    def stats(self) -> dict[str, Any]:
        """Cache + queue totals, independent of any active registry."""
        stats = self.cache.stats()
        stats["queue_depth"] = self._queue.qsize()
        stats["running"] = self._thread is not None and self._thread.is_alive()
        stats["dynamic_sessions"] = len(self._dynamic)
        return stats

    # -- the dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue_mod.Empty:
                continue
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except queue_mod.Empty:
                    break
            get_registry().gauge("serve.queue.depth").set(self._queue.qsize())
            # group by structure identity, preserving arrival order
            groups: dict[tuple, list[QueryTicket]] = {}
            for ticket in batch:
                groups.setdefault(ticket.request.source_key(), []).append(ticket)
            for tickets in groups.values():
                try:
                    self._process_group(tickets)
                except Exception as exc:  # defensive: never kill the loop
                    self._fail_tickets(tickets, f"internal error: {exc}")

    def _process_group(self, tickets: list[QueryTicket]) -> None:
        now = clock()
        live: list[QueryTicket] = []
        for t in tickets:
            t.dispatched = now
            if t.done():
                continue
            if t.cancelled:
                self._finish(t, "cancelled", error="cancelled by client")
            elif t.expired():
                self._finish(t, "timeout", error="deadline expired in queue")
            else:
                live.append(t)
        if not live:
            return
        # split into ordered segments: consecutive counts coalesce into
        # one micro-batch; every update runs alone, in arrival order, so
        # a count submitted after an update observes its version (and a
        # count submitted before it keeps the pre-update snapshot)
        counts: list[QueryTicket] = []
        for t in live:
            if t.request.op in UPDATE_OPS:
                if counts:
                    self._process_counts(counts)
                    counts = []
                self._process_update(t)
            else:
                counts.append(t)
        if counts:
            self._process_counts(counts)

    def _process_counts(self, live: list[QueryTicket]) -> None:
        registry = get_registry()
        request0 = live[0].request
        try:
            graph = self._resolve_graph(request0)
        except Exception as exc:
            self._fail_tickets(live, str(exc))
            return
        # a graph with a dynamic session is served from its current
        # snapshot: an immutable versioned CSR that later updates
        # supersede but never mutate (snapshot-isolated reads)
        session = self._dynamic.get(request0.graph_key())
        version: int | None = None
        if session is not None:
            snap = session.snapshot()
            graph = snap.graph
            version = snap.version
        config = (
            LotusConfig(hub_count=request0.hub_count)
            if request0.hub_count
            else LotusConfig()
        )

        # the maintained count is read straight off the session — no
        # structure, no cache lookup (so it does not take part in the
        # hit/miss/eviction partition over cache lookups)
        maintained = [t for t in live if t.request.algorithm == "maintained"]
        if maintained:
            live = [t for t in live if t.request.algorithm != "maintained"]
            if session is None:
                self._fail_tickets(
                    maintained,
                    "algorithm 'maintained' requires a dynamic session "
                    "(no updates applied to this graph yet)",
                )
            else:
                for t in maintained:
                    self._finish(
                        t,
                        "ok",
                        payload={"triangles": snap.triangles, "version": version},
                        batched=len(maintained),
                    )
            if not live:
                return
            request0 = live[0].request
        key = structure_key(graph, config, version=version)

        with registry.span(
            "serve:dispatch", source=request0.source_label(), batch=len(live)
        ) as dispatch_span:
            self._count(registry, "serve.batches.dispatched")
            registry.histogram("serve.batch.size", BATCH_BUCKETS).observe(len(live))

            # classify every live request against the cache; the first
            # classification builds (the others are hits by construction)
            outcomes: dict[int, str] = {}
            entry: CacheEntry | None = None
            for t in live:
                if entry is not None:
                    _, outcome = self.cache.get_or_build(
                        graph, config, key=key, dataset=request0.dataset,
                        version=version,
                    )
                    outcomes[id(t)] = outcome
                    continue
                try:
                    entry, outcome = self.cache.get_or_build(
                        graph,
                        config,
                        key=key,
                        dataset=request0.dataset,
                        version=version,
                        builder=self._builder,
                    )
                    outcomes[id(t)] = outcome
                except Exception as exc:
                    self._fail_tickets(live, f"structure build failed: {exc}")
                    return
            assert entry is not None
            dispatch_span.set("cache", outcomes[id(live[0])])

            # the build may have consumed a request's whole deadline
            still_live = []
            for t in live:
                if t.cancelled:
                    self._finish(t, "cancelled", error="cancelled by client")
                elif t.expired():
                    self._finish(
                        t, "timeout", error="deadline expired during dispatch"
                    )
                else:
                    still_live.append(t)

            # pin the snapshot entry while computing: a superseding
            # update may trigger evictions, but never of a version an
            # in-flight query is still reading
            self.cache.pin(key)
            try:
                # one run per distinct computation; fan out to coalesced peers
                computations: dict[tuple, list[QueryTicket]] = {}
                for t in still_live:
                    r = t.request
                    sig = (r.algorithm, r.backend or self.backend, r.workers or self.workers)
                    computations.setdefault(sig, []).append(t)
                for (algorithm, backend, workers), peers in computations.items():
                    try:
                        payload = self._executor(entry, peers[0].request, backend, workers)
                    except Exception as exc:
                        self._fail_tickets(peers, f"{type(exc).__name__}: {exc}")
                        continue
                    if version is not None:
                        payload = dict(payload)
                        payload["version"] = version
                    if len(peers) > 1:
                        self._count(registry, "serve.batch.coalesced", len(peers) - 1)
                    for t in peers:
                        self._finish(
                            t,
                            "ok",
                            payload=payload,
                            cache=outcomes[id(t)],
                            batched=len(peers),
                        )
            finally:
                self.cache.unpin(key)

    # -- update ops --------------------------------------------------------
    def _process_update(self, ticket: QueryTicket) -> None:
        """Apply one insert / delete / compact to the graph's dynamic session.

        The first update against a source lazily opens its session: the
        resolved graph becomes the version-0 base and its triangle count
        is established once (by a full forward count) so every later
        delta is exact.  Updates never touch resident cache entries —
        the next count simply keys a new snapshot version.
        """
        import numpy as np

        request = ticket.request
        try:
            session = self._dynamic.get(request.graph_key())
            if session is None:
                from repro.dynamic import DynamicGraph

                graph = self._resolve_graph(request)
                session = DynamicGraph(graph)
                self._dynamic[request.graph_key()] = session
            if request.op == "compact":
                folded = session.compact()
                payload = {
                    "version": session.version,
                    "applied": folded,
                    "rejected": 0,
                    "triangle_delta": 0,
                    "triangles": session.triangles,
                }
            else:
                edges = np.asarray(request.edges, dtype=np.int64)
                outcome = (
                    session.insert_edges(edges)
                    if request.op == "insert"
                    else session.delete_edges(edges)
                )
                payload = {
                    "version": outcome.version,
                    "applied": outcome.applied,
                    "rejected": outcome.rejected,
                    "triangle_delta": outcome.triangle_delta,
                    "triangles": outcome.triangles,
                }
        except Exception as exc:
            self._finish(ticket, "error", error=f"{type(exc).__name__}: {exc}")
            return
        self._finish(ticket, "ok", payload=payload)

    # -- result plumbing ---------------------------------------------------
    def _finish(
        self,
        ticket: QueryTicket,
        status: str,
        *,
        payload: dict | None = None,
        cache: str | None = None,
        batched: int = 1,
        error: str | None = None,
    ) -> None:
        registry = get_registry()
        now = clock()
        latency = now - ticket.submitted
        queued = (ticket.dispatched or now) - ticket.submitted
        request = ticket.request
        result = QueryResult(
            id=request.id,
            op=request.op,
            status=status,
            dataset=request.source_label(),
            algorithm=request.algorithm,
            cache=cache,
            batched=batched,
            queued_ms=queued * 1e3,
            elapsed_ms=latency * 1e3,
            error=error,
        )
        if payload is not None:
            result.triangles = payload.get("triangles")
            result.counts = payload.get("counts")
            result.version = payload.get("version")
            result.applied = payload.get("applied")
            result.rejected = payload.get("rejected")
            result.triangle_delta = payload.get("triangle_delta")
            claimed = (
                "triangles", "counts", "version", "applied", "rejected",
                "triangle_delta",
            )
            result.extra = {
                k: v for k, v in payload.items() if k not in claimed
            }
        counter = {
            "ok": "serve.requests.completed",
            "timeout": "serve.requests.timeout",
            "cancelled": "serve.requests.cancelled",
            "stopped": "serve.requests.stopped",
        }.get(status, "serve.requests.failed")
        self._count(registry, counter)
        registry.histogram("serve.latency_seconds", LATENCY_BUCKETS).observe(latency)
        bus = get_bus()
        if (
            bus.enabled
            and self.slow_query_s is not None
            and latency > self.slow_query_s
        ):
            bus.emit({
                "event": "slow_query",
                "id": request.id,
                "source": request.source_label(),
                "algorithm": request.algorithm,
                "status": status,
                "cache": cache,
                "latency_ms": round(latency * 1e3, 3),
                "threshold_ms": round(self.slow_query_s * 1e3, 3),
            })
        with registry.span(
            "serve:query",
            source=request.source_label(),
            algorithm=request.algorithm,
            status=status,
            cache=cache,
            latency_ms=round(latency * 1e3, 3),
        ):
            pass
        ticket._finish(result)

    def _fail_tickets(self, tickets: list[QueryTicket], message: str) -> None:
        for t in tickets:
            if not t.done():
                self._finish(t, "error", error=message)

    def _drain_stopped(self) -> None:
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue_mod.Empty:
                return
            if not ticket.done():
                self._finish(ticket, "stopped", error="engine stopped")

    # -- graph resolution --------------------------------------------------
    def _resolve_graph(self, request: QueryRequest):
        if request.graph is not None:
            return request.graph
        if request.dataset is not None:
            from repro.graph import DATASETS, load_dataset

            if request.dataset not in DATASETS:
                raise ValueError(
                    f"unknown dataset {request.dataset!r}; see `repro datasets`"
                )
            return load_dataset(request.dataset)  # lru-cached by the registry
        path = request.file
        assert path is not None
        try:
            stat = os.stat(path)
        except OSError as exc:
            raise ValueError(f"no such file: {path}") from exc
        memo_key = ("file", os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
        graph = self._sources.get(memo_key)
        if graph is None:
            from repro.graph import load_edgelist, load_npz

            loader = load_npz if path.endswith(".npz") else load_edgelist
            try:
                graph = loader(path)
            except Exception as exc:
                raise ValueError(f"cannot load graph from {path}: {exc}") from exc
            self._sources[memo_key] = graph
        return graph


def _default_executor(
    entry: CacheEntry,
    request: QueryRequest,
    backend: str | None,
    workers: int | None,
) -> dict:
    """Run one computation against a cached structure.

    Lotus queries reuse the prebuilt :class:`LotusGraph` (and, when the
    cache shares segments, hand the process backend the existing
    shared-memory manifest); every other algorithm runs on the cached
    CSR.  Returns a plain payload dict so coalesced requests can share
    one execution.

    ``backend == "distributed"`` dispatches the cached graph to the
    sharded runtime (``workers`` shards) with the request's timeout as
    the per-shard deadline.  A :class:`~repro.dist.runtime.ShardFailedError`
    (or deadline ``TimeoutError``) propagates to the engine's per-
    computation error handling, failing only the requests batched onto
    this computation — the cached structure stays resident and other
    computations are untouched.
    """
    if request.algorithm == "lotus":
        if backend == "distributed":
            from repro.dist.runtime import run_distributed_count

            run = run_distributed_count(
                entry.graph,
                config=entry.lotus.config,
                shards=workers or 2,
                deadline_s=request.timeout,
            )
            counts = run.counts
        else:
            counts = lotus_count_from_structure(
                entry.lotus,
                backend=backend,
                workers=workers,
                graph_manifest=entry.manifest,
            )
        return {
            "triangles": counts.total,
            "counts": {
                "hhh": counts.hhh,
                "hhn": counts.hhn,
                "hnn": counts.hnn,
                "nnn": counts.nnn,
            },
        }
    from repro.tc import (
        count_triangles_block,
        count_triangles_edge_iterator,
        count_triangles_forward,
        count_triangles_forward_hashed,
        count_triangles_node_iterator,
    )

    algorithms = {
        "forward": count_triangles_forward,
        "forward-hashed": count_triangles_forward_hashed,
        "edge-iterator": count_triangles_edge_iterator,
        "node-iterator": count_triangles_node_iterator,
        "block": count_triangles_block,
    }
    fn = algorithms.get(request.algorithm)
    if fn is None:
        raise ValueError(
            f"unknown algorithm {request.algorithm!r}; "
            f"one of {['lotus', *sorted(algorithms)]}"
        )
    result = fn(entry.graph)
    return {"triangles": int(result.triangles), "counts": None}
