"""Address-trace builders for the Forward and LOTUS algorithms.

Each builder reconstructs the cache-line access stream of one algorithm
(or one LOTUS phase) over a concrete :class:`~repro.memsim.layout.MemoryLayout`,
for replay through :class:`~repro.memsim.hierarchy.MemoryHierarchy`.

The trace granularity is the cache line: sequentially streamed data (a
vertex's own neighbour list) appears as runs of consecutive lines, while
random accesses (the other endpoint's list, or H2H bits) appear as jumps
— exactly the access-pattern distinction Table 2 draws.  Merge joins
touch only the prefix of each list bounded by the other list's maximum
(the :func:`repro.tc.intersect.merge_join_touched` rule), so hub lists
are only partially read, as in the real algorithm.

Implementation note: traces are assembled fully vectorised.  For each
vertex we emit S "stream" segments followed by one segment per arc; the
position of every segment in the final order has the closed form
``stream s of v -> arc_indptr[v] + S*v + s`` and
``arc i (owned by v) -> i + S*(v + 1)``, so a single
:func:`~repro.util.arrays.concat_ranges` materialises the whole trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.structure import LotusGraph
from repro.graph.csr import OrientedGraph
from repro.memsim.layout import MemoryLayout, Region
from repro.memsim.regions import (
    LINE_BYTES,
    REGION_H2H,
    REGION_HE,
    REGION_INDICES,
    REGION_NHE,
)
from repro.util.arrays import concat_ranges, rows_searchsorted

__all__ = [
    "lotus_layout",
    "forward_layout",
    "forward_trace",
    "lotus_phase1_trace",
    "lotus_phase2_trace",
    "lotus_phase3_trace",
    "lotus_trace",
    "h2h_access_lines",
]


def _interleave(
    stream_starts: list[np.ndarray],
    stream_lens: list[np.ndarray],
    arc_indptr: np.ndarray,
    arc_starts: np.ndarray,
    arc_lens: np.ndarray,
) -> np.ndarray:
    """Merge per-vertex stream segments and per-arc segments into one trace.

    ``stream_starts[s][v]`` is the first line of stream segment ``s`` of
    vertex ``v``; arcs are grouped by owning vertex via ``arc_indptr``.
    """
    n = stream_starts[0].size
    s_count = len(stream_starts)
    m = arc_starts.size
    total = m + s_count * n
    starts = np.empty(total, dtype=np.int64)
    lens = np.empty(total, dtype=np.int64)
    v = np.arange(n, dtype=np.int64)
    for s in range(s_count):
        pos = arc_indptr[:-1] + s_count * v + s
        starts[pos] = stream_starts[s]
        lens[pos] = stream_lens[s]
    if m:
        owner = np.repeat(v, np.diff(arc_indptr))
        pos = np.arange(m, dtype=np.int64) + s_count * (owner + 1)
        starts[pos] = arc_starts
        lens[pos] = arc_lens
    return concat_ranges(starts, lens)


def _row_stream_segments(
    region: Region, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """First line and line count of each CSR row's sequential read."""
    starts = np.asarray(indptr[:-1], dtype=np.int64)
    ends = np.asarray(indptr[1:], dtype=np.int64)
    first = region.element_line(starts, LINE_BYTES)
    # line of the last element actually read (ends-1); empty rows get len 0
    nonempty = ends > starts
    last = region.element_line(np.maximum(ends - 1, starts), LINE_BYTES)
    lens = np.where(nonempty, last - first + 1, 0)
    return first, lens


def _arc_prefix_segments(
    region: Region,
    indptr: np.ndarray,
    arcs_dst: np.ndarray,
    touched: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Line segment covering the touched prefix of each destination row."""
    starts = indptr[arcs_dst]
    first = region.element_line(starts, LINE_BYTES)
    nonzero = touched > 0
    last = region.element_line(starts + np.maximum(touched - 1, 0), LINE_BYTES)
    lens = np.where(nonzero, last - first + 1, 0)
    return first, lens


def _merge_touched_per_arc(
    indptr: np.ndarray,
    indices: np.ndarray,
    arcs_src: np.ndarray,
    arcs_dst: np.ndarray,
) -> np.ndarray:
    """Elements of each destination row a merge join reads when intersecting
    row(src) with row(dst): ``min(#{x <= max(row(src))} + 1, len)``."""
    if indices.size == 0 or arcs_src.size == 0:
        return np.zeros(arcs_src.size, dtype=np.int64)
    src_start = indptr[arcs_src]
    src_end = indptr[arcs_src + 1]
    # max of the source row (the query); rows are sorted so it is the last
    has_src = src_end > src_start
    safe_last = np.minimum(np.maximum(src_end - 1, src_start), max(indices.size - 1, 0))
    src_last = np.where(has_src, indices[safe_last].astype(np.int64), -1)
    dst_start = indptr[arcs_dst]
    dst_end = indptr[arcs_dst + 1]
    dst_len = dst_end - dst_start
    # count of elements <= src_last == lower bound of (src_last + 1)
    upto = rows_searchsorted(indices, dst_start, dst_end, src_last + 1)
    touched = np.minimum(upto + 1, dst_len)
    touched[~has_src | (dst_len == 0)] = 0
    return touched


def _oriented_arcs(indptr: np.ndarray) -> np.ndarray:
    return np.repeat(np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr))


def lotus_layout(lotus: LotusGraph) -> MemoryLayout:
    """One shared address space for all LOTUS structures, so data reused
    across phases (the HE rows in phases 1 and 2) stays warm in the
    simulated caches, as it would in the real single-process run."""
    layout = MemoryLayout()
    layout.alloc(REGION_HE, max(lotus.he.indices.size, 1), lotus.he.indices.dtype.itemsize)
    layout.alloc(REGION_NHE, max(lotus.nhe.indices.size, 1), lotus.nhe.indices.dtype.itemsize)
    layout.alloc(REGION_H2H, max(lotus.h2h.data.size, 1), 1)
    return layout


def forward_layout(oriented: OrientedGraph) -> MemoryLayout:
    """Address space of Algorithm 1: the oriented CSR neighbour array."""
    layout = MemoryLayout()
    layout.alloc(
        REGION_INDICES, max(oriented.indices.size, 1), oriented.indices.dtype.itemsize
    )
    return layout


def forward_trace(
    oriented: OrientedGraph, layout: MemoryLayout | None = None
) -> np.ndarray:
    """Cache-line trace of Algorithm 1's counting loop.

    Per vertex ``v``: stream ``N_v^<`` once, then for each ``u`` in it,
    read the merge-touched prefix of ``N_u^<`` (the random access the
    paper identifies as Forward's locality problem, Section 3.1).
    """
    layout = layout or forward_layout(oriented)
    region = layout[REGION_INDICES]
    indptr = oriented.indptr
    src = _oriented_arcs(indptr)
    dst = oriented.indices.astype(np.int64, copy=False)
    touched = _merge_touched_per_arc(indptr, oriented.indices, src, dst)
    arc_starts, arc_lens = _arc_prefix_segments(region, indptr, dst, touched)
    s_starts, s_lens = _row_stream_segments(region, indptr)
    return _interleave([s_starts], [s_lens], indptr, arc_starts, arc_lens)


def _phase1_pairs(lotus: LotusGraph) -> tuple[np.ndarray, np.ndarray]:
    """(owner_row_indptr, h2h_bit_index_per_pair) for all phase-1 probes.

    Pair enumeration matches Algorithm 3 lines 3-5: for each vertex, all
    (h1, h2) pairs of its HE row with h2 earlier than h1, h1-major order.
    """
    he = lotus.he
    deg = he.degrees()
    pair_counts = deg * (deg - 1) // 2
    pair_indptr = np.zeros(he.num_vertices + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=pair_indptr[1:])
    total = int(pair_indptr[-1])
    if total == 0:
        return pair_indptr, np.empty(0, dtype=np.int64)
    # decode pair ordinals into (i, j) offsets per row (see count.py)
    p = concat_ranges(np.zeros(he.num_vertices, dtype=np.int64), pair_counts)
    i = ((1.0 + np.sqrt(1.0 + 8.0 * p)) / 2.0).astype(np.int64)
    tri = i * (i - 1) // 2
    over = tri > p
    i[over] -= 1
    tri[over] = i[over] * (i[over] - 1) // 2
    j = p - tri
    under = j >= i
    i[under] += 1
    tri[under] = i[under] * (i[under] - 1) // 2
    j[under] = p[under] - tri[under]
    row_start = np.repeat(he.indptr[:-1], pair_counts)
    h1 = he.indices[row_start + i].astype(np.int64, copy=False)
    h2 = he.indices[row_start + j].astype(np.int64, copy=False)
    bit_idx = h1 * (h1 - 1) // 2 + h2
    return pair_indptr, bit_idx


def lotus_phase1_trace(lotus: LotusGraph, layout: MemoryLayout | None = None) -> np.ndarray:
    """Phase-1 (HHH & HHN) trace: stream HE rows, randomly probe H2H bits."""
    layout = layout or lotus_layout(lotus)
    he_region = layout[REGION_HE]
    h2h_region = layout[REGION_H2H]
    pair_indptr, bit_idx = _phase1_pairs(lotus)
    pair_lines = h2h_region.element_line(bit_idx >> 3, LINE_BYTES)
    s_starts, s_lens = _row_stream_segments(he_region, lotus.he.indptr)
    return _interleave(
        [s_starts], [s_lens], pair_indptr, pair_lines, np.ones(pair_lines.size, dtype=np.int64)
    )


def lotus_phase2_trace(lotus: LotusGraph, layout: MemoryLayout | None = None) -> np.ndarray:
    """Phase-2 (HNN) trace: stream NHE rows and the vertex's own HE row;
    randomly read the merge-touched prefix of each neighbour's HE row."""
    layout = layout or lotus_layout(lotus)
    he_region = layout[REGION_HE]
    nhe_region = layout[REGION_NHE]
    nhe_indptr = lotus.nhe.indptr
    he_indptr = lotus.he.indptr
    src = _oriented_arcs(nhe_indptr)
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    touched = _merge_touched_per_arc(he_indptr, lotus.he.indices, src, dst)
    arc_starts, arc_lens = _arc_prefix_segments(he_region, he_indptr, dst, touched)
    nhe_s, nhe_l = _row_stream_segments(nhe_region, nhe_indptr)
    he_s, he_l = _row_stream_segments(he_region, he_indptr)
    # vertices without NHE work never read their HE row in this phase
    active = np.diff(nhe_indptr) > 0
    he_l = np.where(active, he_l, 0)
    return _interleave([nhe_s, he_s], [nhe_l, he_l], nhe_indptr, arc_starts, arc_lens)


def lotus_phase3_trace(lotus: LotusGraph, layout: MemoryLayout | None = None) -> np.ndarray:
    """Phase-3 (NNN) trace: Forward-style access pattern confined to NHE."""
    layout = layout or lotus_layout(lotus)
    nhe_region = layout[REGION_NHE]
    indptr = lotus.nhe.indptr
    src = _oriented_arcs(indptr)
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    touched = _merge_touched_per_arc(indptr, lotus.nhe.indices, src, dst)
    arc_starts, arc_lens = _arc_prefix_segments(nhe_region, indptr, dst, touched)
    s_starts, s_lens = _row_stream_segments(nhe_region, indptr)
    return _interleave([s_starts], [s_lens], indptr, arc_starts, arc_lens)


def lotus_trace(lotus: LotusGraph) -> np.ndarray:
    """Full LOTUS counting trace: the three phase traces back to back,
    over one shared layout (so HE stays warm between phases 1 and 2)."""
    layout = lotus_layout(lotus)
    return np.concatenate([
        lotus_phase1_trace(lotus, layout),
        lotus_phase2_trace(lotus, layout),
        lotus_phase3_trace(lotus, layout),
    ])


def h2h_access_lines(lotus: LotusGraph) -> np.ndarray:
    """H2H cache-line number of every phase-1 probe (Figure 9 raw data).

    Zero-based line ordinals within the H2H array itself — no layout
    offsets — so callers can histogram them directly.
    """
    _, bit_idx = _phase1_pairs(lotus)
    return (bit_idx >> 3) // LINE_BYTES
