"""Machine models for the paper's three evaluation platforms (Table 3).

Cache capacities are the paper's; because our synthetic datasets are
~10^3x smaller than the paper's graphs, replaying their traces against
full-size caches would show no misses at all.  :meth:`MachineSpec.scaled`
divides every capacity by a common factor so that the *ratio of working
set to cache size* matches the paper's regime (DESIGN.md §1).  The
factor is uniform, so cross-machine comparisons (e.g. Epyc's 12x-larger
L3 weakening Lotus's advantage, Section 5.2) are preserved.

Latency and IPC figures are first-order textbook numbers for these
micro-architectures; the cost model (``costmodel.py``) only uses them to
*rank* algorithms, never to claim absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "SKYLAKEX", "HASWELL", "EPYC", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """One evaluation machine (a row of Table 3), plus timing parameters."""

    name: str
    cpu_model: str
    frequency_ghz: float
    sockets: int
    cores: int
    l1_bytes: int          # per core
    l2_bytes: int          # per core
    l3_bytes_total: int    # whole machine
    line_bytes: int = 64
    l1_ways: int = 8
    l2_ways: int = 16
    l3_ways: int = 16
    tlb_entries: int = 64
    page_bytes: int = 4096
    # cost-model parameters (first-order):
    l1_latency_cycles: float = 4.0
    l2_latency_cycles: float = 14.0
    l3_latency_cycles: float = 44.0
    memory_latency_cycles: float = 220.0
    base_ipc: float = 2.0
    branch_miss_penalty_cycles: float = 15.0

    def scaled(self, factor: int) -> "MachineSpec":
        """Divide all cache capacities (not line/page sizes) by ``factor``.

        Associativities are preserved; minimum sizes keep every level at
        least one set.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")

        def shrink(size: int, ways: int) -> int:
            return max(size // factor, self.line_bytes * ways)

        return replace(
            self,
            name=f"{self.name}/s{factor}",
            l1_bytes=shrink(self.l1_bytes, self.l1_ways),
            l2_bytes=shrink(self.l2_bytes, self.l2_ways),
            l3_bytes_total=shrink(self.l3_bytes_total, self.l3_ways),
            tlb_entries=max(self.tlb_entries, 1),
        )


# Table 3 configurations -------------------------------------------------
SKYLAKEX = MachineSpec(
    name="SkyLakeX",
    cpu_model="Intel Xeon Gold 6130",
    frequency_ghz=2.10,
    sockets=2,
    cores=32,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_total=44 * 1024 * 1024,
    memory_latency_cycles=220.0,
)

HASWELL = MachineSpec(
    name="Haswell",
    cpu_model="Intel Xeon E5-4627",
    frequency_ghz=2.6,
    sockets=4,
    cores=40,
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    l3_bytes_total=int(102.4 * 1024 * 1024),
    memory_latency_cycles=230.0,
)

EPYC = MachineSpec(
    name="Epyc",
    cpu_model="AMD Epyc 7702",
    frequency_ghz=2.0,
    sockets=2,
    cores=128,
    l1_bytes=32 * 1024,
    l2_bytes=512 * 1024,
    l3_bytes_total=512 * 1024 * 1024,
    memory_latency_cycles=260.0,
)

MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (SKYLAKEX, HASWELL, EPYC)
}
