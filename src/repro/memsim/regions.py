"""Canonical region names shared by layouts, traces, and attribution.

The trace builders (:mod:`repro.memsim.trace`), the blocking layout
(:mod:`repro.core.blocking`), and the locality attribution layer
(:mod:`repro.obs.locality`) must agree on the names of the simulated
data structures — an attribution label is only meaningful if the
allocation and the classifier spell it the same way.  Define them once
here; every other module imports these constants instead of repeating
string literals.
"""

from __future__ import annotations

__all__ = [
    "LINE_BYTES",
    "REGION_HE",
    "REGION_NHE",
    "REGION_H2H",
    "REGION_INDICES",
    "REGION_OTHER",
    "LOTUS_REGIONS",
    "FORWARD_REGIONS",
]

# Cache-line granularity of every address trace (DESIGN.md §1).
LINE_BYTES = 64

# LOTUS structures (Section 4 of the paper).
REGION_HE = "he"        # hub-edge CSR neighbour arrays
REGION_NHE = "nhe"      # non-hub-edge CSR neighbour arrays
REGION_H2H = "h2h"      # hub-to-hub adjacency bit array

# Forward's single structure: the oriented CSR neighbour array.
REGION_INDICES = "indices"

# Fallback bucket for accesses outside every named allocation.
REGION_OTHER = "other"

LOTUS_REGIONS: tuple[str, ...] = (REGION_HE, REGION_NHE, REGION_H2H)
FORWARD_REGIONS: tuple[str, ...] = (REGION_INDICES,)
