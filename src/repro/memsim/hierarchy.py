"""Multi-level cache + DTLB hierarchy replay.

Misses filter downward: the line stream hits L1; L1's misses are
replayed against L2; L2's misses against L3; L3's misses count as DRAM
accesses.  The DTLB sees the page stream of every access in parallel.
This is the structure used to regenerate Figure 4 (LLC misses, DTLB
misses) from the algorithms' address traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.cache import (
    SetAssociativeCache,
    compress_consecutive,
    consecutive_keep_mask,
)
from repro.memsim.layout import MemoryLayout, RegionClassifier
from repro.memsim.machines import MachineSpec
from repro.memsim.tlb import TLB
from repro.obs import MetricsRegistry, get_registry

__all__ = ["HierarchyStats", "AttributedStats", "MemoryHierarchy"]


def _rate(hits: int, total: int) -> float:
    """Hit rate with the zero-access guard (0.0, never NaN)."""
    return hits / total if total else 0.0


@dataclass(frozen=True)
class HierarchyStats:
    """Aggregated results of a trace replay."""

    accesses: int
    l1_misses: int
    l2_misses: int
    llc_misses: int
    dtlb_accesses: int
    dtlb_misses: int

    @property
    def l1_hits(self) -> int:
        return self.accesses - self.l1_misses

    @property
    def l2_hits(self) -> int:
        return self.l1_misses - self.l2_misses

    @property
    def l3_hits(self) -> int:
        return self.l2_misses - self.llc_misses

    @property
    def dram_accesses(self) -> int:
        return self.llc_misses

    # hit rates are per level-local traffic (L2 sees only L1's misses);
    # all guard the zero-access case so empty replays export 0.0, not NaN
    @property
    def l1_hit_rate(self) -> float:
        return _rate(self.l1_hits, self.accesses)

    @property
    def l2_hit_rate(self) -> float:
        return _rate(self.l2_hits, self.l1_misses)

    @property
    def l3_hit_rate(self) -> float:
        return _rate(self.l3_hits, self.l2_misses)

    @property
    def dtlb_hit_rate(self) -> float:
        return _rate(self.dtlb_accesses - self.dtlb_misses, self.dtlb_accesses)

    def __add__(self, other: "HierarchyStats") -> "HierarchyStats":
        return HierarchyStats(
            accesses=self.accesses + other.accesses,
            l1_misses=self.l1_misses + other.l1_misses,
            l2_misses=self.l2_misses + other.l2_misses,
            llc_misses=self.llc_misses + other.llc_misses,
            dtlb_accesses=self.dtlb_accesses + other.dtlb_accesses,
            dtlb_misses=self.dtlb_misses + other.dtlb_misses,
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "llc_misses": self.llc_misses,
            "dtlb_accesses": self.dtlb_accesses,
            "dtlb_misses": self.dtlb_misses,
        }


_LEVELS = ("l1", "l2", "llc", "dtlb")


@dataclass(frozen=True)
class AttributedStats:
    """Per-region hierarchy stats of one attributed replay.

    ``regions`` maps region name → :class:`HierarchyStats` counting only
    the accesses that fall inside that region; by construction the
    per-region counts sum exactly to the unattributed totals of the same
    replay (``totals()``).  Regions with zero accesses are included so a
    report always covers the full layout.
    """

    regions: dict[str, HierarchyStats] = field(default_factory=dict)

    def totals(self) -> HierarchyStats:
        total = HierarchyStats(0, 0, 0, 0, 0, 0)
        for stats in self.regions.values():
            total = total + stats
        return total

    def __add__(self, other: "AttributedStats") -> "AttributedStats":
        merged = dict(self.regions)
        for name, stats in other.regions.items():
            merged[name] = merged[name] + stats if name in merged else stats
        return AttributedStats(merged)

    def miss_shares(self, level: str) -> dict[str, float]:
        """Each region's share of the total misses at ``level``
        (one of ``l1``/``l2``/``llc``/``dtlb``); 0.0 when no misses."""
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; one of {_LEVELS}")
        attr = f"{level}_misses"
        total = sum(getattr(s, attr) for s in self.regions.values())
        return {
            name: _rate(getattr(s, attr), total)
            for name, s in self.regions.items()
        }

    def export_metrics(
        self, registry: MetricsRegistry | None = None, prefix: str = "memsim"
    ) -> None:
        """Publish per-region counters (and span attrs) into a registry.

        Counters land as ``<prefix>.region.<name>.<level>.{accesses,misses}``;
        when a span is open on the calling thread the per-region LLC/DTLB
        miss counts are also attached to it, so replays nested under the
        phase spans produce per-phase, per-structure breakdowns for free.
        """
        registry = registry if registry is not None else get_registry()
        span = registry.current_span()
        for name, stats in self.regions.items():
            for level, accesses, misses in (
                ("l1", stats.accesses, stats.l1_misses),
                ("l2", stats.l1_misses, stats.l2_misses),
                ("llc", stats.l2_misses, stats.llc_misses),
                ("dtlb", stats.dtlb_accesses, stats.dtlb_misses),
            ):
                base = f"{prefix}.region.{name}.{level}"
                registry.counter(f"{base}.accesses").add(accesses)
                registry.counter(f"{base}.misses").add(misses)
            if span is not None and span.enabled:
                span.add(f"{name}.llc_misses", int(stats.llc_misses))
                span.add(f"{name}.dtlb_misses", int(stats.dtlb_misses))

    def to_dict(self) -> dict[str, dict[str, int]]:
        return {name: stats.to_dict() for name, stats in self.regions.items()}


class MemoryHierarchy:
    """L1 -> L2 -> L3 -> DRAM with a parallel DTLB, built from a machine spec."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        lb = machine.line_bytes
        self.l1 = SetAssociativeCache(machine.l1_bytes, lb, machine.l1_ways, "L1")
        self.l2 = SetAssociativeCache(machine.l2_bytes, lb, machine.l2_ways, "L2")
        self.l3 = SetAssociativeCache(
            machine.l3_bytes_total, lb, machine.l3_ways, "L3"
        )
        self.tlb = TLB(machine.tlb_entries, machine.page_bytes)
        self.line_bytes = lb

    def reset(self) -> None:
        for level in (self.l1, self.l2, self.l3):
            level.reset()
        self.tlb.reset()

    def access_byte_addresses(self, byte_addrs: np.ndarray) -> None:
        """Replay a stream of byte addresses (converted to lines/pages here)."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        self.access_lines(byte_addrs // self.line_bytes,
                          pages=byte_addrs // self.tlb.page_bytes)

    def access_lines(self, lines: np.ndarray, pages: np.ndarray | None = None) -> None:
        """Replay a stream of cache-line numbers.

        ``pages`` defaults to ``lines * line_bytes // page_bytes`` (valid
        when the trace was generated with line-granular addresses).
        """
        lines = np.asarray(lines, dtype=np.int64)
        compressed, collapsed = compress_consecutive(lines)
        self.l1.credit_hits(collapsed)
        l1_misses = self.l1.access_lines(compressed)
        l2_misses = self.l2.access_lines(l1_misses)
        self.l3.access_lines(l2_misses)
        if pages is None:
            pages = lines * self.line_bytes // self.tlb.page_bytes
        self.tlb.access_pages(pages)

    def access_lines_attributed(
        self,
        lines: np.ndarray,
        layout: MemoryLayout | RegionClassifier,
        pages: np.ndarray | None = None,
    ) -> AttributedStats:
        """Replay a line stream, attributing every access to a layout region.

        Cache and TLB state (and :meth:`stats` totals) evolve exactly as
        in :meth:`access_lines` — the same compression, the same
        replacement decisions — but the per-access hit/miss outcome is
        kept and bucketed by the region owning each line/page.  Returns
        the per-region stats of *this call* (deltas, not cumulative), so
        replaying per-phase traces one call at a time yields per-phase
        attribution while the hierarchy stays warm across calls.
        """
        classifier = (
            layout.classifier(self.line_bytes, self.tlb.page_bytes)
            if isinstance(layout, MemoryLayout)
            else layout
        )
        lines = np.asarray(lines, dtype=np.int64)
        nreg = classifier.num_regions
        rid = classifier.classify_lines(lines)
        accesses = np.bincount(rid, minlength=nreg)
        # consecutive compression, mirroring access_lines exactly:
        # collapsed repeats are guaranteed L1 hits in their own region
        keep = consecutive_keep_mask(lines)
        compressed = lines[keep]
        crid = rid[keep]
        self.l1.credit_hits(int(lines.size - compressed.size))
        m1 = self.l1.access_lines_flags(compressed)
        l2_lines, l2_rid = compressed[m1], crid[m1]
        m2 = self.l2.access_lines_flags(l2_lines)
        l3_lines, l3_rid = l2_lines[m2], l2_rid[m2]
        m3 = self.l3.access_lines_flags(l3_lines)
        l1_miss = np.bincount(l2_rid, minlength=nreg)
        l2_miss = np.bincount(l3_rid, minlength=nreg)
        llc_miss = np.bincount(l3_rid[m3], minlength=nreg)
        if pages is None:
            pages = lines * self.line_bytes // self.tlb.page_bytes
        prid = classifier.classify_pages(pages)
        dtlb_accesses = np.bincount(prid, minlength=nreg)
        mt = self.tlb.access_pages_flags(pages)
        dtlb_miss = np.bincount(prid[mt], minlength=nreg)
        regions = {
            name: HierarchyStats(
                accesses=int(accesses[i]),
                l1_misses=int(l1_miss[i]),
                l2_misses=int(l2_miss[i]),
                llc_misses=int(llc_miss[i]),
                dtlb_accesses=int(dtlb_accesses[i]),
                dtlb_misses=int(dtlb_miss[i]),
            )
            for i, name in enumerate(classifier.names)
        }
        return AttributedStats(regions)

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            accesses=self.l1.stats.accesses,
            l1_misses=self.l1.stats.misses,
            l2_misses=self.l2.stats.misses,
            llc_misses=self.l3.stats.misses,
            dtlb_accesses=self.tlb.stats.accesses,
            dtlb_misses=self.tlb.stats.misses,
        )

    def export_metrics(
        self, registry: MetricsRegistry | None = None, prefix: str = "memsim"
    ) -> None:
        """Publish hit rates and access/miss totals into a metrics registry.

        Uses the active observability registry by default, so a simulate
        run inside ``use_registry()`` lands in the same report artifact
        as the counting spans.  Gauges carry the per-level hit rates,
        counters the raw access/miss totals.
        """
        registry = registry if registry is not None else get_registry()
        for label, stats in (
            ("l1", self.l1.stats),
            ("l2", self.l2.stats),
            ("l3", self.l3.stats),
            ("dtlb", self.tlb.stats),
        ):
            registry.gauge(f"{prefix}.{label}.hit_rate").set(stats.hit_rate)
            registry.counter(f"{prefix}.{label}.accesses").add(stats.accesses)
            registry.counter(f"{prefix}.{label}.misses").add(stats.misses)
