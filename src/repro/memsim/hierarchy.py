"""Multi-level cache + DTLB hierarchy replay.

Misses filter downward: the line stream hits L1; L1's misses are
replayed against L2; L2's misses against L3; L3's misses count as DRAM
accesses.  The DTLB sees the page stream of every access in parallel.
This is the structure used to regenerate Figure 4 (LLC misses, DTLB
misses) from the algorithms' address traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.cache import SetAssociativeCache, compress_consecutive
from repro.memsim.machines import MachineSpec
from repro.memsim.tlb import TLB
from repro.obs import MetricsRegistry, get_registry

__all__ = ["HierarchyStats", "MemoryHierarchy"]


@dataclass(frozen=True)
class HierarchyStats:
    """Aggregated results of a trace replay."""

    accesses: int
    l1_misses: int
    l2_misses: int
    llc_misses: int
    dtlb_accesses: int
    dtlb_misses: int

    @property
    def l1_hits(self) -> int:
        return self.accesses - self.l1_misses

    @property
    def l2_hits(self) -> int:
        return self.l1_misses - self.l2_misses

    @property
    def l3_hits(self) -> int:
        return self.l2_misses - self.llc_misses

    @property
    def dram_accesses(self) -> int:
        return self.llc_misses


class MemoryHierarchy:
    """L1 -> L2 -> L3 -> DRAM with a parallel DTLB, built from a machine spec."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        lb = machine.line_bytes
        self.l1 = SetAssociativeCache(machine.l1_bytes, lb, machine.l1_ways, "L1")
        self.l2 = SetAssociativeCache(machine.l2_bytes, lb, machine.l2_ways, "L2")
        self.l3 = SetAssociativeCache(
            machine.l3_bytes_total, lb, machine.l3_ways, "L3"
        )
        self.tlb = TLB(machine.tlb_entries, machine.page_bytes)
        self.line_bytes = lb

    def reset(self) -> None:
        for level in (self.l1, self.l2, self.l3):
            level.reset()
        self.tlb.reset()

    def access_byte_addresses(self, byte_addrs: np.ndarray) -> None:
        """Replay a stream of byte addresses (converted to lines/pages here)."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        self.access_lines(byte_addrs // self.line_bytes,
                          pages=byte_addrs // self.tlb.page_bytes)

    def access_lines(self, lines: np.ndarray, pages: np.ndarray | None = None) -> None:
        """Replay a stream of cache-line numbers.

        ``pages`` defaults to ``lines * line_bytes // page_bytes`` (valid
        when the trace was generated with line-granular addresses).
        """
        lines = np.asarray(lines, dtype=np.int64)
        compressed, collapsed = compress_consecutive(lines)
        self.l1.credit_hits(collapsed)
        l1_misses = self.l1.access_lines(compressed)
        l2_misses = self.l2.access_lines(l1_misses)
        self.l3.access_lines(l2_misses)
        if pages is None:
            pages = lines * self.line_bytes // self.tlb.page_bytes
        self.tlb.access_pages(pages)

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            accesses=self.l1.stats.accesses,
            l1_misses=self.l1.stats.misses,
            l2_misses=self.l2.stats.misses,
            llc_misses=self.l3.stats.misses,
            dtlb_accesses=self.tlb.stats.accesses,
            dtlb_misses=self.tlb.stats.misses,
        )

    def export_metrics(
        self, registry: MetricsRegistry | None = None, prefix: str = "memsim"
    ) -> None:
        """Publish hit rates and access/miss totals into a metrics registry.

        Uses the active observability registry by default, so a simulate
        run inside ``use_registry()`` lands in the same report artifact
        as the counting spans.  Gauges carry the per-level hit rates,
        counters the raw access/miss totals.
        """
        registry = registry if registry is not None else get_registry()
        for label, stats in (
            ("l1", self.l1.stats),
            ("l2", self.l2.stats),
            ("l3", self.l3.stats),
            ("dtlb", self.tlb.stats),
        ):
            registry.gauge(f"{prefix}.{label}.hit_rate").set(stats.hit_rate)
            registry.counter(f"{prefix}.{label}.accesses").add(stats.accesses)
            registry.counter(f"{prefix}.{label}.misses").add(stats.misses)
