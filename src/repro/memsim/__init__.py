"""Memory-hierarchy simulation substrate.

The paper's central claims are about hardware cache behaviour (LLC and
DTLB misses, Figures 4-5; H2H cacheline locality, Figure 9), which pure
Python cannot observe.  This package reproduces those experiments by
*simulation*: the TC algorithms' exact address streams are replayed
through a set-associative LRU cache + TLB model configured after the
paper's three machines (Table 3), and an operation-count model stands in
for the PAPI hardware counters (see DESIGN.md §1).
"""

from repro.memsim.cache import SetAssociativeCache, CacheStats
from repro.memsim.tlb import TLB
from repro.memsim.hierarchy import MemoryHierarchy, HierarchyStats, AttributedStats
from repro.memsim.machines import MachineSpec, MACHINES, SKYLAKEX, HASWELL, EPYC
from repro.memsim.layout import MemoryLayout, Region, RegionClassifier
from repro.memsim.regions import (
    LINE_BYTES,
    REGION_HE,
    REGION_NHE,
    REGION_H2H,
    REGION_INDICES,
    REGION_OTHER,
    LOTUS_REGIONS,
    FORWARD_REGIONS,
)
from repro.memsim.trace import (
    forward_layout,
    forward_trace,
    lotus_phase1_trace,
    lotus_phase2_trace,
    lotus_phase3_trace,
    lotus_trace,
    h2h_access_lines,
)
from repro.memsim.opcounts import (
    OpCounts,
    forward_opcounts,
    lotus_opcounts,
    two_bit_predictor_miss_rate,
)
from repro.memsim.costmodel import modeled_seconds, CostModel
from repro.memsim.reuse import (
    reuse_distance_histogram,
    reuse_distance_by_region,
    lru_hit_curve,
    ReuseProfile,
    RegionReuseProfiles,
)

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "TLB",
    "MemoryHierarchy",
    "HierarchyStats",
    "AttributedStats",
    "MachineSpec",
    "MACHINES",
    "SKYLAKEX",
    "HASWELL",
    "EPYC",
    "MemoryLayout",
    "Region",
    "RegionClassifier",
    "LINE_BYTES",
    "REGION_HE",
    "REGION_NHE",
    "REGION_H2H",
    "REGION_INDICES",
    "REGION_OTHER",
    "LOTUS_REGIONS",
    "FORWARD_REGIONS",
    "forward_layout",
    "forward_trace",
    "lotus_phase1_trace",
    "lotus_phase2_trace",
    "lotus_phase3_trace",
    "lotus_trace",
    "h2h_access_lines",
    "OpCounts",
    "forward_opcounts",
    "lotus_opcounts",
    "two_bit_predictor_miss_rate",
    "modeled_seconds",
    "CostModel",
    "reuse_distance_histogram",
    "reuse_distance_by_region",
    "lru_hit_curve",
    "ReuseProfile",
    "RegionReuseProfiles",
]
