"""Set-associative LRU cache simulator.

Trace-driven: the unit of access is a *cache line number* (an int64
address already divided by the line size), which keeps the hot loop free
of address arithmetic.  Consecutive repeats of the same line are
collapsed before simulation (they are guaranteed hits) so streamed
accesses cost almost nothing to simulate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "compress_consecutive",
    "consecutive_keep_mask",
]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.hits += other.hits


def compress_consecutive(lines: np.ndarray) -> tuple[np.ndarray, int]:
    """Collapse runs of identical consecutive lines.

    Returns ``(unique_transition_lines, collapsed_count)``: re-accessing
    the line you just touched is always a hit in every level, so only
    transitions need simulation.  ``collapsed_count`` is credited as hits
    at the first level.
    """
    lines = np.asarray(lines, dtype=np.int64)
    if lines.size == 0:
        return lines, 0
    compressed = lines[consecutive_keep_mask(lines)]
    return compressed, int(lines.size - compressed.size)


def consecutive_keep_mask(lines: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first access of each consecutive run.

    ``lines[mask]`` is the compressed stream of :func:`compress_consecutive`;
    ``~mask`` selects the collapsed repeats (guaranteed first-level hits),
    which attribution needs positionally to credit them to the right region.
    """
    lines = np.asarray(lines, dtype=np.int64)
    keep = np.empty(lines.size, dtype=bool)
    if lines.size == 0:
        return keep
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return keep


class SetAssociativeCache:
    """LRU set-associative cache over line numbers.

    ``size_bytes`` / ``line_bytes`` / ``ways`` follow the usual geometry;
    the number of sets must come out a positive power of two is *not*
    required (we use modulo indexing).  ``ways=0`` or ``size_bytes=0``
    disables the level (everything misses).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
        name: str = "cache",
    ) -> None:
        if size_bytes < 0 or line_bytes <= 0 or ways < 0:
            raise ValueError("invalid cache geometry")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(size_bytes // (line_bytes * max(ways, 1)), 0)
        self.size_bytes = self.num_sets * line_bytes * ways
        self.stats = CacheStats()
        # one LRU (OrderedDict keyed by line) per set
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    def access_lines(self, lines: np.ndarray) -> np.ndarray:
        """Simulate the access sequence; returns the array of *missed* lines
        in order (to be replayed against the next level).

        The input should already be consecutive-compressed; this method
        does not re-compress.
        """
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.size
        self.stats.accesses += n
        if n == 0:
            return lines
        if self.num_sets == 0:
            return lines  # disabled level: all miss
        nsets = self.num_sets
        ways = self.ways
        sets = self._sets
        misses: list[int] = []
        hits = 0
        for line in lines.tolist():
            s = sets[line % nsets]
            if line in s:
                s.move_to_end(line)
                hits += 1
            else:
                misses.append(line)
                s[line] = None
                if len(s) > ways:
                    s.popitem(last=False)
        self.stats.hits += hits
        return np.asarray(misses, dtype=np.int64)

    def access_lines_flags(self, lines: np.ndarray) -> np.ndarray:
        """Simulate the access sequence; returns a boolean *miss mask*.

        Identical replacement policy and statistics to
        :meth:`access_lines`, but the per-access outcome is preserved so
        callers can attribute each miss (e.g. to the layout region that
        owns the line).  ``lines[mask]`` is exactly what
        :meth:`access_lines` would have returned.
        """
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.size
        self.stats.accesses += n
        miss = np.zeros(n, dtype=bool)
        if n == 0:
            return miss
        if self.num_sets == 0:
            miss[:] = True  # disabled level: all miss
            return miss
        nsets = self.num_sets
        ways = self.ways
        sets = self._sets
        missed = 0
        for i, line in enumerate(lines.tolist()):
            s = sets[line % nsets]
            if line in s:
                s.move_to_end(line)
            else:
                miss[i] = True
                missed += 1
                s[line] = None
                if len(s) > ways:
                    s.popitem(last=False)
        self.stats.hits += n - missed
        return miss

    def credit_hits(self, count: int) -> None:
        """Account ``count`` guaranteed hits (from consecutive compression)."""
        self.stats.accesses += count
        self.stats.hits += count

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name}, {self.size_bytes}B, "
            f"{self.num_sets}x{self.ways}w x {self.line_bytes}B)"
        )
