"""Operation-count models — the stand-in for PAPI hardware counters.

Figure 5 compares memory accesses (loads + stores), retired
instructions, and branch mispredictions of Lotus vs the Forward
algorithm.  Those events are determined by the algorithms' control flow,
so we count them from the same quantities the execution uses:

* **merge join** of lists of lengths consumed ``c`` steps: ``c``
  iterations, each with 2 loads (amortised: each element is loaded once,
  so loads = touched elements), ~6 instructions (compare, branch, 1-2
  increments, loop test), and one data-dependent branch;
* **H2H probe**: 1 load, ~5 instructions (index arithmetic is strength-
  reduced across the inner loop, Section 4.4.1), one data-dependent
  branch whose taken-probability is the local H2H density;
* per-vertex / per-edge loop overhead constants.

Branch mispredictions use the steady-state miss rate of a 2-bit
saturating counter under i.i.d. outcomes with probability ``p`` — a
birth-death Markov chain with the closed form implemented in
:func:`two_bit_predictor_miss_rate` (verified against simulation in the
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.structure import LotusGraph
from repro.graph.csr import OrientedGraph
from repro.memsim.trace import _merge_touched_per_arc, _oriented_arcs, _phase1_pairs
from repro.util.arrays import rows_searchsorted

__all__ = [
    "OpCounts",
    "two_bit_predictor_miss_rate",
    "forward_opcounts",
    "lotus_opcounts",
]

# per-event instruction weights (first-order micro-architecture model)
_MERGE_STEP_INSTR = 6.0
_H2H_PROBE_INSTR = 5.0
_LOOP_OVERHEAD_INSTR = 4.0  # per vertex or per arc iteration bookkeeping


@dataclass
class OpCounts:
    """Modelled hardware-event counts of one algorithm run."""

    loads: float = 0.0
    stores: float = 0.0
    instructions: float = 0.0
    branches: float = 0.0
    branch_mispredicts: float = 0.0

    @property
    def memory_accesses(self) -> float:
        """Load + store instructions (Figure 5a's metric)."""
        return self.loads + self.stores

    def add(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            instructions=self.instructions + other.instructions,
            branches=self.branches + other.branches,
            branch_mispredicts=self.branch_mispredicts + other.branch_mispredicts,
        )


def two_bit_predictor_miss_rate(p: np.ndarray | float) -> np.ndarray | float:
    """Steady-state misprediction rate of a 2-bit saturating counter fed
    i.i.d. Bernoulli(p) branch outcomes.

    The counter is a birth-death chain on states {0,1,2,3} with up-rate p;
    its stationary distribution is geometric in ``r = p/(1-p)``:
    ``pi_k ∝ r^k``.  A branch mispredicts when the outcome disagrees with
    the state's prediction (taken iff state >= 2), giving
    ``miss = p*(pi_0 + pi_1) + (1-p)*(pi_2 + pi_3)``.
    """
    p = np.asarray(p, dtype=np.float64)
    scalar = p.ndim == 0
    p = np.atleast_1d(p).clip(0.0, 1.0)
    miss = np.empty_like(p)
    # degenerate endpoints: perfectly biased branches never mispredict
    edge = (p == 0.0) | (p == 1.0)
    miss[edge] = 0.0
    mid = ~edge
    r = p[mid] / (1.0 - p[mid])
    z = 1.0 + r + r**2 + r**3
    pi01 = (1.0 + r) / z
    pi23 = (r**2 + r**3) / z
    miss[mid] = p[mid] * pi01 + (1.0 - p[mid]) * pi23
    return float(miss[0]) if scalar else miss


def _merge_join_events(
    indptr_q: np.ndarray,
    indices_q: np.ndarray,
    indptr_t: np.ndarray,
    indices_t: np.ndarray,
    arcs_src: np.ndarray,
    arcs_dst: np.ndarray,
) -> OpCounts:
    """Events of merge-joining row_q(src) with row_t(dst) for every arc."""
    if arcs_src.size == 0 or indices_t.size == 0 or indices_q.size == 0:
        return OpCounts()
    touched_t = _merge_touched_per_arc(indptr_t, indices_t, arcs_src, arcs_dst)
    # touched elements of the query row, bounded by the target row's max
    t_start = indptr_t[arcs_dst]
    t_end = indptr_t[arcs_dst + 1]
    has_t = t_end > t_start
    safe_last = np.minimum(
        np.maximum(t_end - 1, t_start), max(indices_t.size - 1, 0)
    )
    t_last = np.where(has_t, indices_t[safe_last].astype(np.int64), -1)
    q_start = indptr_q[arcs_src]
    q_end = indptr_q[arcs_src + 1]
    q_len = q_end - q_start
    upto = rows_searchsorted(indices_q, q_start, q_end, t_last + 1)
    touched_q = np.minimum(upto + 1, q_len)
    touched_q[~has_t | (q_len == 0)] = 0

    steps = (touched_q + touched_t).astype(np.float64)
    total_steps = float(steps.sum())
    # per-step comparison branch: P(advance query pointer) ~ len_q/(len_q+len_t)
    denom = np.maximum(touched_q + touched_t, 1).astype(np.float64)
    p_branch = touched_q / denom
    mispredicts = float((steps * two_bit_predictor_miss_rate(p_branch)).sum())
    return OpCounts(
        loads=total_steps,
        stores=0.0,
        instructions=total_steps * _MERGE_STEP_INSTR
        + arcs_src.size * _LOOP_OVERHEAD_INSTR,
        branches=total_steps,
        branch_mispredicts=mispredicts,
    )


def forward_opcounts(oriented: OrientedGraph) -> OpCounts:
    """Modelled hardware events of the Forward algorithm's counting loop."""
    indptr, indices = oriented.indptr, oriented.indices
    src = _oriented_arcs(indptr)
    dst = indices.astype(np.int64, copy=False)
    counts = _merge_join_events(indptr, indices, indptr, indices, src, dst)
    # streaming of each row once (discovering u's) and vertex-loop overhead
    counts.loads += float(indices.size)
    counts.instructions += float(
        indices.size * 2 + oriented.num_vertices * _LOOP_OVERHEAD_INSTR
    )
    counts.branches += float(oriented.num_vertices + indices.size)
    return counts


def lotus_opcounts(lotus: LotusGraph) -> OpCounts:
    """Modelled hardware events of the three LOTUS counting phases."""
    # --- phase 1: HE streaming + H2H probes -------------------------------
    pair_indptr, bit_idx = _phase1_pairs(lotus)
    num_pairs = bit_idx.size
    density = lotus.h2h.density()
    phase1 = OpCounts(
        loads=float(num_pairs + lotus.he.indices.size),
        stores=0.0,
        instructions=num_pairs * _H2H_PROBE_INSTR
        + lotus.he.indices.size * 2
        + lotus.num_vertices * _LOOP_OVERHEAD_INSTR,
        branches=float(num_pairs),
        branch_mispredicts=num_pairs * float(two_bit_predictor_miss_rate(density)),
    )
    # --- phase 2: merge joins over HE rows, driven by NHE arcs -------------
    nhe_indptr = lotus.nhe.indptr
    src = _oriented_arcs(nhe_indptr)
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    phase2 = _merge_join_events(
        lotus.he.indptr, lotus.he.indices, lotus.he.indptr, lotus.he.indices, src, dst
    )
    phase2.loads += float(lotus.nhe.indices.size)  # streaming the NHE arcs
    phase2.instructions += float(lotus.nhe.indices.size * 2)
    # --- phase 3: merge joins inside NHE -----------------------------------
    phase3 = _merge_join_events(
        nhe_indptr, lotus.nhe.indices, nhe_indptr, lotus.nhe.indices, src, dst
    )
    phase3.loads += float(lotus.nhe.indices.size)
    phase3.instructions += float(
        lotus.nhe.indices.size * 2 + lotus.num_vertices * _LOOP_OVERHEAD_INSTR
    )
    return phase1.add(phase2).add(phase3)
