"""Reuse-distance (LRU stack distance) analysis.

The reuse distance of an access is the number of *distinct* blocks
touched since the previous access to the same block; an access hits in a
fully-associative LRU cache of capacity C iff its reuse distance is
< C.  The histogram therefore characterises a trace's locality
independently of any particular cache geometry — a complement to the
set-associative replay in :mod:`repro.memsim.hierarchy`, and the formal
notion behind the paper's "working set" arguments (Section 4.5).

Computed exactly with the classic offline Fenwick-tree algorithm:
O(N log N) for a trace of N accesses.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reuse_distance_histogram",
    "reuse_distance_by_region",
    "lru_hit_curve",
    "ReuseProfile",
    "RegionReuseProfiles",
]


class _Fenwick:
    """Binary indexed tree over trace positions (1-based internally)."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of positions [0, i]."""
        i += 1
        tree = self.tree
        total = 0
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


class ReuseProfile:
    """Result of a reuse-distance pass.

    ``histogram[d]`` counts accesses with reuse distance exactly ``d``
    (capped at ``max_distance``; larger distances are folded into the
    last bucket); ``cold`` counts first-touch accesses (infinite
    distance).
    """

    def __init__(self, histogram: np.ndarray, cold: int, total: int) -> None:
        self.histogram = histogram
        self.cold = cold
        self.total = total

    def hit_rate(self, capacity: int) -> float:
        """Hit rate of a fully-associative LRU cache with ``capacity`` blocks."""
        if self.total == 0:
            return 0.0
        capacity = min(max(capacity, 0), self.histogram.size)
        return float(self.histogram[:capacity].sum()) / self.total

    def distance_percentile(self, q: float) -> float:
        """Reuse distance at rank ``q`` over *all* accesses of the profile.

        Cold (first-touch) accesses rank as infinite distance, so a
        percentile landing in the cold tail returns ``inf`` — callers
        rendering reports should map that to "cold".
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = np.cumsum(self.histogram)
        idx = int(np.searchsorted(cumulative, rank, side="left"))
        if idx >= self.histogram.size:
            return float("inf")
        return float(idx)


def reuse_distance_histogram(
    blocks: np.ndarray, max_distance: int | None = None
) -> ReuseProfile:
    """Exact reuse-distance histogram of a block-access trace.

    ``blocks`` is any integer trace (e.g. cache-line numbers from
    :mod:`repro.memsim.trace`).  ``max_distance`` caps the histogram size
    (default: number of distinct blocks).
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = blocks.size
    if n == 0:
        return ReuseProfile(np.zeros(0, dtype=np.int64), 0, 0)
    # compact block IDs
    _, compact = np.unique(blocks, return_inverse=True)
    num_blocks = int(compact.max()) + 1
    if max_distance is None:
        max_distance = num_blocks
    hist = np.zeros(max_distance + 1, dtype=np.int64)
    last = np.full(num_blocks, -1, dtype=np.int64)
    bit = _Fenwick(n)
    cold = 0
    for i, b in enumerate(compact.tolist()):
        p = last[b]
        if p < 0:
            cold += 1
        else:
            # distinct blocks touched strictly between p and i = number of
            # "most recent occurrence" marks in (p, i)
            distance = bit.prefix(i - 1) - bit.prefix(p)
            hist[min(distance, max_distance)] += 1
            bit.add(p, -1)
        bit.add(i, 1)
        last[b] = i
    return ReuseProfile(hist, cold, n)


def lru_hit_curve(profile: ReuseProfile, capacities: np.ndarray) -> np.ndarray:
    """Hit rate at each LRU capacity — the miss-ratio curve's complement."""
    return np.array([profile.hit_rate(int(c)) for c in np.asarray(capacities)])


class RegionReuseProfiles:
    """Per-region reuse-distance profiles of one trace, plus the overall one.

    ``per_region[name]`` is the :class:`ReuseProfile` of the accesses
    attributed to region ``name``; distances are always measured against
    the *whole* trace's LRU stack (a region's access evicts lines of
    every region), so each region's profile predicts its hit rate inside
    the shared cache, matching the attributed hierarchy replay.
    """

    def __init__(self, overall: ReuseProfile, per_region: dict[str, ReuseProfile]) -> None:
        self.overall = overall
        self.per_region = per_region

    def hit_curves(self, capacities: np.ndarray) -> dict[str, np.ndarray]:
        """Per-region LRU hit curves at the given capacities, in one call."""
        return {
            name: lru_hit_curve(profile, capacities)
            for name, profile in self.per_region.items()
        }


def reuse_distance_by_region(
    blocks: np.ndarray,
    region_ids: np.ndarray,
    region_names: tuple[str, ...] | list[str],
    max_distance: int | None = None,
) -> RegionReuseProfiles:
    """Per-region reuse-distance histograms and totals in one Fenwick pass.

    ``region_ids[i]`` (an index into ``region_names``, e.g. from
    :meth:`~repro.memsim.layout.RegionClassifier.classify_lines`) names
    the region owning access ``i``.  The stack distance of every access
    is computed once over the shared trace and binned into its region's
    histogram, so the cost matches a single
    :func:`reuse_distance_histogram` call regardless of region count.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    region_ids = np.asarray(region_ids, dtype=np.int64)
    if blocks.size != region_ids.size:
        raise ValueError("blocks and region_ids must have equal length")
    nreg = len(region_names)
    n = blocks.size
    if n == 0:
        empty = {
            str(name): ReuseProfile(np.zeros(0, dtype=np.int64), 0, 0)
            for name in region_names
        }
        return RegionReuseProfiles(ReuseProfile(np.zeros(0, dtype=np.int64), 0, 0), empty)
    _, compact = np.unique(blocks, return_inverse=True)
    num_blocks = int(compact.max()) + 1
    if max_distance is None:
        max_distance = num_blocks
    hists = np.zeros((nreg, max_distance + 1), dtype=np.int64)
    colds = np.zeros(nreg, dtype=np.int64)
    totals = np.zeros(nreg, dtype=np.int64)
    last = np.full(num_blocks, -1, dtype=np.int64)
    bit = _Fenwick(n)
    rids = region_ids.tolist()
    for i, b in enumerate(compact.tolist()):
        r = rids[i]
        totals[r] += 1
        p = last[b]
        if p < 0:
            colds[r] += 1
        else:
            distance = bit.prefix(i - 1) - bit.prefix(p)
            hists[r, min(distance, max_distance)] += 1
            bit.add(p, -1)
        bit.add(i, 1)
        last[b] = i
    per_region = {
        str(name): ReuseProfile(hists[r].copy(), int(colds[r]), int(totals[r]))
        for r, name in enumerate(region_names)
    }
    overall = ReuseProfile(hists.sum(axis=0), int(colds.sum()), n)
    return RegionReuseProfiles(overall, per_region)
