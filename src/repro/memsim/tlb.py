"""Data TLB model: a small fully/mostly-associative LRU cache of pages.

The paper's Figure 4b reports DTLB misses: Forward's random accesses span
the whole multi-gigabyte topology while Lotus confines them to small
per-phase structures, so Lotus cuts DTLB misses by an average 34.6x.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.cache import (
    CacheStats,
    SetAssociativeCache,
    compress_consecutive,
    consecutive_keep_mask,
)

__all__ = ["TLB"]


class TLB:
    """LRU translation cache over ``page_bytes`` pages.

    ``entries`` translations, ``ways``-associative (default fully
    associative like most first-level DTLBs of the period).
    """

    def __init__(self, entries: int = 64, page_bytes: int = 4096, ways: int | None = None) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.page_bytes = page_bytes
        self.entries = entries
        ways = entries if ways is None else ways
        # reuse the cache machinery: one "line" = one page translation
        self._cache = SetAssociativeCache(
            size_bytes=entries * page_bytes,
            line_bytes=page_bytes,
            ways=ways,
            name="dtlb",
        )

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def reset(self) -> None:
        self._cache.reset()

    def access_bytes(self, byte_addrs: np.ndarray) -> None:
        """Translate a stream of byte addresses."""
        pages = np.asarray(byte_addrs, dtype=np.int64) // self.page_bytes
        self.access_pages(pages)

    def access_pages(self, pages: np.ndarray) -> None:
        """Translate a stream of page numbers (consecutive repeats collapse)."""
        compressed, collapsed = compress_consecutive(pages)
        self._cache.credit_hits(collapsed)
        self._cache.access_lines(compressed)

    def access_pages_flags(self, pages: np.ndarray) -> np.ndarray:
        """Translate a page stream, returning a per-access boolean miss mask.

        Statistics evolve exactly as in :meth:`access_pages`; collapsed
        consecutive repeats are reported as hits at their own positions.
        """
        pages = np.asarray(pages, dtype=np.int64)
        keep = consecutive_keep_mask(pages)
        compressed = pages[keep]
        self._cache.credit_hits(int(pages.size - compressed.size))
        miss = np.zeros(pages.size, dtype=bool)
        miss[keep] = self._cache.access_lines_flags(compressed)
        return miss
