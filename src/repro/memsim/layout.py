"""Virtual address-space layout for the simulated data structures.

Trace builders need concrete addresses for each array (CSR index arrays,
neighbour arrays, the H2H bit array...).  :class:`MemoryLayout` assigns
each named region a page-aligned base address in a flat virtual space, so
distinct structures never share cache lines or pages — mirroring separate
`malloc`-ed allocations in the paper's C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Region", "MemoryLayout"]

_PAGE = 4096


@dataclass(frozen=True)
class Region:
    """A named allocation: ``[base, base + size_bytes)``."""

    name: str
    base: int
    size_bytes: int
    element_bytes: int

    def element_addr(self, index: np.ndarray | int) -> np.ndarray | int:
        """Byte address of element ``index``."""
        return self.base + np.asarray(index, dtype=np.int64) * self.element_bytes

    def element_line(self, index: np.ndarray | int, line_bytes: int = 64) -> np.ndarray:
        """Cache-line number of element ``index``."""
        return self.element_addr(index) // line_bytes


class MemoryLayout:
    """Sequential page-aligned allocator of named regions."""

    def __init__(self) -> None:
        self._next = _PAGE  # keep 0 unused
        self.regions: dict[str, Region] = {}

    def alloc(self, name: str, num_elements: int, element_bytes: int) -> Region:
        """Allocate ``num_elements`` of ``element_bytes`` each under ``name``."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        size = int(num_elements) * int(element_bytes)
        region = Region(name, self._next, size, element_bytes)
        self._next += (size + _PAGE - 1) // _PAGE * _PAGE
        self.regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self.regions[name]

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.regions.values())
