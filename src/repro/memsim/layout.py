"""Virtual address-space layout for the simulated data structures.

Trace builders need concrete addresses for each array (CSR index arrays,
neighbour arrays, the H2H bit array...).  :class:`MemoryLayout` assigns
each named region a page-aligned base address in a flat virtual space, so
distinct structures never share cache lines or pages — mirroring separate
`malloc`-ed allocations in the paper's C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.regions import LINE_BYTES, REGION_OTHER

__all__ = ["Region", "MemoryLayout", "RegionClassifier"]

_PAGE = 4096


@dataclass(frozen=True)
class Region:
    """A named allocation: ``[base, base + size_bytes)``."""

    name: str
    base: int
    size_bytes: int
    element_bytes: int

    def element_addr(self, index: np.ndarray | int) -> np.ndarray | int:
        """Byte address of element ``index``."""
        return self.base + np.asarray(index, dtype=np.int64) * self.element_bytes

    def element_line(self, index: np.ndarray | int, line_bytes: int = 64) -> np.ndarray:
        """Cache-line number of element ``index``."""
        return self.element_addr(index) // line_bytes


class MemoryLayout:
    """Sequential page-aligned allocator of named regions."""

    def __init__(self) -> None:
        self._next = _PAGE  # keep 0 unused
        self.regions: dict[str, Region] = {}

    def alloc(self, name: str, num_elements: int, element_bytes: int) -> Region:
        """Allocate ``num_elements`` of ``element_bytes`` each under ``name``."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        size = int(num_elements) * int(element_bytes)
        region = Region(name, self._next, size, element_bytes)
        self._next += (size + _PAGE - 1) // _PAGE * _PAGE
        self.regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self.regions[name]

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.regions.values())

    def classifier(
        self, line_bytes: int = LINE_BYTES, page_bytes: int = _PAGE
    ) -> "RegionClassifier":
        """Build a :class:`RegionClassifier` over this layout's regions."""
        return RegionClassifier(self, line_bytes=line_bytes, page_bytes=page_bytes)


class RegionClassifier:
    """Vectorised line/page → region-name classifier for one layout.

    Region ids are dense: ``0 .. len(regions)-1`` in base-address order,
    with one extra trailing id for :data:`~repro.memsim.regions.REGION_OTHER`
    (addresses outside every allocation).  Regions are page-aligned by
    the allocator, so a cache line or page never straddles two regions;
    for hand-built layouts that violate this, a straddling block is
    attributed to the lower-addressed region.
    """

    def __init__(
        self,
        layout: MemoryLayout,
        line_bytes: int = LINE_BYTES,
        page_bytes: int = _PAGE,
    ) -> None:
        regions = sorted(layout.regions.values(), key=lambda r: r.base)
        self.names: tuple[str, ...] = tuple(r.name for r in regions) + (REGION_OTHER,)
        self.other_id = len(regions)
        bases = np.array([r.base for r in regions], dtype=np.int64)
        ends = np.array([r.base + max(r.size_bytes, 1) - 1 for r in regions],
                        dtype=np.int64)
        self._line_start = bases // line_bytes
        self._line_end = ends // line_bytes
        self._page_start = bases // page_bytes
        self._page_end = ends // page_bytes

    @property
    def num_regions(self) -> int:
        """Number of classification buckets, including ``other``."""
        return self.other_id + 1

    def _classify(
        self, blocks: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=np.int64)
        if starts.size == 0:
            return np.full(blocks.size, self.other_id, dtype=np.int64)
        idx = np.searchsorted(starts, blocks, side="right") - 1
        safe = np.maximum(idx, 0)
        inside = (idx >= 0) & (blocks <= ends[safe])
        return np.where(inside, safe, self.other_id)

    def classify_lines(self, lines: np.ndarray) -> np.ndarray:
        """Region id of each cache-line number."""
        return self._classify(lines, self._line_start, self._line_end)

    def classify_pages(self, pages: np.ndarray) -> np.ndarray:
        """Region id of each page number."""
        return self._classify(pages, self._page_start, self._page_end)
