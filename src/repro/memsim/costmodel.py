"""First-order machine time model.

Combines the op-count model (compute work) with the hierarchy replay
(memory stalls) into modelled seconds on a given machine:

``time = (instructions / IPC
          + sum_level hits_level * latency_level
          + branch_mispredicts * penalty) / (frequency * effective_cores)``

The model's purpose is *ranking and ratios* (who wins, by roughly what
factor — the Table 5/6 reproduction target), not absolute wall-clock
prediction; DESIGN.md §6 records this deviation explicitly.  Parallel
efficiency follows a simple saturation law: memory-bound algorithms stop
scaling once the memory system saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.hierarchy import HierarchyStats
from repro.memsim.machines import MachineSpec
from repro.memsim.opcounts import OpCounts

__all__ = ["CostModel", "modeled_seconds"]

# memory-parallelism cap: a multicore machine overlaps this many DRAM
# accesses, so effective parallel speedup for the memory component is
# min(cores, _MEMORY_PARALLELISM)
_MEMORY_PARALLELISM = 24.0


@dataclass(frozen=True)
class CostModel:
    """Breakdown of the modelled execution time (cycles and seconds)."""

    compute_cycles: float
    l1_cycles: float
    l2_cycles: float
    l3_cycles: float
    dram_cycles: float
    branch_cycles: float
    tlb_cycles: float
    seconds_single_core: float
    seconds_parallel: float

    @property
    def total_cycles(self) -> float:
        return (
            self.compute_cycles
            + self.l1_cycles
            + self.l2_cycles
            + self.l3_cycles
            + self.dram_cycles
            + self.branch_cycles
            + self.tlb_cycles
        )


def modeled_seconds(
    ops: OpCounts,
    mem: HierarchyStats,
    machine: MachineSpec,
    threads: int | None = None,
) -> CostModel:
    """Model the run time of an algorithm on ``machine``.

    ``ops`` comes from :mod:`repro.memsim.opcounts`, ``mem`` from a
    hierarchy replay with the (scaled) machine spec.  ``threads``
    defaults to all cores.
    """
    threads = machine.cores if threads is None else threads
    hz = machine.frequency_ghz * 1e9

    compute = ops.instructions / machine.base_ipc
    l1 = mem.l1_hits * machine.l1_latency_cycles
    l2 = mem.l2_hits * machine.l2_latency_cycles
    l3 = mem.l3_hits * machine.l3_latency_cycles
    dram = mem.dram_accesses * machine.memory_latency_cycles
    branch = ops.branch_mispredicts * machine.branch_miss_penalty_cycles
    # a TLB miss costs a page-walk (~2 cache accesses, first order)
    tlb = mem.dtlb_misses * 2.0 * machine.l2_latency_cycles

    single = (compute + l1 + l2 + l3 + dram + branch + tlb) / hz

    cpu_part = (compute + l1 + l2 + branch) / max(threads, 1)
    mem_part = (l3 + dram + tlb) / min(max(threads, 1), _MEMORY_PARALLELISM)
    parallel = (cpu_part + mem_part) / hz

    return CostModel(
        compute_cycles=compute,
        l1_cycles=l1,
        l2_cycles=l2,
        l3_cycles=l3,
        dram_cycles=dram,
        branch_cycles=branch,
        tlb_cycles=tlb,
        seconds_single_core=single,
        seconds_parallel=parallel,
    )
