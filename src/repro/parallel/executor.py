"""Real thread-pool execution of the phase-1 workload.

The vectorised kernels spend their time inside NumPy ufuncs, which
release the GIL, so a :class:`~concurrent.futures.ThreadPoolExecutor`
yields genuine concurrency for the tile-level parallelism of Section 4.6.
Results are bit-identical to the sequential phase because triangle
counting is a pure reduction.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.count import _batched_pair_count
from repro.core.structure import LotusGraph
from repro.core.tiling import Tile, tiles_for_phase1
from repro.obs import get_registry
from repro.util.arrays import concat_ranges

__all__ = ["count_hhh_hhn_parallel", "run_phase1_tile"]


def run_phase1_tile(lotus: LotusGraph, tile: Tile) -> int:
    """Count the H2H hits of one tile: pairs (h1, h2) where h1 is the
    neighbour at offsets [start, stop) of the tile's vertex and h2 any
    earlier neighbour (Algorithm 3 lines 3-5 restricted to the tile)."""
    hs = lotus.he.neighbors(tile.vertex).astype(np.int64, copy=False)
    if tile.stop <= tile.start or hs.size < 2:
        return 0
    rows = np.arange(max(tile.start, 1), tile.stop, dtype=np.int64)
    if rows.size == 0:
        return 0
    h1 = np.repeat(hs[rows], rows)
    h2 = hs[concat_ranges(np.zeros(rows.size, dtype=np.int64), rows)]
    return int(np.count_nonzero(lotus.h2h.test_pairs(h1, h2)))


def _run_traced_tile(lotus: LotusGraph, tile: Tile, parent) -> int:
    """One tile under a span (only called while observability is enabled)."""
    registry = get_registry()
    with registry.span("tile", parent=parent) as span:
        hits = run_phase1_tile(lotus, tile)
        span.set("vertex", tile.vertex)
        span.set("start", tile.start)
        span.set("stop", tile.stop)
        span.set("pair_work", tile.work)
        span.set("hits", hits)
    registry.histogram("parallel.tile_work").observe(tile.work)
    return hits


def count_hhh_hhn_parallel(
    lotus: LotusGraph,
    threads: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
) -> int:
    """Phase 1 executed on a thread pool over squared-edge tiles.

    ``p = 2 * threads`` partitions per heavy vertex, as in Section 5.8.
    Returns the HHH+HHN total (identical to the sequential count).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    registry = get_registry()
    with registry.span(
        "phase1-parallel", threads=threads, policy=policy
    ) as phase_span:
        tiles = tiles_for_phase1(
            lotus.he,
            partitions=2 * threads,
            policy=policy,
            degree_threshold=degree_threshold,
        )
        phase_span.set("tiles", len(tiles))
        if not tiles:
            phase_span.set("hits", 0)
            return 0
        registry.counter("parallel.tiles").add(len(tiles))
        if threads == 1:
            if registry.enabled:
                total = sum(_run_traced_tile(lotus, t, phase_span) for t in tiles)
            else:
                total = sum(run_phase1_tile(lotus, t) for t in tiles)
            phase_span.set("hits", total)
            return total
        # deal tiles into a few batches per worker (round-robin keeps the
        # per-batch work balanced since tiles are already work-equalised);
        # one Python task per batch keeps dispatch overhead negligible
        num_batches = threads * 4
        batches: list[list[Tile]] = [[] for _ in range(num_batches)]
        for i, tile in enumerate(tiles):
            batches[i % num_batches].append(tile)
        registry.counter("parallel.batches").add(num_batches)

        he_deg = lotus.he.degrees()

        def is_whole_row(t: Tile) -> bool:
            return t.start == 0 and t.stop == int(he_deg[t.vertex])

        def run_batch(batch: list[Tile]) -> int:
            # whole-row tiles go through the cross-vertex vectorised kernel
            # (one NumPy pass per batch); split tiles run individually
            whole_rows = np.array(
                [t.vertex for t in batch if is_whole_row(t)], dtype=np.int64
            )
            total = _batched_pair_count(lotus, whole_rows) if whole_rows.size else 0
            total += sum(
                run_phase1_tile(lotus, t) for t in batch if not is_whole_row(t)
            )
            return total

        def run_batch_traced(batch: list[Tile], submitted: float) -> int:
            # spans cross the thread boundary: the phase span is handed over
            # as the explicit parent (worker threads have no span stack)
            started = time.perf_counter()
            with registry.span("batch", parent=phase_span) as span:
                total = sum(_run_traced_tile(lotus, t, span) for t in batch)
                span.set("tiles", len(batch))
                span.set("queue_wait_s", started - submitted)
                span.set("hits", total)
            registry.histogram("parallel.queue_wait_s", _WAIT_BUCKETS).observe(
                started - submitted
            )
            return total

        with ThreadPoolExecutor(max_workers=threads) as pool:
            if registry.enabled:
                submitted = time.perf_counter()
                futures = [
                    pool.submit(run_batch_traced, batch, submitted)
                    for batch in batches
                ]
                total = sum(f.result() for f in futures)
            else:
                total = sum(pool.map(run_batch, batches))
        phase_span.set("hits", total)
        return total


# sub-millisecond to ~1 s: thread-pool queue waits on tile batches
_WAIT_BUCKETS = tuple(1e-6 * (4 ** i) for i in range(11))
