"""Real thread-pool execution of the phase-1 workload.

The vectorised kernels spend their time inside NumPy ufuncs, which
release the GIL, so a :class:`~concurrent.futures.ThreadPoolExecutor`
yields genuine concurrency for the tile-level parallelism of Section 4.6.
Results are bit-identical to the sequential phase because triangle
counting is a pure reduction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.count import _batched_pair_count
from repro.core.structure import LotusGraph
from repro.core.tiling import Tile, tiles_for_phase1
from repro.util.arrays import concat_ranges

__all__ = ["count_hhh_hhn_parallel", "run_phase1_tile"]


def run_phase1_tile(lotus: LotusGraph, tile: Tile) -> int:
    """Count the H2H hits of one tile: pairs (h1, h2) where h1 is the
    neighbour at offsets [start, stop) of the tile's vertex and h2 any
    earlier neighbour (Algorithm 3 lines 3-5 restricted to the tile)."""
    hs = lotus.he.neighbors(tile.vertex).astype(np.int64, copy=False)
    if tile.stop <= tile.start or hs.size < 2:
        return 0
    rows = np.arange(max(tile.start, 1), tile.stop, dtype=np.int64)
    if rows.size == 0:
        return 0
    h1 = np.repeat(hs[rows], rows)
    h2 = hs[concat_ranges(np.zeros(rows.size, dtype=np.int64), rows)]
    return int(np.count_nonzero(lotus.h2h.test_pairs(h1, h2)))


def count_hhh_hhn_parallel(
    lotus: LotusGraph,
    threads: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
) -> int:
    """Phase 1 executed on a thread pool over squared-edge tiles.

    ``p = 2 * threads`` partitions per heavy vertex, as in Section 5.8.
    Returns the HHH+HHN total (identical to the sequential count).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    tiles = tiles_for_phase1(
        lotus.he, partitions=2 * threads, policy=policy, degree_threshold=degree_threshold
    )
    if not tiles:
        return 0
    if threads == 1:
        return sum(run_phase1_tile(lotus, t) for t in tiles)
    # deal tiles into a few batches per worker (round-robin keeps the
    # per-batch work balanced since tiles are already work-equalised);
    # one Python task per batch keeps dispatch overhead negligible
    num_batches = threads * 4
    batches: list[list[Tile]] = [[] for _ in range(num_batches)]
    for i, tile in enumerate(tiles):
        batches[i % num_batches].append(tile)

    he_deg = lotus.he.degrees()

    def is_whole_row(t: Tile) -> bool:
        return t.start == 0 and t.stop == int(he_deg[t.vertex])

    def run_batch(batch: list[Tile]) -> int:
        # whole-row tiles go through the cross-vertex vectorised kernel
        # (one NumPy pass per batch); split tiles run individually
        whole_rows = np.array(
            [t.vertex for t in batch if is_whole_row(t)], dtype=np.int64
        )
        total = _batched_pair_count(lotus, whole_rows) if whole_rows.size else 0
        total += sum(run_phase1_tile(lotus, t) for t in batch if not is_whole_row(t))
        return total

    with ThreadPoolExecutor(max_workers=threads) as pool:
        return sum(pool.map(run_batch, batches))
