"""Real thread-pool execution of the phase-1 workload.

The vectorised kernels spend their time inside NumPy ufuncs, which
release the GIL, so a :class:`~concurrent.futures.ThreadPoolExecutor`
yields genuine concurrency for the tile-level parallelism of Section 4.6.
Results are bit-identical to the sequential phase because triangle
counting is a pure reduction.

Scheduling-dependent metrics (tile/batch counts, queue waits) are
namespaced ``parallel.sched.*`` — the run ledger classifies that prefix
as the never-gated ``timing`` tolerance class, so runs with different
worker counts or backends still produce identical *deterministic*
metric snapshots (see ``docs/testing.md``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.count import _batched_pair_count
from repro.core.structure import LotusGraph
from repro.core.tiling import Tile, tiles_for_phase1
from repro.obs import get_registry
from repro.util.arrays import concat_ranges

__all__ = [
    "count_hhh_hhn_parallel",
    "count_hhh_hhn_parallel_split",
    "run_phase1_tile",
    "run_tile_batch",
]


def run_phase1_tile(lotus: LotusGraph, tile: Tile) -> int:
    """Count the H2H hits of one tile: pairs (h1, h2) where h1 is the
    neighbour at offsets [start, stop) of the tile's vertex and h2 any
    earlier neighbour (Algorithm 3 lines 3-5 restricted to the tile)."""
    hs = lotus.he.neighbors(tile.vertex).astype(np.int64, copy=False)
    if tile.stop <= tile.start or hs.size < 2:
        return 0
    rows = np.arange(max(tile.start, 1), tile.stop, dtype=np.int64)
    if rows.size == 0:
        return 0
    h1 = np.repeat(hs[rows], rows)
    h2 = hs[concat_ranges(np.zeros(rows.size, dtype=np.int64), rows)]
    return int(np.count_nonzero(lotus.h2h.test_pairs(h1, h2)))


def run_tile_batch(lotus: LotusGraph, batch: list[Tile]) -> tuple[int, int]:
    """Execute a batch of tiles, returning the ``(hhh, hhn)`` split.

    Whole-row tiles go through the cross-vertex vectorised kernel (one
    NumPy pass per hub class); split tiles run individually.  A tile is
    HHH work when its vertex is itself a hub, HHN otherwise — the split
    falls out of cutting at ``hub_count`` exactly as in the sequential
    :func:`repro.core.count.count_hhh_hhn`.  Used by both the thread
    backend (below) and the process backend
    (:mod:`repro.parallel.procpool`).
    """
    he_deg = lotus.he.degrees()
    hc = lotus.hub_count
    totals = [0, 0]  # [hhh, hhn]
    whole: tuple[list[int], list[int]] = ([], [])
    for t in batch:
        cls = 0 if t.vertex < hc else 1
        if t.start == 0 and t.stop == int(he_deg[t.vertex]):
            whole[cls].append(t.vertex)
        else:
            totals[cls] += run_phase1_tile(lotus, t)
    for cls in (0, 1):
        if whole[cls]:
            rows = np.asarray(whole[cls], dtype=np.int64)
            totals[cls] += _batched_pair_count(lotus, rows)
    return totals[0], totals[1]


def _run_traced_tile(lotus: LotusGraph, tile: Tile, parent) -> int:
    """One tile under a span (only called while observability is enabled)."""
    registry = get_registry()
    with registry.span("tile", parent=parent) as span:
        hits = run_phase1_tile(lotus, tile)
        span.set("vertex", tile.vertex)
        span.set("start", tile.start)
        span.set("stop", tile.stop)
        span.set("pair_work", tile.work)
        span.set("hits", hits)
    registry.histogram("parallel.sched.tile_work").observe(tile.work)
    return hits


def count_hhh_hhn_parallel(
    lotus: LotusGraph,
    threads: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
) -> int:
    """Phase 1 executed on a thread pool over squared-edge tiles.

    ``p = 2 * threads`` partitions per heavy vertex, as in Section 5.8.
    Returns the HHH+HHN total (identical to the sequential count).
    """
    return sum(
        count_hhh_hhn_parallel_split(
            lotus, threads=threads, policy=policy,
            degree_threshold=degree_threshold,
        )
    )


def count_hhh_hhn_parallel_split(
    lotus: LotusGraph,
    threads: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
) -> tuple[int, int]:
    """Like :func:`count_hhh_hhn_parallel` but returns ``(hhh, hhn)``."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    registry = get_registry()
    with registry.span(
        "phase1-parallel", threads=threads, policy=policy
    ) as phase_span:
        tiles = tiles_for_phase1(
            lotus.he,
            partitions=2 * threads,
            policy=policy,
            degree_threshold=degree_threshold,
        )
        phase_span.set("tiles", len(tiles))
        if not tiles:
            phase_span.set("hits", 0)
            return 0, 0
        registry.counter("parallel.sched.tiles").add(len(tiles))
        if threads == 1:
            if registry.enabled:
                hc = lotus.hub_count
                hhh = hhn = 0
                for t in tiles:
                    hits = _run_traced_tile(lotus, t, phase_span)
                    if t.vertex < hc:
                        hhh += hits
                    else:
                        hhn += hits
            else:
                hhh, hhn = run_tile_batch(lotus, tiles)
            phase_span.set("hits", hhh + hhn)
            return hhh, hhn
        # deal tiles into a few batches per worker (round-robin keeps the
        # per-batch work balanced since tiles are already work-equalised);
        # one Python task per batch keeps dispatch overhead negligible
        num_batches = threads * 4
        batches: list[list[Tile]] = [[] for _ in range(num_batches)]
        for i, tile in enumerate(tiles):
            batches[i % num_batches].append(tile)
        registry.counter("parallel.sched.batches").add(num_batches)

        def run_batch_traced(batch: list[Tile], submitted: float) -> tuple[int, int]:
            # spans cross the thread boundary: the phase span is handed over
            # as the explicit parent (worker threads have no span stack)
            started = time.perf_counter()
            hc = lotus.hub_count
            with registry.span("batch", parent=phase_span) as span:
                hhh = hhn = 0
                for t in batch:
                    hits = _run_traced_tile(lotus, t, span)
                    if t.vertex < hc:
                        hhh += hits
                    else:
                        hhn += hits
                span.set("tiles", len(batch))
                span.set("queue_wait_s", started - submitted)
                span.set("hits", hhh + hhn)
            registry.histogram("parallel.sched.queue_wait_s", _WAIT_BUCKETS).observe(
                started - submitted
            )
            return hhh, hhn

        with ThreadPoolExecutor(max_workers=threads) as pool:
            if registry.enabled:
                submitted = time.perf_counter()
                futures = [
                    pool.submit(run_batch_traced, batch, submitted)
                    for batch in batches
                ]
                parts = [f.result() for f in futures]
            else:
                parts = list(
                    pool.map(lambda batch: run_tile_batch(lotus, batch), batches)
                )
        hhh = sum(p[0] for p in parts)
        hhn = sum(p[1] for p in parts)
        phase_span.set("hits", hhh + hhn)
        return hhh, hhn


# sub-millisecond to ~1 s: thread-pool queue waits on tile batches
_WAIT_BUCKETS = tuple(1e-6 * (4 ** i) for i in range(11))
