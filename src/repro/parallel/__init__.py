"""Parallel execution substrate.

The paper parallelises with pthreads + work stealing (Section 5.1.3) and
evaluates load balance as thread idle time (Table 9).  Python threads
cannot reproduce hardware scheduling, so this package provides:

* :mod:`repro.parallel.partition` — global edge-balanced partitioning
  (the Table 9 comparator policy) alongside the per-vertex tilings of
  :mod:`repro.core.tiling`;
* :mod:`repro.parallel.scheduler` — a deterministic scheduler simulator
  computing per-thread busy/idle time from exact per-tile work, for both
  dynamic (work-stealing-like) and static assignment;
* :mod:`repro.parallel.executor` — a real thread-pool backend running
  the phase-1 tiles concurrently (NumPy kernels release the GIL in their
  inner loops).
"""

from repro.parallel.partition import edge_balanced_global_tiles
from repro.parallel.scheduler import ScheduleResult, simulate_schedule, idle_time_pct
from repro.parallel.executor import count_hhh_hhn_parallel

__all__ = [
    "edge_balanced_global_tiles",
    "ScheduleResult",
    "simulate_schedule",
    "idle_time_pct",
    "count_hhh_hhn_parallel",
]
