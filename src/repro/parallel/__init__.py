"""Parallel execution substrate.

The paper parallelises with pthreads + work stealing (Section 5.1.3) and
evaluates load balance as thread idle time (Table 9).  Python threads
cannot reproduce hardware scheduling, so this package provides:

* :mod:`repro.parallel.partition` — global edge-balanced partitioning
  (the Table 9 comparator policy) alongside the per-vertex tilings of
  :mod:`repro.core.tiling`;
* :mod:`repro.parallel.scheduler` — the scheduling layer: a deterministic
  simulator (per-thread busy/idle time from exact per-tile work), the
  chunk autotuner, and the flat-array work-stealing deques;
* :mod:`repro.parallel.executor` — a real thread-pool backend running
  the phase-1 tiles concurrently (NumPy kernels release the GIL in their
  inner loops);
* :mod:`repro.parallel.procpool` — a process-pool backend sharing the
  Lotus structure and scheduler state via ``multiprocessing.shared_memory``;
* :mod:`repro.parallel.backend` — selection layer mapping
  ``auto | sequential | threads | processes`` onto the above.
"""

from repro.parallel.backend import BACKENDS, BackendDecision, resolve_backend, run_phase1
from repro.parallel.executor import count_hhh_hhn_parallel, count_hhh_hhn_parallel_split
from repro.parallel.partition import edge_balanced_global_tiles
from repro.parallel.procpool import WorkerCrashError, count_hhh_hhn_processes
from repro.parallel.scheduler import (
    ScheduleResult,
    TileScheduler,
    chunk_tiles,
    idle_time_pct,
    plan_assignment,
    simulate_schedule,
)

__all__ = [
    "BACKENDS",
    "BackendDecision",
    "ScheduleResult",
    "TileScheduler",
    "WorkerCrashError",
    "chunk_tiles",
    "count_hhh_hhn_parallel",
    "count_hhh_hhn_parallel_split",
    "count_hhh_hhn_processes",
    "edge_balanced_global_tiles",
    "idle_time_pct",
    "plan_assignment",
    "resolve_backend",
    "run_phase1",
    "simulate_schedule",
]
