"""Global edge-balanced partitioning — the Table 9 comparator.

The paper's baseline policy "divides edges into 256 * #threads
partitions" by edge *count*, ignoring that in phase 1 the work of the
neighbour at offset ``i`` is proportional to ``i`` (it pairs with all
earlier neighbours).  The resulting tiles have equal sizes but wildly
unequal pair work — which is what Squared Edge Tiling fixes.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiling import Tile
from repro.graph.csr import OrientedGraph

__all__ = ["edge_balanced_global_tiles"]


def edge_balanced_global_tiles(he: OrientedGraph, num_partitions: int) -> list[Tile]:
    """Cut the concatenated HE neighbour lists into ``num_partitions``
    contiguous ranges of (nearly) equal edge count; report each range's
    exact phase-1 pair work.

    A range may span multiple vertices; it is emitted as one
    :class:`Tile` per (vertex, offset-range) piece, all pieces of a
    range sharing the same partition so the scheduler sees
    ``num_partitions`` units.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    m = he.num_edges
    indptr = he.indptr
    if m == 0:
        return []
    cuts = np.linspace(0, m, num_partitions + 1).astype(np.int64)
    tiles: list[Tile] = []
    for k in range(num_partitions):
        lo, hi = int(cuts[k]), int(cuts[k + 1])
        if hi <= lo:
            continue
        # vertices whose rows intersect [lo, hi)
        v_first = int(np.searchsorted(indptr, lo, side="right")) - 1
        v_last = int(np.searchsorted(indptr, hi, side="left")) - 1
        work = 0
        start_off = lo - int(indptr[v_first])
        for v in range(v_first, v_last + 1):
            row_start = int(indptr[v])
            row_end = int(indptr[v + 1])
            a = start_off if v == v_first else 0
            b = (hi - row_start) if v == v_last else (row_end - row_start)
            # pair work of offsets [a, b): sum_{i=a}^{b-1} i
            work += (b * (b - 1) - a * (a - 1)) // 2
        tiles.append(Tile(vertex=v_first, start=lo, stop=hi, work=work))
    return tiles
