"""Backend selection for the phase-1 workload.

Three execution backends produce bit-identical counts:

* ``sequential`` — the vectorised single-pass of
  :func:`repro.core.count.count_hhh_hhn`;
* ``threads``    — :mod:`repro.parallel.executor` (NumPy releases the
  GIL, so threads help when tiles are large);
* ``processes``  — :mod:`repro.parallel.procpool` (shared-memory pool;
  immune to the GIL, pays a fork + one structure copy).

A fourth backend, ``distributed`` (:mod:`repro.dist.runtime`), shards
the *whole* count — all four phases — across worker processes that each
own a partition of the graph, so it does not route through
:func:`run_phase1` (a phase-1-only dispatcher over a prebuilt Lotus
structure).  :func:`repro.core.count.count_triangles_lotus` branches to
it before the structure is built; see ``docs/dist.md``.

``auto`` picks a backend from the workload shape: small HE sub-graphs
are not worth any dispatch overhead; Python-level kernels need
processes; everything else uses threads.  ``auto`` never selects
``distributed`` — sharding is an explicit choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.structure import LotusGraph
from repro.obs import get_registry

__all__ = ["BACKENDS", "BackendDecision", "resolve_backend", "run_phase1"]

BACKENDS = ("auto", "sequential", "threads", "processes", "distributed")

# below this many HE arcs, parallel dispatch costs more than it saves
_SMALL_HUB_EDGES = 1 << 15


@dataclass(frozen=True)
class BackendDecision:
    """Resolved backend plus the reason it was chosen (for the ledger)."""

    backend: str
    workers: int
    reason: str


def resolve_backend(
    backend: str = "auto",
    workers: int = 4,
    kernel: str = "vectorized",
    hub_edges: int | None = None,
) -> BackendDecision:
    """Resolve ``auto`` (or validate an explicit choice) to a concrete backend.

    ``kernel`` describes where the inner loop runs: ``"vectorized"``
    kernels release the GIL inside NumPy, ``"python"`` kernels hold it
    and only scale on processes.  ``hub_edges`` (|HE| arcs) gates the
    small-graph cutoff.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if backend != "auto":
        return BackendDecision(backend, workers, "explicit")
    if workers == 1:
        return BackendDecision("sequential", 1, "workers=1")
    if hub_edges is not None and hub_edges < _SMALL_HUB_EDGES:
        return BackendDecision(
            "sequential", 1, f"hub_edges={hub_edges} < {_SMALL_HUB_EDGES}"
        )
    if kernel == "python":
        return BackendDecision("processes", workers, "python-level kernel")
    return BackendDecision("threads", workers, "vectorized kernel")


def run_phase1(
    lotus: LotusGraph,
    backend: str = "auto",
    workers: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
    graph_manifest: dict | None = None,
    fault_worker: int | None = None,
) -> tuple[int, int]:
    """Run phase 1 (HHH + HHN) on the chosen backend; returns the split.

    ``graph_manifest`` (process backend only) reuses an existing
    shared-memory segment of ``lotus`` — e.g. the serving cache's — so
    the dispatch skips the per-call structure copy; the caller keeps
    ownership of that segment.  ``fault_worker`` (tests only) is passed
    through to :func:`repro.parallel.procpool.count_hhh_hhn_processes`
    to crash one worker and exercise the failure path.
    """
    if backend == "distributed":
        raise ValueError(
            "the distributed backend shards whole-graph counting, not "
            "phase 1; call count_triangles_lotus(backend='distributed') "
            "or repro.dist.runtime.run_distributed_count instead"
        )
    decision = resolve_backend(
        backend, workers, hub_edges=lotus.hub_edges
    )
    registry = get_registry()
    registry.counter(f"parallel.sched.backend.{decision.backend}").add(1)
    if decision.backend == "sequential":
        from repro.core.count import count_hhh_hhn

        return count_hhh_hhn(lotus)
    if decision.backend == "threads":
        from repro.parallel.executor import count_hhh_hhn_parallel_split

        return count_hhh_hhn_parallel_split(
            lotus,
            threads=decision.workers,
            policy=policy,
            degree_threshold=degree_threshold,
        )
    from repro.parallel.procpool import count_hhh_hhn_processes

    return count_hhh_hhn_processes(
        lotus,
        workers=decision.workers,
        policy=policy,
        degree_threshold=degree_threshold,
        graph_manifest=graph_manifest,
        fault_worker=fault_worker,
    )
