"""Deterministic scheduler simulation and idle-time accounting (Table 9).

Given exact per-tile work (pair comparisons — the quantity the tilings
control), simulate ``threads`` workers:

* ``dynamic`` — list scheduling: a free worker immediately takes the next
  tile (the behaviour of the paper's work-stealing runtime when the tile
  queue is shared);
* ``static`` — tiles dealt round-robin up front (no stealing), the
  worst-case comparator.

Idle time per thread is ``makespan - busy``; the paper's Table 9 metric
is the mean idle percentage across threads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.tiling import Tile

__all__ = ["ScheduleResult", "simulate_schedule", "idle_time_pct"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a simulated schedule."""

    threads: int
    makespan: float
    busy: np.ndarray  # per-thread busy time
    total_work: float

    @property
    def idle(self) -> np.ndarray:
        return self.makespan - self.busy

    @property
    def avg_idle_pct(self) -> float:
        """Mean thread idle time as % of the makespan (Table 9 metric)."""
        if self.makespan == 0:
            return 0.0
        return float(100.0 * self.idle.mean() / self.makespan)

    @property
    def speedup(self) -> float:
        """Parallel speedup vs running all work on one thread."""
        if self.makespan == 0:
            return float(self.threads)
        return float(self.total_work / self.makespan)


def simulate_schedule(
    works: np.ndarray | list[float] | list[Tile],
    threads: int,
    policy: str = "dynamic",
) -> ScheduleResult:
    """Simulate scheduling tiles with the given per-tile work.

    ``works`` may be an array of costs or a list of
    :class:`~repro.core.tiling.Tile` (their ``work`` fields are used).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if policy not in ("dynamic", "static"):
        raise ValueError(f"unknown policy {policy!r}")
    if len(works) and isinstance(works[0], Tile):
        costs = np.array([t.work for t in works], dtype=np.float64)
    else:
        costs = np.asarray(works, dtype=np.float64)
    if costs.size and costs.min() < 0:
        raise ValueError("work must be non-negative")
    busy = np.zeros(threads, dtype=np.float64)
    if costs.size == 0:
        return ScheduleResult(threads, 0.0, busy, 0.0)

    if policy == "static":
        for i, c in enumerate(costs):
            busy[i % threads] += c
        makespan = float(busy.max())
    else:
        # dynamic list scheduling: next tile goes to the earliest-free thread
        heap = [(0.0, t) for t in range(threads)]
        heapq.heapify(heap)
        for c in costs:
            finish, t = heapq.heappop(heap)
            busy[t] += c
            heapq.heappush(heap, (finish + c, t))
        makespan = float(max(f for f, _ in heap))
    return ScheduleResult(threads, makespan, busy, float(costs.sum()))


def idle_time_pct(
    works: np.ndarray | list[float] | list[Tile],
    threads: int,
    policy: str = "dynamic",
) -> float:
    """Convenience wrapper returning only the Table-9 idle percentage."""
    return simulate_schedule(works, threads, policy).avg_idle_pct
