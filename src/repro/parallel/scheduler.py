"""Tile scheduling: work-stealing deques, chunk autotuning, simulation.

Three layers:

* **Simulation** (Table 9): given exact per-tile work, compute
  per-thread busy/idle time for ``dynamic`` (shared-queue list
  scheduling — the behaviour of the paper's work-stealing runtime) and
  ``static`` (round-robin, no stealing) policies.
* **Chunk autotuner** (:func:`chunk_tiles`): group consecutive tiles
  into chunks of roughly equal *pair-comparison* cost (the tile cost
  estimate from :mod:`repro.core.tiling`) so dispatch overhead is
  amortised while enough chunks remain for stealing to balance load.
* **Work-stealing deques** (:class:`TileScheduler`): per-worker deques
  over flat integer arrays — owners pop from the front, thieves steal
  from the back.  The arrays can live in ordinary memory (thread tests)
  or in a ``multiprocessing.shared_memory`` segment (the process
  backend), with per-worker locks supplied by the caller.
"""

from __future__ import annotations

import heapq
from contextlib import AbstractContextManager
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tiling import Tile

__all__ = [
    "ScheduleResult",
    "simulate_schedule",
    "idle_time_pct",
    "chunk_tiles",
    "plan_assignment",
    "TileScheduler",
]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a simulated schedule."""

    threads: int
    makespan: float
    busy: np.ndarray  # per-thread busy time
    total_work: float

    @property
    def idle(self) -> np.ndarray:
        return self.makespan - self.busy

    @property
    def avg_idle_pct(self) -> float:
        """Mean thread idle time as % of the makespan (Table 9 metric)."""
        if self.makespan == 0:
            return 0.0
        return float(100.0 * self.idle.mean() / self.makespan)

    @property
    def speedup(self) -> float:
        """Parallel speedup vs running all work on one thread."""
        if self.makespan == 0:
            return float(self.threads)
        return float(self.total_work / self.makespan)


def simulate_schedule(
    works: np.ndarray | list[float] | list[Tile],
    threads: int,
    policy: str = "dynamic",
) -> ScheduleResult:
    """Simulate scheduling tiles with the given per-tile work.

    ``works`` may be an array of costs or a list of
    :class:`~repro.core.tiling.Tile` (their ``work`` fields are used).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if policy not in ("dynamic", "static"):
        raise ValueError(f"unknown policy {policy!r}")
    if len(works) and isinstance(works[0], Tile):
        costs = np.array([t.work for t in works], dtype=np.float64)
    else:
        costs = np.asarray(works, dtype=np.float64)
    if costs.size and costs.min() < 0:
        raise ValueError("work must be non-negative")
    busy = np.zeros(threads, dtype=np.float64)
    if costs.size == 0:
        return ScheduleResult(threads, 0.0, busy, 0.0)

    if policy == "static":
        for i, c in enumerate(costs):
            busy[i % threads] += c
        makespan = float(busy.max())
    else:
        # dynamic list scheduling: next tile goes to the earliest-free thread
        heap = [(0.0, t) for t in range(threads)]
        heapq.heapify(heap)
        for c in costs:
            finish, t = heapq.heappop(heap)
            busy[t] += c
            heapq.heappush(heap, (finish + c, t))
        makespan = float(max(f for f, _ in heap))
    return ScheduleResult(threads, makespan, busy, float(costs.sum()))


def idle_time_pct(
    works: np.ndarray | list[float] | list[Tile],
    threads: int,
    policy: str = "dynamic",
) -> float:
    """Convenience wrapper returning only the Table-9 idle percentage."""
    return simulate_schedule(works, threads, policy).avg_idle_pct


# --------------------------------------------------------------------------
# chunk autotuning + work-stealing deques (the live scheduler)
# --------------------------------------------------------------------------

def chunk_tiles(
    tiles: Sequence[Tile],
    workers: int,
    chunks_per_worker: int = 8,
) -> np.ndarray:
    """Group consecutive tiles into chunks of ~equal pair-comparison cost.

    Returns an indptr-style boundary array: chunk ``c`` covers tiles
    ``[out[c], out[c+1])``.  The autotuner targets
    ``total_work / (workers * chunks_per_worker)`` per chunk — small
    enough that stealing can rebalance a skewed tail, large enough that
    per-chunk dispatch (a queue pop + one lock round-trip) is amortised
    over thousands of pair tests.  A tile is never split further: tiles
    are already work-bounded by the squared-edge tiling.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunks_per_worker < 1:
        raise ValueError("chunks_per_worker must be >= 1")
    n = len(tiles)
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    total = sum(t.work for t in tiles)
    target = max(total / (workers * chunks_per_worker), 1.0)
    bounds = [0]
    acc = 0
    for i, tile in enumerate(tiles):
        acc += tile.work
        if acc >= target and i + 1 < n:
            bounds.append(i + 1)
            acc = 0
    bounds.append(n)
    return np.asarray(bounds, dtype=np.int64)


def plan_assignment(
    chunk_costs: np.ndarray | list[float], workers: int
) -> list[list[int]]:
    """Deal chunks onto per-worker deques, balancing total cost (LPT).

    Chunks are assigned greedily in descending-cost order to the
    currently least-loaded worker; each deque is then sorted by chunk id
    so owners consume in tile order (good locality — consecutive chunks
    share vertex rows).  Deterministic: ties break on worker id.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    costs = np.asarray(chunk_costs, dtype=np.float64)
    deques: list[list[int]] = [[] for _ in range(workers)]
    loads = [(0.0, w) for w in range(workers)]
    heapq.heapify(loads)
    order = np.argsort(-costs, kind="stable")
    for chunk in order:
        load, w = heapq.heappop(loads)
        deques[w].append(int(chunk))
        heapq.heappush(loads, (load + float(costs[chunk]), w))
    for dq in deques:
        dq.sort()
    return deques


class TileScheduler:
    """Work-stealing deques over flat arrays (shared-memory friendly).

    Layout — all arrays may be views into one shared segment:

    * ``queue``  — concatenated per-worker deques of chunk ids;
    * ``bounds`` — ``int64[2 * workers]``: worker ``w`` owns queue slots
      ``[bounds[2w], bounds[2w+1])`` (head inclusive, tail exclusive);
    * ``region`` — ``int64[workers + 1]``: the fixed slot range each
      deque was dealt (heads/tails never leave their region).

    The owner pops from the **front** (``head++`` — preserves tile order
    and locality); a thief takes from the **back** (``--tail`` — steals
    the victim's largest untouched run, minimising further steals).  One
    caller-supplied lock per worker serialises access to that worker's
    ``(head, tail)`` pair; with a static chunk set this is the entire
    synchronisation surface.
    """

    def __init__(
        self,
        queue: np.ndarray,
        bounds: np.ndarray,
        region: np.ndarray,
        locks: Sequence[AbstractContextManager],
    ) -> None:
        self.queue = queue
        self.bounds = bounds
        self.region = region
        self.locks = list(locks)
        self.workers = len(self.locks)
        if bounds.shape != (2 * self.workers,):
            raise ValueError("bounds must be int64[2 * workers]")
        if region.shape != (self.workers + 1,):
            raise ValueError("region must be int64[workers + 1]")

    @classmethod
    def build(
        cls,
        deques: list[list[int]],
        locks: Sequence[AbstractContextManager],
        queue: np.ndarray | None = None,
        bounds: np.ndarray | None = None,
        region: np.ndarray | None = None,
    ) -> "TileScheduler":
        """Initialise scheduler arrays from :func:`plan_assignment` output.

        Pass pre-allocated ``queue`` / ``bounds`` / ``region`` views
        (e.g. shared-memory backed) to fill them in place; fresh arrays
        are allocated otherwise.
        """
        workers = len(deques)
        total = sum(len(d) for d in deques)
        if queue is None:
            queue = np.zeros(max(total, 1), dtype=np.int64)
        if bounds is None:
            bounds = np.zeros(2 * workers, dtype=np.int64)
        if region is None:
            region = np.zeros(workers + 1, dtype=np.int64)
        slot = 0
        for w, dq in enumerate(deques):
            region[w] = slot
            bounds[2 * w] = slot
            for chunk in dq:
                queue[slot] = chunk
                slot += 1
            bounds[2 * w + 1] = slot
        region[workers] = slot
        return cls(queue, bounds, region, locks)

    def pop_local(self, worker: int) -> int | None:
        """Owner path: take the front chunk of ``worker``'s deque."""
        with self.locks[worker]:
            head = int(self.bounds[2 * worker])
            tail = int(self.bounds[2 * worker + 1])
            if head >= tail:
                return None
            self.bounds[2 * worker] = head + 1
            return int(self.queue[head])

    def steal(self, worker: int) -> tuple[int, int] | None:
        """Thief path: scan victims round-robin, take from the back.

        Returns ``(chunk, victim)`` or ``None`` when every deque is dry.
        """
        for step in range(1, self.workers):
            victim = (worker + step) % self.workers
            with self.locks[victim]:
                head = int(self.bounds[2 * victim])
                tail = int(self.bounds[2 * victim + 1])
                if head >= tail:
                    continue
                self.bounds[2 * victim + 1] = tail - 1
                return int(self.queue[tail - 1]), victim
        return None

    def next_chunk(self, worker: int) -> tuple[int | None, bool]:
        """One scheduling decision: ``(chunk, was_stolen)`` or ``(None, _)``."""
        chunk = self.pop_local(worker)
        if chunk is not None:
            return chunk, False
        stolen = self.steal(worker)
        if stolen is None:
            return None, False
        return stolen[0], True

    def remaining(self) -> int:
        """Chunks not yet claimed (racy under concurrency; exact when idle)."""
        return int(
            sum(
                max(0, int(self.bounds[2 * w + 1]) - int(self.bounds[2 * w]))
                for w in range(self.workers)
            )
        )
