"""Process-pool execution of phase 1 over shared memory.

The thread backend is bounded by the GIL whenever a kernel spends time
in Python bytecode; this backend sidesteps it entirely.  The Lotus
structure is copied once into a ``multiprocessing.shared_memory``
segment (:meth:`repro.core.structure.LotusGraph.to_shared`) and worker
processes rebuild zero-copy views, so per-worker memory overhead is a
few pages regardless of graph size.

Scheduling state — the work-stealing deques of
:class:`repro.parallel.scheduler.TileScheduler` plus the flattened tile
table — lives in a second shared segment, so steals are visible across
processes through ordinary array writes guarded by per-worker locks.

Telemetry crosses the pool boundary for real: when the parent runs with
an enabled registry, a :class:`repro.obs.telemetry.TraceContext` is
pickled into each worker, the worker records spans in its own
in-process registry (true worker-side timestamps, one ``chunk`` child
per executed chunk), and the resulting span trees + metric deltas come
back over a dedicated telemetry queue to be stitched under the parent's
``phase1-processes`` span.  A crashed worker still yields a partial
trace: the survivors' payloads are drained before the crash is raised.

Counts are bit-identical to the sequential phase for any worker count:
every tile is executed exactly once and integer addition is associative.
Both segments are unlinked in a ``finally`` block, including when a
worker crashes (exercised by the fault-injection tests via
``fault_worker``).
"""

from __future__ import annotations

import os
import queue as queue_mod
import time

import numpy as np

from repro.core.structure import LotusGraph
from repro.core.tiling import Tile, tiles_for_phase1
from repro.obs import get_registry
from repro.obs.telemetry import TraceContext, stitch_worker_payloads
from repro.parallel.scheduler import TileScheduler, chunk_tiles, plan_assignment
from repro.util.shm import share_arrays

__all__ = ["WorkerCrashError", "count_hhh_hhn_processes", "FAULT_EXIT_CODE"]

# exit code used by injected worker faults (distinct from signal deaths)
FAULT_EXIT_CODE = 23

# how long the parent waits for telemetry payloads / crash survivors
_TELEMETRY_DRAIN_S = 10.0


class WorkerCrashError(RuntimeError):
    """A worker process died before reporting its partial counts."""

    def __init__(self, message: str, exitcodes: dict[int, int | None]):
        super().__init__(message)
        self.exitcodes = exitcodes


def _preferred_context(start_method: str | None):
    import multiprocessing

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _drain_deques(worker_id: int, lotus, sched, arrs, registry, root_span):
    """Drain the work-stealing deques; one ``chunk`` span per chunk when
    ``registry`` is live (the shared null registry makes them free)."""
    from repro.parallel.executor import run_tile_batch

    chunk_indptr = arrs["chunk_indptr"]
    tv, ts, te, tw = (
        arrs["tile_vertex"], arrs["tile_start"], arrs["tile_stop"], arrs["tile_work"],
    )
    hhh = hhn = 0
    executed = stolen = 0
    while True:
        chunk, was_stolen = sched.next_chunk(worker_id)
        if chunk is None:
            break
        lo, hi = int(chunk_indptr[chunk]), int(chunk_indptr[chunk + 1])
        batch = [
            Tile(int(tv[i]), int(ts[i]), int(te[i]), int(tw[i]))
            for i in range(lo, hi)
        ]
        with registry.span(
            "chunk", parent=root_span, chunk=int(chunk), stolen=bool(was_stolen)
        ) as cspan:
            a, b = run_tile_batch(lotus, batch)
            cspan.set("tiles", hi - lo)
            cspan.set("hits", a + b)
        hhh += a
        hhn += b
        executed += 1
        if was_stolen:
            stolen += 1
    return hhh, hhn, executed, stolen


def _worker_main(
    worker_id: int,
    graph_manifest: dict,
    sched_manifest: dict,
    locks,
    result_queue,
    telemetry_queue,
    trace_wire: dict | None,
    fault_worker: int | None,
) -> None:
    """Worker entry point: attach, drain the deques, report partials."""
    if fault_worker == worker_id:
        # simulate a hard crash (segfault / OOM-kill): no cleanup, no result
        os._exit(FAULT_EXIT_CODE)
    started = time.perf_counter()
    # late import keeps the spawn pickle payload to plain manifests
    from repro.util.shm import attach_arrays

    lotus, graph_handle = LotusGraph.from_shared(graph_manifest)
    sched_handle = attach_arrays(sched_manifest)
    arrs = sched_handle.arrays
    sched = TileScheduler(arrs["queue"], arrs["bounds"], arrs["region"], locks)
    if trace_wire is not None:
        from repro.obs.telemetry import worker_payload, worker_telemetry_session

        # the parent's profiler asks workers to sample themselves by
        # adding this key to the trace wire (TraceContext ignores it)
        profile_interval_ms = trace_wire.get("profile_interval_ms")
        wprofiler = None
        if profile_interval_ms:
            from repro.obs.profiler import SamplingProfiler

            # activate=False: under fork the child inherits the parent's
            # active-profiler global (its thread does not survive), so
            # process-wide activation here would refuse to start
            wprofiler = SamplingProfiler(
                interval_s=float(profile_interval_ms) / 1000.0, activate=False
            ).start()
        try:
            with worker_telemetry_session(
                trace_wire, "worker", worker=worker_id, pid=os.getpid()
            ) as (wreg, wspan):
                hhh, hhn, executed, stolen = _drain_deques(
                    worker_id, lotus, sched, arrs, wreg, wspan
                )
                wspan.set("executed", executed)
                wspan.set("stolen", stolen)
                wspan.set("hits", hhh + hhn)
                wspan.set("wall_s", time.perf_counter() - started)
        finally:
            wprofile = wprofiler.stop() if wprofiler is not None else None
        telemetry_queue.put(
            worker_payload(wreg, worker_id, os.getpid(), profile=wprofile)
        )
    else:
        from repro.obs.registry import NULL_REGISTRY

        hhh, hhn, executed, stolen = _drain_deques(
            worker_id, lotus, sched, arrs, NULL_REGISTRY, None
        )
    result_queue.put(
        {
            "worker": worker_id,
            "hhh": hhh,
            "hhn": hhn,
            "executed": executed,
            "stolen": stolen,
            "wall_s": time.perf_counter() - started,
        }
    )
    del lotus, sched, arrs
    graph_handle.close()
    sched_handle.close()


def _drain_nowait(tele_queue, payloads: list) -> None:
    """Move everything currently readable off the telemetry queue."""
    if tele_queue is None:
        return
    while True:
        try:
            payloads.append(tele_queue.get_nowait())
        except queue_mod.Empty:
            return


def _collect_payloads(tele_queue, expected: int, deadline_s: float) -> list[dict]:
    """Blocking drain until ``expected`` payloads arrive or time is up."""
    payloads: list[dict] = []
    deadline = time.perf_counter() + deadline_s
    while len(payloads) < expected and time.perf_counter() < deadline:
        try:
            payloads.append(tele_queue.get(timeout=0.1))
        except queue_mod.Empty:
            pass
    return payloads


def count_hhh_hhn_processes(
    lotus: LotusGraph,
    workers: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
    chunks_per_worker: int = 8,
    start_method: str | None = None,
    fault_worker: int | None = None,
    graph_manifest: dict | None = None,
) -> tuple[int, int]:
    """Phase 1 on a pool of processes sharing the Lotus structure.

    Returns the ``(hhh, hhn)`` split, bit-identical to the sequential
    :func:`repro.core.count.count_hhh_hhn` for any ``workers``.
    ``fault_worker`` (tests only) makes that worker die with
    ``FAULT_EXIT_CODE`` before touching shared memory; the call then
    raises :class:`WorkerCrashError` after unlinking both segments.
    ``graph_manifest`` lends an existing shared segment already holding
    ``lotus`` (e.g. the serving cache's) — the per-call ``to_shared``
    copy is skipped and the borrowed segment is *not* unlinked here; the
    lender keeps ownership.

    With an enabled registry, each worker runs its own in-process
    registry under the propagated trace context and the resulting
    ``worker`` span trees (real worker-side timestamps, one ``chunk``
    child per chunk, distinct pids) are stitched under the
    ``phase1-processes`` span — including partial trees from the
    survivors of an injected crash.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    registry = get_registry()
    with registry.span(
        "phase1-processes", workers=workers, policy=policy
    ) as phase_span:
        tiles = tiles_for_phase1(
            lotus.he,
            partitions=2 * workers,
            policy=policy,
            degree_threshold=degree_threshold,
        )
        phase_span.set("tiles", len(tiles))
        if not tiles:
            phase_span.set("hits", 0)
            return 0, 0

        bounds = chunk_tiles(tiles, workers, chunks_per_worker)
        num_chunks = int(bounds.size - 1)
        tile_work = np.array([t.work for t in tiles], dtype=np.int64)
        chunk_costs = np.add.reduceat(tile_work.astype(np.float64), bounds[:-1])
        deques = plan_assignment(chunk_costs, workers)
        local_sched = TileScheduler.build(
            deques, locks=[_NULL_LOCK] * workers
        )

        ctx = _preferred_context(start_method)
        if graph_manifest is not None:
            graph_handle = None
            worker_graph_manifest = graph_manifest
        else:
            graph_handle = lotus.to_shared()
            worker_graph_manifest = graph_handle.manifest
        sched_handle = share_arrays(
            {
                "queue": local_sched.queue,
                "bounds": local_sched.bounds,
                "region": local_sched.region,
                "chunk_indptr": bounds,
                "tile_vertex": np.array([t.vertex for t in tiles], dtype=np.int64),
                "tile_start": np.array([t.start for t in tiles], dtype=np.int64),
                "tile_stop": np.array([t.stop for t in tiles], dtype=np.int64),
                "tile_work": tile_work,
            },
            meta={"kind": "tile-scheduler", "workers": workers},
        )
        shm_bytes = (
            graph_handle.nbytes if graph_handle is not None else 0
        ) + sched_handle.nbytes
        registry.counter("parallel.sched.tiles").add(len(tiles))
        registry.counter("parallel.sched.chunks").add(num_chunks)
        registry.gauge("parallel.sched.shm_bytes").set(shm_bytes)
        phase_span.set("chunks", num_chunks)
        phase_span.set("shm_bytes", shm_bytes)

        trace_ctx = TraceContext.from_span(phase_span)
        trace_wire = trace_ctx.to_wire() if trace_ctx is not None else None
        if trace_wire is not None:
            from repro.obs.profiler import get_profiler

            profiler = get_profiler()
            if profiler is not None:
                # ask workers to sample themselves at the parent's rate;
                # their profiles fold back in during stitching
                trace_wire["profile_interval_ms"] = profiler.interval_s * 1000.0

        locks = [ctx.Lock() for _ in range(workers)]
        result_queue = ctx.Queue()
        telemetry_queue = ctx.Queue() if trace_wire is not None else None
        telemetry_payloads: list[dict] = []
        procs = []
        try:
            for w in range(workers):
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        w,
                        worker_graph_manifest,
                        sched_handle.manifest,
                        locks,
                        result_queue,
                        telemetry_queue,
                        trace_wire,
                        fault_worker,
                    ),
                    daemon=True,
                )
                p.start()
                procs.append(p)

            results: dict[int, dict] = {}
            while len(results) < workers:
                try:
                    r = result_queue.get(timeout=0.1)
                    results[r["worker"]] = r
                    continue
                except queue_mod.Empty:
                    pass
                _drain_nowait(telemetry_queue, telemetry_payloads)
                dead = [
                    w for w, p in enumerate(procs)
                    if p.exitcode not in (None, 0) and w not in results
                ]
                if dead:
                    if telemetry_queue is not None:
                        # let the survivors finish (they steal the dead
                        # worker's chunks) so their partial span trees
                        # flush through the telemetry channel before the
                        # crash is surfaced
                        deadline = time.perf_counter() + _TELEMETRY_DRAIN_S
                        while time.perf_counter() < deadline and any(
                            p.exitcode is None
                            for w, p in enumerate(procs)
                            if w not in dead
                        ):
                            try:
                                r = result_queue.get(timeout=0.05)
                                results[r["worker"]] = r
                            except queue_mod.Empty:
                                pass
                            _drain_nowait(telemetry_queue, telemetry_payloads)
                        _drain_nowait(telemetry_queue, telemetry_payloads)
                        stitch_worker_payloads(
                            registry, phase_span, telemetry_payloads
                        )
                    for p in procs:
                        p.terminate()
                    raise WorkerCrashError(
                        f"worker(s) {dead} died with exit codes "
                        f"{[procs[w].exitcode for w in dead]}",
                        {w: p.exitcode for w, p in enumerate(procs)},
                    )
                if all(p.exitcode is not None for p in procs):
                    raise WorkerCrashError(
                        "all workers exited but results are missing",
                        {w: p.exitcode for w, p in enumerate(procs)},
                    )
            if telemetry_queue is not None:
                _drain_nowait(telemetry_queue, telemetry_payloads)
                telemetry_payloads.extend(
                    _collect_payloads(
                        telemetry_queue,
                        expected=workers - len(telemetry_payloads),
                        deadline_s=_TELEMETRY_DRAIN_S,
                    )
                )
            for p in procs:
                p.join(timeout=10.0)
        finally:
            for p in procs:
                if p.is_alive():  # pragma: no cover - crash path hygiene
                    p.terminate()
                    p.join(timeout=5.0)
            result_queue.close()
            if telemetry_queue is not None:
                telemetry_queue.close()
            if graph_handle is not None:
                graph_handle.unlink()
            sched_handle.unlink()

        hhh = sum(r["hhh"] for r in results.values())
        hhn = sum(r["hhn"] for r in results.values())
        total_stolen = sum(r["stolen"] for r in results.values())
        registry.counter("parallel.sched.tasks_executed").add(
            sum(r["executed"] for r in results.values())
        )
        registry.counter("parallel.sched.tasks_stolen").add(total_stolen)
        wall_hist = registry.histogram("parallel.sched.worker_wall_s")
        for w in sorted(results):
            wall_hist.observe(results[w]["wall_s"])
        # worker spans are the real trees recorded inside the worker
        # processes, grafted under this phase span via the propagated
        # trace context (no parent-side synthesis)
        stitch_worker_payloads(registry, phase_span, telemetry_payloads)
        phase_span.set("hits", hhh + hhn)
        phase_span.set("tasks_stolen", total_stolen)
        return hhh, hhn


class _NullLock:
    """Placeholder lock for building scheduler arrays in the parent."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()
