"""Process-pool execution of phase 1 over shared memory.

The thread backend is bounded by the GIL whenever a kernel spends time
in Python bytecode; this backend sidesteps it entirely.  The Lotus
structure is copied once into a ``multiprocessing.shared_memory``
segment (:meth:`repro.core.structure.LotusGraph.to_shared`) and worker
processes rebuild zero-copy views, so per-worker memory overhead is a
few pages regardless of graph size.

Scheduling state — the work-stealing deques of
:class:`repro.parallel.scheduler.TileScheduler` plus the flattened tile
table — lives in a second shared segment, so steals are visible across
processes through ordinary array writes guarded by per-worker locks.

Counts are bit-identical to the sequential phase for any worker count:
every tile is executed exactly once and integer addition is associative.
Both segments are unlinked in a ``finally`` block, including when a
worker crashes (exercised by the fault-injection tests via
``fault_worker``).
"""

from __future__ import annotations

import os
import queue as queue_mod
import time

import numpy as np

from repro.core.structure import LotusGraph
from repro.core.tiling import Tile, tiles_for_phase1
from repro.obs import get_registry
from repro.parallel.scheduler import TileScheduler, chunk_tiles, plan_assignment
from repro.util.shm import share_arrays

__all__ = ["WorkerCrashError", "count_hhh_hhn_processes", "FAULT_EXIT_CODE"]

# exit code used by injected worker faults (distinct from signal deaths)
FAULT_EXIT_CODE = 23


class WorkerCrashError(RuntimeError):
    """A worker process died before reporting its partial counts."""

    def __init__(self, message: str, exitcodes: dict[int, int | None]):
        super().__init__(message)
        self.exitcodes = exitcodes


def _preferred_context(start_method: str | None):
    import multiprocessing

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _worker_main(
    worker_id: int,
    graph_manifest: dict,
    sched_manifest: dict,
    locks,
    result_queue,
    fault_worker: int | None,
) -> None:
    """Worker entry point: attach, drain the deques, report partials."""
    if fault_worker == worker_id:
        # simulate a hard crash (segfault / OOM-kill): no cleanup, no result
        os._exit(FAULT_EXIT_CODE)
    started = time.perf_counter()
    # late import keeps the spawn pickle payload to plain manifests
    from repro.parallel.executor import run_tile_batch
    from repro.util.shm import attach_arrays

    lotus, graph_handle = LotusGraph.from_shared(graph_manifest)
    sched_handle = attach_arrays(sched_manifest)
    arrs = sched_handle.arrays
    sched = TileScheduler(arrs["queue"], arrs["bounds"], arrs["region"], locks)
    chunk_indptr = arrs["chunk_indptr"]
    tv, ts, te, tw = (
        arrs["tile_vertex"], arrs["tile_start"], arrs["tile_stop"], arrs["tile_work"],
    )
    hhh = hhn = 0
    executed = stolen = 0
    while True:
        chunk, was_stolen = sched.next_chunk(worker_id)
        if chunk is None:
            break
        lo, hi = int(chunk_indptr[chunk]), int(chunk_indptr[chunk + 1])
        batch = [
            Tile(int(tv[i]), int(ts[i]), int(te[i]), int(tw[i]))
            for i in range(lo, hi)
        ]
        a, b = run_tile_batch(lotus, batch)
        hhh += a
        hhn += b
        executed += 1
        if was_stolen:
            stolen += 1
    result_queue.put(
        {
            "worker": worker_id,
            "hhh": hhh,
            "hhn": hhn,
            "executed": executed,
            "stolen": stolen,
            "wall_s": time.perf_counter() - started,
        }
    )
    del lotus, sched, arrs, chunk_indptr, tv, ts, te, tw
    graph_handle.close()
    sched_handle.close()


def count_hhh_hhn_processes(
    lotus: LotusGraph,
    workers: int = 4,
    policy: str = "squared",
    degree_threshold: int = 512,
    chunks_per_worker: int = 8,
    start_method: str | None = None,
    fault_worker: int | None = None,
    graph_manifest: dict | None = None,
) -> tuple[int, int]:
    """Phase 1 on a pool of processes sharing the Lotus structure.

    Returns the ``(hhh, hhn)`` split, bit-identical to the sequential
    :func:`repro.core.count.count_hhh_hhn` for any ``workers``.
    ``fault_worker`` (tests only) makes that worker die with
    ``FAULT_EXIT_CODE`` before touching shared memory; the call then
    raises :class:`WorkerCrashError` after unlinking both segments.
    ``graph_manifest`` lends an existing shared segment already holding
    ``lotus`` (e.g. the serving cache's) — the per-call ``to_shared``
    copy is skipped and the borrowed segment is *not* unlinked here; the
    lender keeps ownership.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    registry = get_registry()
    with registry.span(
        "phase1-processes", workers=workers, policy=policy
    ) as phase_span:
        tiles = tiles_for_phase1(
            lotus.he,
            partitions=2 * workers,
            policy=policy,
            degree_threshold=degree_threshold,
        )
        phase_span.set("tiles", len(tiles))
        if not tiles:
            phase_span.set("hits", 0)
            return 0, 0

        bounds = chunk_tiles(tiles, workers, chunks_per_worker)
        num_chunks = int(bounds.size - 1)
        tile_work = np.array([t.work for t in tiles], dtype=np.int64)
        chunk_costs = np.add.reduceat(tile_work.astype(np.float64), bounds[:-1])
        deques = plan_assignment(chunk_costs, workers)
        local_sched = TileScheduler.build(
            deques, locks=[_NULL_LOCK] * workers
        )

        ctx = _preferred_context(start_method)
        if graph_manifest is not None:
            graph_handle = None
            worker_graph_manifest = graph_manifest
        else:
            graph_handle = lotus.to_shared()
            worker_graph_manifest = graph_handle.manifest
        sched_handle = share_arrays(
            {
                "queue": local_sched.queue,
                "bounds": local_sched.bounds,
                "region": local_sched.region,
                "chunk_indptr": bounds,
                "tile_vertex": np.array([t.vertex for t in tiles], dtype=np.int64),
                "tile_start": np.array([t.start for t in tiles], dtype=np.int64),
                "tile_stop": np.array([t.stop for t in tiles], dtype=np.int64),
                "tile_work": tile_work,
            },
            meta={"kind": "tile-scheduler", "workers": workers},
        )
        shm_bytes = (
            graph_handle.nbytes if graph_handle is not None else 0
        ) + sched_handle.nbytes
        registry.counter("parallel.sched.tiles").add(len(tiles))
        registry.counter("parallel.sched.chunks").add(num_chunks)
        registry.gauge("parallel.sched.shm_bytes").set(shm_bytes)
        phase_span.set("chunks", num_chunks)
        phase_span.set("shm_bytes", shm_bytes)

        locks = [ctx.Lock() for _ in range(workers)]
        result_queue = ctx.Queue()
        procs = []
        try:
            for w in range(workers):
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        w,
                        worker_graph_manifest,
                        sched_handle.manifest,
                        locks,
                        result_queue,
                        fault_worker,
                    ),
                    daemon=True,
                )
                p.start()
                procs.append(p)

            results: dict[int, dict] = {}
            while len(results) < workers:
                try:
                    r = result_queue.get(timeout=0.1)
                    results[r["worker"]] = r
                    continue
                except queue_mod.Empty:
                    pass
                dead = [
                    w for w, p in enumerate(procs)
                    if p.exitcode not in (None, 0) and w not in results
                ]
                if dead:
                    for p in procs:
                        p.terminate()
                    raise WorkerCrashError(
                        f"worker(s) {dead} died with exit codes "
                        f"{[procs[w].exitcode for w in dead]}",
                        {w: p.exitcode for w, p in enumerate(procs)},
                    )
                if all(p.exitcode is not None for p in procs):
                    raise WorkerCrashError(
                        "all workers exited but results are missing",
                        {w: p.exitcode for w, p in enumerate(procs)},
                    )
            for p in procs:
                p.join(timeout=10.0)
        finally:
            for p in procs:
                if p.is_alive():  # pragma: no cover - crash path hygiene
                    p.terminate()
                    p.join(timeout=5.0)
            result_queue.close()
            if graph_handle is not None:
                graph_handle.unlink()
            sched_handle.unlink()

        hhh = sum(r["hhh"] for r in results.values())
        hhn = sum(r["hhn"] for r in results.values())
        total_stolen = sum(r["stolen"] for r in results.values())
        registry.counter("parallel.sched.tasks_executed").add(
            sum(r["executed"] for r in results.values())
        )
        registry.counter("parallel.sched.tasks_stolen").add(total_stolen)
        wall_hist = registry.histogram("parallel.sched.worker_wall_s")
        for w in sorted(results):
            r = results[w]
            wall_hist.observe(r["wall_s"])
            with registry.span("worker", parent=phase_span) as wspan:
                wspan.set("worker", w)
                wspan.set("executed", r["executed"])
                wspan.set("stolen", r["stolen"])
                wspan.set("wall_s", r["wall_s"])
                wspan.set("hits", r["hhh"] + r["hhn"])
        phase_span.set("hits", hhh + hhn)
        phase_span.set("tasks_stolen", total_stolen)
        return hhh, hhn


class _NullLock:
    """Placeholder lock for building scheduler arrays in the parent."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()
