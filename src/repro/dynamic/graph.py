"""The mutable graph layer: CSR base + sorted delta overlays.

A :class:`DynamicGraph` wraps an immutable :class:`~repro.graph.csr.CSRGraph`
and records edge insertions / deletions in small per-vertex overlays.  The
*effective* neighbourhood of a touched vertex is the base row minus its
removed set plus its added set, merged into a sorted array and cached until
the next mutation of that vertex.  Periodic :meth:`compact` folds the
overlays back into a fresh CSR (the overlay-free representation every
counting kernel and the structure cache already understand).

**Exact incremental triangle maintenance.**  Inserting or deleting one
edge ``(u, v)`` changes the triangle count by exactly
``|N(u) ∩ N(v)|`` — the number of common neighbours in the graph *without*
that edge (Eppstein/Spiro-style incremental counting; the GraphChallenge
streaming setting of Samsi et al. scores exactly this quantity per
snapshot).  The intersection runs on the overlaid neighbour rows through
the registered :data:`repro.tc.intersect.INTERSECT_KERNELS`, so the same
kernels the batch counters use (and the fuzzer monkeypatches) serve the
dynamic path.  Batches are validated and deduplicated in one vectorised
pass; deltas are then accumulated edge-at-a-time against the running
overlay, which makes a batch exactly equivalent to applying its edges
singly, in order — and therefore order-independent for commuting updates
(any two edges of a batch that could jointly close a triangle must share
an endpoint, so disjoint updates always commute).

**Versioned snapshots.**  ``version`` increments once per batch that
applied at least one edge.  :meth:`snapshot` materialises the effective
graph as an immutable CSR tagged with the version and the maintained
count; later updates *supersede* a snapshot but can never mutate it,
which is what gives the query service its snapshot-isolated reads
(docs/dynamic.md).

The ``dynamic.*`` metric family (exported through the active
:class:`~repro.obs.registry.MetricsRegistry`):

==================================  =========  ============================
``dynamic.updates_applied``          counter    edges actually applied
``dynamic.edges_inserted/deleted``   counter    per-operation split
``dynamic.updates_rejected``         counter    self-loops / dupes / absent
``dynamic.update_batches``           counter    batches processed
``dynamic.compactions``              counter    overlay folds
``dynamic.hub.rethresholds``         counter    hub-set recomputations
``dynamic.batch.size``               histogram  requested batch sizes
``dynamic.delta.size``               histogram  |triangle delta| per batch
``dynamic.update_seconds``           histogram  per-batch apply latency
``dynamic.compact_seconds``          histogram  compaction cost
``dynamic.version``                  gauge      current version
``dynamic.overlay_edges``            gauge      edges resident in overlays
``dynamic.triangles``                gauge      maintained exact count
==================================  =========  ============================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.obs import get_registry

__all__ = [
    "DynamicGraph",
    "GraphSnapshot",
    "UpdateResult",
    "UPDATE_SECONDS_BUCKETS",
    "DELTA_BUCKETS",
    "BATCH_BUCKETS",
    "DEFAULT_KERNEL",
]

# per-batch apply latency: 10 us .. ~2.6 s, geometric
UPDATE_SECONDS_BUCKETS = tuple(1e-5 * 2**i for i in range(18))
DELTA_BUCKETS = tuple(float(1 << i) for i in range(16))
BATCH_BUCKETS = tuple(float(1 << i) for i in range(14))

# binary search is the vectorised scalar kernel (NumPy searchsorted);
# merge/hash are Python loops and adaptive may fall back to them
DEFAULT_KERNEL = "binary"


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one :meth:`DynamicGraph.insert_edges` / ``delete_edges``
    batch (or a :meth:`~DynamicGraph.compact`, where ``applied`` counts the
    overlay edges folded into the new base)."""

    op: str
    version: int
    requested: int
    applied: int
    rejected: int
    triangle_delta: int
    triangles: int


@dataclass(frozen=True)
class GraphSnapshot:
    """One immutable, versioned view of the effective graph.

    ``graph`` is a plain :class:`CSRGraph` — safe to hand to any counting
    kernel, structure builder or cache while the owning
    :class:`DynamicGraph` keeps mutating.  Updates supersede snapshots;
    they never invalidate one.
    """

    version: int
    graph: CSRGraph
    triangles: int


class DynamicGraph:
    """CSR + sorted delta overlays with an exactly-maintained triangle count.

    ``triangles`` may be passed when the caller already knows the base
    count (skipping the construction-time recount).  ``kernel`` names an
    entry of :data:`repro.tc.intersect.INTERSECT_KERNELS`, resolved per
    call so monkeypatched kernels are exercised (the dynamic fuzzer's
    self-test relies on this).  ``auto_compact_fraction`` folds overlays
    back into the base once they exceed that fraction of the base edge
    count (``None`` disables; :meth:`compact` always works explicitly).
    With ``track_hubs=True`` a :class:`~repro.dynamic.hubs.HubTracker`
    incrementally patches the LOTUS hub set + H2H bit array per update.
    """

    def __init__(
        self,
        base: CSRGraph,
        *,
        triangles: int | None = None,
        kernel: str = DEFAULT_KERNEL,
        auto_compact_fraction: float | None = 0.25,
        track_hubs: bool = False,
        hub_config=None,
    ) -> None:
        from repro.tc.intersect import INTERSECT_KERNELS

        if kernel not in INTERSECT_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; one of {sorted(INTERSECT_KERNELS)}"
            )
        if auto_compact_fraction is not None and auto_compact_fraction <= 0:
            raise ValueError("auto_compact_fraction must be positive or None")
        self._base = base
        self._kernel = kernel
        self._auto_compact_fraction = auto_compact_fraction
        self._added: dict[int, set[int]] = {}
        self._removed: dict[int, set[int]] = {}
        self._rows: dict[int, np.ndarray] = {}
        self._deg = base.degrees().astype(np.int64)
        self._overlay_edges = 0
        self._lock = threading.RLock()
        self._snap: GraphSnapshot | None = None
        self.version = 0
        self.compactions = 0
        if triangles is None:
            from repro.tc.forward import count_triangles_forward

            triangles = int(count_triangles_forward(base).triangles)
        self.triangles = int(triangles)
        self.hubs = None
        if track_hubs:
            from repro.dynamic.hubs import HubTracker

            self.hubs = HubTracker(self, config=hub_config)

    # -- read side ----------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        """Effective undirected edge count (base ± overlays)."""
        return int(self._deg.sum()) // 2

    @property
    def overlay_edges(self) -> int:
        """Edges currently resident in the overlays (added + removed)."""
        return self._overlay_edges

    def degree(self, v: int) -> int:
        return int(self._deg[v])

    def degrees(self) -> np.ndarray:
        return self._deg

    def has_edge(self, u: int, v: int) -> bool:
        added = self._added.get(u)
        if added is not None and v in added:
            return True
        removed = self._removed.get(u)
        if removed is not None and v in removed:
            return False
        return self._base.has_edge(u, v)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted effective neighbour row of ``v`` (int64)."""
        row = self._rows.get(v)
        if row is not None:
            return row
        base = self._base.neighbors(v).astype(np.int64)
        added = self._added.get(v)
        removed = self._removed.get(v)
        if not added and not removed:
            return base
        if removed:
            drop = np.fromiter(removed, dtype=np.int64, count=len(removed))
            base = base[np.isin(base, drop, invert=True)]
        if added:
            extra = np.fromiter(added, dtype=np.int64, count=len(added))
            base = np.concatenate([base, extra])
            base.sort()
        self._rows[v] = base
        return base

    def common_neighbor_count(self, u: int, v: int) -> int:
        """``|N(u) ∩ N(v)|`` on the effective rows — the per-edge triangle
        delta — through the configured intersect kernel."""
        from repro.tc.intersect import INTERSECT_KERNELS

        kernel = INTERSECT_KERNELS[self._kernel]
        a, b = self.neighbors(u), self.neighbors(v)
        if self._kernel == "bitmap":
            return int(kernel(a, b, max(self.num_vertices, 1)))
        return int(kernel(a, b))

    # -- write side ---------------------------------------------------------
    def insert_edges(self, edges) -> UpdateResult:
        """Apply a batch of insertions; returns the batch outcome.

        Self-loops, within-batch duplicates and already-present edges are
        rejected (counted, never applied); out-of-range vertex ids abort
        the whole batch with ``ValueError`` before any mutation.
        """
        return self._apply("insert", edges)

    def delete_edges(self, edges) -> UpdateResult:
        """Apply a batch of deletions (absent edges are rejected)."""
        return self._apply("delete", edges)

    def _normalize_batch(self, edges) -> tuple[np.ndarray, int, int]:
        """One vectorised validation/dedup pass over a requested batch.

        Returns ``(clean, requested, rejected_so_far)`` where ``clean`` is
        (k, 2) int64 with ``u < v``, self-loops dropped and within-batch
        duplicates collapsed (first occurrence kept, order preserved).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim == 1 and edges.size == 2:
            edges = edges.reshape(1, 2)
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        edges = edges.reshape(-1, 2)
        requested = int(edges.shape[0])
        n = self.num_vertices
        if requested and (edges.min() < 0 or edges.max() >= n):
            raise ValueError(
                f"vertex id out of range [0, {n}) in update batch"
            )
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        proper = lo != hi  # drop self-loops
        lo, hi = lo[proper], hi[proper]
        keys = lo * n + hi
        _, first = np.unique(keys, return_index=True)
        first.sort()  # keep first occurrence, preserve arrival order
        clean = np.column_stack([lo[first], hi[first]])
        rejected = requested - int(clean.shape[0])
        return clean, requested, rejected

    def _apply(self, op: str, edges) -> UpdateResult:
        registry = get_registry()
        with self._lock, registry.span("dynamic:update", op=op) as span:
            from repro.util.timer import clock

            started = clock()
            clean, requested, rejected = self._normalize_batch(edges)
            inserting = op == "insert"
            applied = 0
            delta = 0
            for u, v in clean.tolist():
                if self.has_edge(u, v) == inserting:
                    rejected += 1  # duplicate insert / absent delete
                    continue
                d = self.common_neighbor_count(u, v)
                if inserting:
                    self._link(u, v)
                    delta += d
                else:
                    self._unlink(u, v)
                    delta -= d
                applied += 1
                if self.hubs is not None:
                    self.hubs.on_update(u, v, inserted=inserting)
            self.triangles += delta
            if applied:
                self.version += 1
                self._snap = None
            elapsed = clock() - started
            span.set("requested", requested)
            span.set("applied", applied)
            span.set("triangle_delta", delta)
            registry.counter("dynamic.update_batches").add(1)
            registry.counter("dynamic.updates_applied").add(applied)
            registry.counter(
                "dynamic.edges_inserted" if inserting else "dynamic.edges_deleted"
            ).add(applied)
            registry.counter("dynamic.updates_rejected").add(rejected)
            registry.histogram("dynamic.batch.size", BATCH_BUCKETS).observe(requested)
            registry.histogram("dynamic.delta.size", DELTA_BUCKETS).observe(abs(delta))
            registry.histogram(
                "dynamic.update_seconds", UPDATE_SECONDS_BUCKETS
            ).observe(elapsed)
            registry.gauge("dynamic.version").set(self.version)
            registry.gauge("dynamic.overlay_edges").set(self._overlay_edges)
            registry.gauge("dynamic.triangles").set(self.triangles)
            result = UpdateResult(
                op=op,
                version=self.version,
                requested=requested,
                applied=applied,
                rejected=rejected,
                triangle_delta=delta,
                triangles=self.triangles,
            )
            if (
                self._auto_compact_fraction is not None
                and self._overlay_edges
                > max(64, self._auto_compact_fraction * self._base.num_edges)
            ):
                self.compact()
            return result

    def _link(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            removed = self._removed.get(a)
            if removed is not None and b in removed:
                removed.discard(b)
                if not removed:
                    del self._removed[a]
            else:
                self._added.setdefault(a, set()).add(b)
            self._rows.pop(a, None)
        self._deg[u] += 1
        self._deg[v] += 1
        self._overlay_edges = self._count_overlay_edges()

    def _unlink(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            added = self._added.get(a)
            if added is not None and b in added:
                added.discard(b)
                if not added:
                    del self._added[a]
            else:
                self._removed.setdefault(a, set()).add(b)
            self._rows.pop(a, None)
        self._deg[u] -= 1
        self._deg[v] -= 1
        self._overlay_edges = self._count_overlay_edges()

    def _count_overlay_edges(self) -> int:
        arcs = sum(len(s) for s in self._added.values())
        arcs += sum(len(s) for s in self._removed.values())
        return arcs // 2

    # -- materialisation ----------------------------------------------------
    def _effective_edges(self) -> np.ndarray:
        """The effective undirected edge list as (m, 2) int64, ``u < v``."""
        n = self.num_vertices
        base_edges = self._base.edges().astype(np.int64)
        if self._removed:
            drop_keys = np.array(
                sorted(
                    a * n + b
                    for a, mates in self._removed.items()
                    for b in mates
                    if a < b
                ),
                dtype=np.int64,
            )
            if drop_keys.size:
                keys = base_edges[:, 0] * n + base_edges[:, 1]
                base_edges = base_edges[np.isin(keys, drop_keys, invert=True)]
        if self._added:
            extra = np.array(
                sorted(
                    (a, b)
                    for a, mates in self._added.items()
                    for b in mates
                    if a < b
                ),
                dtype=np.int64,
            ).reshape(-1, 2)
            base_edges = np.concatenate([base_edges, extra])
        return base_edges

    def snapshot(self) -> GraphSnapshot:
        """The current version as an immutable :class:`GraphSnapshot`.

        Repeated calls at the same version return the same (cached)
        snapshot; when the overlays are empty the base CSR is shared
        zero-copy.  The returned graph is never mutated by later updates.
        """
        with self._lock:
            snap = self._snap
            if snap is not None and snap.version == self.version:
                return snap
            if self._overlay_edges == 0 and not self._added and not self._removed:
                graph = self._base
            else:
                graph = from_edges(
                    self._effective_edges(), num_vertices=self.num_vertices
                )
            snap = GraphSnapshot(
                version=self.version, graph=graph, triangles=self.triangles
            )
            self._snap = snap
            return snap

    def compact(self) -> int:
        """Fold the overlays into a fresh base CSR; returns edges folded.

        The effective graph, maintained count and version are all
        unchanged — compaction is a representation change only (the
        snapshot fingerprint is byte-identical, so structure-cache keys
        survive a compaction).
        """
        registry = get_registry()
        with self._lock, registry.span("dynamic:compact") as span:
            from repro.util.timer import clock

            folded = self._overlay_edges
            if folded == 0:
                span.set("folded", 0)
                return 0
            started = clock()
            self._base = from_edges(
                self._effective_edges(), num_vertices=self.num_vertices
            )
            self._added.clear()
            self._removed.clear()
            self._rows.clear()
            self._overlay_edges = 0
            self.compactions += 1
            elapsed = clock() - started
            span.set("folded", folded)
            registry.counter("dynamic.compactions").add(1)
            registry.histogram(
                "dynamic.compact_seconds", UPDATE_SECONDS_BUCKETS
            ).observe(elapsed)
            registry.gauge("dynamic.overlay_edges").set(0)
            return folded

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(|V|={self.num_vertices:,}, |E|={self.num_edges:,}, "
            f"version={self.version}, overlay={self._overlay_edges:,}, "
            f"triangles={self.triangles:,})"
        )
