"""Incremental maintenance of the LOTUS hub set + H2H bit array.

The static pipeline rebuilds the whole structure per graph; under a
stream of updates that is wasteful — one edge touching two hubs changes
exactly one H2H bit.  :class:`HubTracker` keeps the hub set (top-k by
degree, ties broken by vertex id, matching
:func:`repro.graph.reorder.lotus_relabeling_array`) and a
:class:`~repro.core.bitarray.TriangularBitArray` over *hub slots*
patched in place per update.

Degree drift is what invalidates a hub set.  The tracker records, per
update, which vertices cross the degree threshold captured at the last
(re)build: non-hubs rising strictly above it are *promotable*, hubs
falling strictly below it are *demotable*.  Once the drifted set exceeds
``drift_fraction`` of the hub count the whole set is re-thresholded and
the H2H array rebuilt — a rare O(|V| log |V| + hub arcs) event counted
by ``dynamic.hub.rethresholds``, versus the O(1)-bit common case.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitarray import TriangularBitArray
from repro.core.structure import LotusConfig
from repro.obs import get_registry

__all__ = ["HubTracker"]


class HubTracker:
    """Tracks hub membership and hub-to-hub adjacency for a
    :class:`~repro.dynamic.graph.DynamicGraph`.

    ``slot[v]`` maps a vertex to its hub slot (``-1`` when not a hub);
    ``h2h`` is the triangular bit array over slots.  ``on_update`` is
    invoked by the owning graph *after* the edge flip has been applied
    (degrees already reflect the update).
    """

    def __init__(
        self,
        dyn,
        *,
        config: LotusConfig | None = None,
        drift_fraction: float = 0.25,
    ) -> None:
        if drift_fraction <= 0:
            raise ValueError("drift_fraction must be positive")
        self._dyn = dyn
        self._config = config if config is not None else LotusConfig()
        self._drift_fraction = drift_fraction
        self.hub_count = self._config.resolve_hub_count(dyn.num_vertices)
        self.rethresholds = 0
        self.slot: np.ndarray
        self.h2h: TriangularBitArray
        self._rebuild()

    # -- (re)construction ---------------------------------------------------
    def _rebuild(self) -> None:
        dyn = self._dyn
        n = dyn.num_vertices
        deg = dyn.degrees()
        # top-k by degree, stable on vertex id — the same ordering the
        # static relabeling uses, so a freshly-built LotusGraph agrees
        order = np.lexsort((np.arange(n), -deg))
        hubs = order[: self.hub_count]
        self.slot = np.full(n, -1, dtype=np.int64)
        self.slot[hubs] = np.arange(len(hubs), dtype=np.int64)
        # weakest hub's degree: the membership threshold drift is
        # measured against until the next rebuild
        self._threshold = int(deg[hubs].min()) if len(hubs) else 0
        self._promotable: set[int] = set()
        self._demotable: set[int] = set()
        self.h2h = TriangularBitArray(self.hub_count)
        h1s: list[np.ndarray] = []
        h2s: list[np.ndarray] = []
        for v in hubs.tolist():
            sv = self.slot[v]
            row = dyn.neighbors(v)
            mates = self.slot[row]
            mates = mates[(mates >= 0) & (mates < sv)]
            if mates.size:
                h1s.append(np.full(mates.size, sv, dtype=np.int64))
                h2s.append(mates)
        if h1s:
            self.h2h.set_pairs(np.concatenate(h1s), np.concatenate(h2s))

    # -- per-update patching ------------------------------------------------
    def on_update(self, u: int, v: int, *, inserted: bool) -> None:
        """Patch hub state for an applied edge flip on ``(u, v)``."""
        su, sv = int(self.slot[u]), int(self.slot[v])
        if su >= 0 and sv >= 0:
            if inserted:
                self.h2h.set(su, sv)
            else:
                self.h2h.clear(su, sv)
        self._note_drift(u, su)
        self._note_drift(v, sv)
        limit = max(1.0, self._drift_fraction * self.hub_count)
        if len(self._promotable) + len(self._demotable) > limit:
            self.rethreshold()

    def _note_drift(self, vertex: int, slot: int) -> None:
        deg = self._dyn.degree(vertex)
        if slot < 0:
            if deg > self._threshold:
                self._promotable.add(vertex)
            else:
                self._promotable.discard(vertex)
        else:
            if deg < self._threshold:
                self._demotable.add(vertex)
            else:
                self._demotable.discard(vertex)

    def rethreshold(self) -> None:
        """Recompute the hub set from current degrees and rebuild H2H."""
        self._rebuild()
        self.rethresholds += 1
        get_registry().counter("dynamic.hub.rethresholds").add(1)

    @property
    def drift(self) -> int:
        """Vertices currently on the wrong side of the build threshold."""
        return len(self._promotable) + len(self._demotable)

    # -- verification -------------------------------------------------------
    def validate(self) -> None:
        """Assert H2H exactly matches the hub-hub edges of the effective
        graph — the fuzzer's oracle for incremental patching."""
        dyn = self._dyn
        hubs = np.flatnonzero(self.slot >= 0)
        expect = set()
        for a in hubs.tolist():
            sa = int(self.slot[a])
            row = dyn.neighbors(a)
            for sb in self.slot[row]:
                sb = int(sb)
                if 0 <= sb < sa:
                    expect.add((sa, sb))
        assert self.h2h.count_set() == len(expect), (
            self.h2h.count_set(),
            len(expect),
        )
        for sa, sb in expect:
            assert self.h2h.is_set(sa, sb), (sa, sb)

    def __repr__(self) -> str:
        return (
            f"HubTracker(hubs={self.hub_count}, h2h={self.h2h.count_set()}, "
            f"drift={self.drift}, rethresholds={self.rethresholds})"
        )
