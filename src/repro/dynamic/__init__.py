"""Dynamic graphs: CSR + delta overlays with exact incremental triangle
maintenance, versioned snapshots and update-stream replay.

See :mod:`repro.dynamic.graph` for the mutable layer,
:mod:`repro.dynamic.hubs` for incremental LOTUS hub/H2H patching, and
:mod:`repro.dynamic.replay` for streaming edge files through it.
Protocol and policy live in ``docs/dynamic.md``.
"""

from repro.dynamic.graph import (
    DEFAULT_KERNEL,
    DynamicGraph,
    GraphSnapshot,
    UpdateResult,
)
from repro.dynamic.hubs import HubTracker
from repro.dynamic.replay import (
    ReplayReport,
    parse_stream,
    parse_stream_lines,
    replay_stream,
    synthesize_stream,
    write_stream,
)

__all__ = [
    "DEFAULT_KERNEL",
    "DynamicGraph",
    "GraphSnapshot",
    "HubTracker",
    "ReplayReport",
    "UpdateResult",
    "parse_stream",
    "parse_stream_lines",
    "replay_stream",
    "synthesize_stream",
    "write_stream",
]
