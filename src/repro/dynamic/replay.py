"""Edge-stream replay: parse, synthesize and drive timestamped update files.

The ``repro.cli replay`` subcommand feeds a whitespace-separated edge
stream through a :class:`~repro.dynamic.graph.DynamicGraph` in batches
and reports the triangle-count trajectory.  Stream lines come in four
accepted shapes (comments start with ``#``; blank lines are skipped)::

    u v            # insert, no timestamp
    ts u v         # insert at timestamp (timestamps are carried, not waited on)
    op u v         # op in {+, -, insert, delete}
    ts op u v

:func:`synthesize_stream` generates deterministic mixed workloads for
benchmarks and CI smoke tests: a seeded blend of fresh-edge inserts,
deletes of live edges, and deliberate no-ops (duplicate inserts /
missing deletes) that exercise the rejection path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TextIO

import numpy as np

from repro.util.rng import make_rng
from repro.util.timer import clock

__all__ = [
    "ReplayReport",
    "parse_stream",
    "parse_stream_lines",
    "replay_stream",
    "synthesize_stream",
    "write_stream",
]

_OPS = {"+": "insert", "-": "delete", "insert": "insert", "delete": "delete"}


def _parse_tokens(tokens: list[str], lineno: int) -> tuple[str, int, int]:
    """One stream line → ``(op, u, v)``."""
    op = "insert"
    if len(tokens) == 4:  # ts op u v
        op_tok, tokens = tokens[1], tokens[2:]
        if op_tok not in _OPS:
            raise ValueError(f"line {lineno}: unknown op {op_tok!r}")
        op = _OPS[op_tok]
    elif len(tokens) == 3:
        if tokens[0] in _OPS:  # op u v
            op, tokens = _OPS[tokens[0]], tokens[1:]
        else:  # ts u v
            tokens = tokens[1:]
    elif len(tokens) != 2:  # u v
        raise ValueError(
            f"line {lineno}: expected 2-4 fields, got {len(tokens)}"
        )
    try:
        u, v = int(tokens[0]), int(tokens[1])
    except ValueError as exc:
        raise ValueError(f"line {lineno}: non-integer endpoint") from exc
    return op, u, v


def parse_stream_lines(lines: Iterable[str]) -> list[tuple[str, int, int]]:
    """Parse stream lines into an op list ``[(op, u, v), ...]``."""
    ops: list[tuple[str, int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        ops.append(_parse_tokens(stripped.split(), lineno))
    return ops


def parse_stream(path: str) -> list[tuple[str, int, int]]:
    """Parse a stream file (see module docstring for line shapes)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_stream_lines(handle)


def write_stream(path: str, ops: Iterable[tuple[str, int, int]]) -> int:
    """Write ops as ``op u v`` lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for op, u, v in ops:
            handle.write(f"{op} {u} {v}\n")
            count += 1
    return count


def synthesize_stream(
    graph,
    num_ops: int,
    *,
    seed: int | np.random.Generator = 0,
    insert_fraction: float = 0.6,
    noise_fraction: float = 0.05,
) -> list[tuple[str, int, int]]:
    """Deterministic mixed update stream against ``graph`` (CSRGraph).

    Roughly ``insert_fraction`` of ops insert fresh (or previously
    deleted) edges, the rest delete live ones; ``noise_fraction`` of ops
    are deliberate no-ops (duplicate insert / absent delete) so replays
    exercise the rejection path.  The stream is replay-consistent: every
    delete targets an edge live at that point, every non-noise insert a
    pair absent at that point.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    # live edges as an indexable list (O(1) seeded pick + swap-pop
    # removal) mirrored by a set for membership; edges() is already in a
    # deterministic (lexsorted) order, so the stream is seed-reproducible
    live_list: list[tuple[int, int]] = [
        (int(u), int(v)) for u, v in graph.edges()
    ]
    live = set(live_list)
    dead: list[tuple[int, int]] = []
    ops: list[tuple[str, int, int]] = []
    while len(ops) < num_ops:
        roll = rng.random()
        if roll < noise_fraction and live_list:
            # deliberate no-op: duplicate insert or absent delete
            if dead and rng.random() < 0.5:
                ops.append(("delete", *dead[rng.integers(len(dead))]))
            else:
                ops.append(("insert", *live_list[rng.integers(len(live_list))]))
            continue
        if rng.random() < insert_fraction or not live_list:
            if dead and rng.random() < 0.3:
                pair = dead.pop(rng.integers(len(dead)))
            else:
                while True:
                    u, v = int(rng.integers(n)), int(rng.integers(n))
                    if u == v:
                        continue
                    pair = (min(u, v), max(u, v))
                    if pair not in live:
                        break
            live.add(pair)
            live_list.append(pair)
            ops.append(("insert", *pair))
        else:
            idx = int(rng.integers(len(live_list)))
            pair = live_list[idx]
            live_list[idx] = live_list[-1]
            live_list.pop()
            live.discard(pair)
            dead.append(pair)
            ops.append(("delete", *pair))
    return ops


@dataclass
class ReplayReport:
    """Trajectory and totals from one :func:`replay_stream` run."""

    ops: int
    applied: int
    rejected: int
    batches: int
    compactions: int
    final_version: int
    final_triangles: int
    elapsed_seconds: float
    trajectory: list[dict] = field(default_factory=list)

    @property
    def per_update_seconds(self) -> float:
        return self.elapsed_seconds / max(1, self.applied)

    def to_json_dict(self) -> dict:
        return {
            "ops": self.ops,
            "applied": self.applied,
            "rejected": self.rejected,
            "batches": self.batches,
            "compactions": self.compactions,
            "final_version": self.final_version,
            "final_triangles": self.final_triangles,
            "elapsed_seconds": self.elapsed_seconds,
            "per_update_seconds": self.per_update_seconds,
            "trajectory": self.trajectory,
        }


def replay_stream(
    dyn,
    ops: list[tuple[str, int, int]],
    *,
    batch: int = 64,
    compact_every: int | None = None,
    on_batch: Callable[[dict], None] | None = None,
) -> ReplayReport:
    """Stream ``ops`` through ``dyn`` in batches; returns the trajectory.

    Consecutive ops of the same kind are grouped into arrays up to
    ``batch`` long (a kind switch closes the current batch — order
    matters for exactness).  ``compact_every`` forces a compaction every
    that many batches; ``on_batch`` sees each trajectory entry as it is
    produced (the CLI uses it for ``--progress`` output).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    report = ReplayReport(
        ops=len(ops),
        applied=0,
        rejected=0,
        batches=0,
        compactions=0,
        final_version=dyn.version,
        final_triangles=dyn.triangles,
        elapsed_seconds=0.0,
    )
    started = clock()
    i = 0
    while i < len(ops):
        kind = ops[i][0]
        j = i
        while j < len(ops) and j - i < batch and ops[j][0] == kind:
            j += 1
        edges = np.array([(u, v) for _, u, v in ops[i:j]], dtype=np.int64)
        result = (
            dyn.insert_edges(edges) if kind == "insert" else dyn.delete_edges(edges)
        )
        report.batches += 1
        report.applied += result.applied
        report.rejected += result.rejected
        if compact_every and report.batches % compact_every == 0:
            if dyn.compact():
                report.compactions += 1
        entry = {
            "batch": report.batches,
            "op": kind,
            "ops": j - i,
            "applied": result.applied,
            "rejected": result.rejected,
            "version": result.version,
            "delta": result.triangle_delta,
            "triangles": result.triangles,
            "ms": round((clock() - started) * 1e3, 3),
        }
        report.trajectory.append(entry)
        if on_batch is not None:
            on_batch(entry)
        i = j
    report.elapsed_seconds = clock() - started
    report.final_version = dyn.version
    report.final_triangles = dyn.triangles
    report.compactions = dyn.compactions
    return report


def print_trajectory(entry: dict, out: TextIO) -> None:
    """Default ``--progress`` formatter for one trajectory entry."""
    print(
        f"batch {entry['batch']:>5}  {entry['op']:<6} ops={entry['ops']:<5} "
        f"applied={entry['applied']:<5} delta={entry['delta']:<+8} "
        f"triangles={entry['triangles']:<12} v{entry['version']}",
        file=out,
    )
