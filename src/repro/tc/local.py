"""Local (per-vertex and per-edge) triangle counting.

Local triangle counts power the applications that motivate the paper's
introduction — clustering coefficients, spam/community detection
[11, 12] — and the k-truss decomposition in :mod:`repro.tc.truss`.

The kernel extends the fused Forward pass: for every oriented arc
``(v, u)`` and every matched common neighbour ``w`` the triangle
``(w, u, v)`` increments all three corners (for vertex-local counts) or
all three edges (for edge support).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span
from repro.util.arrays import concat_ranges, group_ids

__all__ = [
    "local_triangle_counts",
    "local_clustering_coefficients",
    "global_transitivity",
    "edge_supports",
]


def _matched_triangles(oriented) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All triangles of an oriented graph as (v, u, w) corner arrays.

    For every arc (v, u) with u < v, w ranges over the matched common
    neighbours of the two rows (w < u by construction).  Chunked over
    arcs to bound peak memory.
    """
    indptr, indices = oriented.indptr, oriented.indices
    src_all = np.repeat(np.arange(oriented.num_vertices, dtype=np.int64), oriented.degrees())
    dst_all = indices.astype(np.int64, copy=False)
    vs: list[np.ndarray] = []
    us: list[np.ndarray] = []
    ws: list[np.ndarray] = []
    chunk = 200_000
    for s in range(0, src_all.size, chunk):
        src = src_all[s : s + chunk]
        dst = dst_all[s : s + chunk]
        # gather the (shorter) u-rows and probe into the v-rows
        g_starts = indptr[dst]
        g_lens = indptr[dst + 1] - g_starts
        gathered = indices[concat_ranges(g_starts, g_lens)].astype(np.int64, copy=False)
        owner = group_ids(g_lens)
        p_rows = src[owner]
        lo = indptr[p_rows].copy()
        hi = indptr[p_rows + 1].copy()
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) // 2
            vals = indices[np.minimum(mid, indices.size - 1)].astype(np.int64, copy=False)
            go_right = active & (vals < gathered)
            go_left = active & ~go_right
            lo[go_right] = mid[go_right] + 1
            hi[go_left] = mid[go_left]
        found = (lo < indptr[p_rows + 1]) & (
            indices[np.minimum(lo, indices.size - 1)] == gathered
        )
        if found.any():
            vs.append(p_rows[found])
            us.append(dst[owner][found])
            ws.append(gathered[found])
    if not vs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return np.concatenate(vs), np.concatenate(us), np.concatenate(ws)


def local_triangle_counts(graph: CSRGraph, degree_order: bool = True) -> np.ndarray:
    """Number of triangles through each vertex (``networkx.triangles``).

    Degree ordering accelerates the enumeration on skewed graphs; the
    result is mapped back to the original vertex IDs.
    """
    n = graph.num_vertices
    with root_span("local-triangles", num_vertices=n) as span:
        if degree_order and n:
            work, ra = apply_degree_ordering(graph)
        else:
            work, ra = graph, None
        v, u, w = _matched_triangles(work.orient_lower())
        counts = (
            np.bincount(v, minlength=n)
            + np.bincount(u, minlength=n)
            + np.bincount(w, minlength=n)
        )
        if ra is not None:
            counts = counts[ra]  # counts indexed by new ID -> original order
        span.set("triangles", int(v.size))
    return counts


def local_clustering_coefficients(graph: CSRGraph) -> np.ndarray:
    """Per-vertex clustering coefficient: ``2 t_v / (deg_v (deg_v - 1))``.

    Vertices of degree < 2 get coefficient 0 (the networkx convention).
    """
    t = local_triangle_counts(graph).astype(np.float64)
    deg = graph.degrees().astype(np.float64)
    denom = deg * (deg - 1.0)
    out = np.zeros(graph.num_vertices, dtype=np.float64)
    mask = denom > 0
    out[mask] = 2.0 * t[mask] / denom[mask]
    return out


def global_transitivity(graph: CSRGraph) -> float:
    """Global clustering coefficient: ``3 * triangles / wedges``."""
    deg = graph.degrees().astype(np.float64)
    wedges = float((deg * (deg - 1.0) / 2.0).sum())
    if wedges == 0.0:
        return 0.0
    triangles = int(local_triangle_counts(graph).sum()) // 3
    return 3.0 * triangles / wedges


def edge_supports(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Triangle support of every undirected edge.

    Returns ``(edges, support)`` where ``edges`` is the (m, 2) canonical
    edge array of :meth:`CSRGraph.edges` and ``support[i]`` the number of
    triangles containing edge ``i`` — the quantity k-truss peels on.
    """
    n = graph.num_vertices
    edges = graph.edges()
    v, u, w = _matched_triangles(graph.orient_lower())
    # each triangle (w < u < v) contributes to edges (u,v), (w,v), (w,u),
    # keyed canonically as (min, max) = (u,v), (w,v), (w,u)
    key = np.concatenate([u * n + v, w * n + v, w * n + u]) if v.size else np.empty(0, dtype=np.int64)
    edge_key = edges[:, 0] * n + edges[:, 1]
    order = np.argsort(edge_key)
    pos = np.searchsorted(edge_key[order], key)
    support = np.zeros(edges.shape[0], dtype=np.int64)
    if key.size:
        np.add.at(support, order[pos], 1)
    return edges, support
