"""Baseline triangle-counting algorithms and intersection kernels.

Implements every comparator the paper evaluates against (Section 5.1.4)
plus the classical algorithms of Section 2.2:

* node iterator, edge iterator, Forward (Algorithm 1);
* Forward-hashed (GBBS-style hashed intersection);
* block-based TC (BBTC-style 2-D partitioning);
* a scipy sparse-matrix reference used for validation only;
* approximate/streaming TC (DOULION, reservoir, Lotus-streaming, §6.2);
* k-clique counting (paper future work, §7).
"""

from repro.tc.result import TCResult
from repro.tc.intersect import (
    intersect_count_merge,
    intersect_count_binary,
    intersect_count_hash,
    intersect_count_bitmap,
    merge_join_cost,
    batch_intersect_counts,
    INTERSECT_KERNELS,
)
from repro.tc.matrix import count_triangles_matrix
from repro.tc.node_iterator import count_triangles_node_iterator
from repro.tc.edge_iterator import count_triangles_edge_iterator
from repro.tc.forward import count_triangles_forward, forward_count_oriented
from repro.tc.forward_hashed import count_triangles_forward_hashed
from repro.tc.block import count_triangles_block
from repro.tc.streaming import (
    doulion_estimate,
    reservoir_triangle_estimate,
    wedge_sampling_estimate,
    StreamingLotusCounter,
)
from repro.tc.kclique import count_kcliques, count_kcliques_hub
from repro.tc.local import (
    local_triangle_counts,
    local_clustering_coefficients,
    global_transitivity,
    edge_supports,
)
from repro.tc.truss import truss_numbers, k_truss
from repro.tc.spgemm import count_triangles_spgemm, masked_spgemm_count, spgemm_boolean

__all__ = [
    "TCResult",
    "intersect_count_merge",
    "intersect_count_binary",
    "intersect_count_hash",
    "intersect_count_bitmap",
    "merge_join_cost",
    "batch_intersect_counts",
    "INTERSECT_KERNELS",
    "count_triangles_matrix",
    "count_triangles_node_iterator",
    "count_triangles_edge_iterator",
    "count_triangles_forward",
    "forward_count_oriented",
    "count_triangles_forward_hashed",
    "count_triangles_block",
    "doulion_estimate",
    "reservoir_triangle_estimate",
    "wedge_sampling_estimate",
    "StreamingLotusCounter",
    "count_kcliques",
    "count_kcliques_hub",
    "local_triangle_counts",
    "local_clustering_coefficients",
    "global_transitivity",
    "edge_supports",
    "truss_numbers",
    "k_truss",
    "count_triangles_spgemm",
    "masked_spgemm_count",
    "spgemm_boolean",
]
