"""Sparse-matrix triangle counting reference.

``triangles = trace(A^3) / 6`` for a simple undirected adjacency matrix
A.  Computed as ``sum((L @ U) ∘ L)`` over the strictly-lower triangle to
avoid forming A^3.  This implementation is used purely as an independent
validation oracle for all the hand-written algorithms — the paper's
algorithms never materialise matrices.
"""

from __future__ import annotations

from repro.graph.build import to_sparse
from repro.graph.csr import CSRGraph
from repro.obs import root_span

import scipy.sparse as sp

__all__ = ["count_triangles_matrix"]


def count_triangles_matrix(graph: CSRGraph) -> int:
    """Exact triangle count via sparse matrix multiplication."""
    with root_span(
        "matrix", num_vertices=graph.num_vertices, num_edges=graph.num_edges
    ) as span:
        a = to_sparse(graph)
        if a.nnz == 0:
            span.set("triangles", 0)
            return 0
        lower = sp.tril(a, k=-1, format="csr")
        # paths of length 2 from u to w via any v, restricted to edges (u, w):
        # (A @ A) ∘ A counts each triangle 6 times; using L on both probe
        # sides counts each once: L[u,v], L[v,w] nonzero with w<v<u and
        # edge (u,w).
        paths = lower @ lower
        triangles = int(paths.multiply(lower).sum())
        span.set("spgemm_nnz", int(paths.nnz))
        span.set("triangles", triangles)
    return triangles
