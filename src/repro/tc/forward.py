"""The Forward algorithm (Algorithm 1) — the paper's baseline.

``reorder_by_degree`` + symmetric-edge elision (keep only ``N^<``), then
for every vertex ``v`` and every ``u in N_v^<`` add ``|N_v^< ∩ N_u^<|``.
This mirrors the GAP implementation the paper benchmarks against.

Two kernels with identical semantics:

* ``fused=True`` (default) — one vectorised pass over all oriented arcs
  (:func:`repro.tc.intersect.batch_pairwise_counts`); fastest in NumPy;
* ``fused=False`` — per-vertex batched intersections, the literal
  Algorithm-1 loop structure used by the instrumentation in
  :mod:`repro.memsim`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, OrientedGraph
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span, timed_phase
from repro.tc.intersect import batch_intersect_counts, batch_pairwise_counts
from repro.tc.result import TCResult
from repro.util.timer import PhaseTimer

__all__ = ["forward_count_oriented", "count_triangles_forward"]


def forward_count_oriented(oriented: OrientedGraph, fused: bool = True) -> int:
    """Count triangles of an already-oriented graph (rows = ``N^<``)."""
    indptr, indices = oriented.indptr, oriented.indices
    if fused:
        degrees = oriented.degrees()
        src = np.repeat(np.arange(oriented.num_vertices, dtype=np.int64), degrees)
        dst = indices.astype(np.int64, copy=False)
        return batch_pairwise_counts(indptr, indices, indptr, indices, src, dst)
    total = 0
    work_rows = np.flatnonzero(np.diff(indptr) >= 2)
    for v in work_rows:
        row = indices[indptr[v] : indptr[v + 1]]
        counts = batch_intersect_counts(indptr, indices, row, row.astype(np.int64))
        total += int(counts.sum())
    return total


def count_triangles_forward(
    graph: CSRGraph, degree_order: bool = True, fused: bool = True
) -> TCResult:
    """End-to-end Forward TC: preprocessing (degree ordering + orientation)
    followed by counting.  ``degree_order=False`` skips the reorder, which
    is the right choice for graphs with very few huge hubs (Section 5.5).
    """
    timer = PhaseTimer()
    with root_span(
        "forward" if degree_order else "forward-natural",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan:
        with timed_phase(timer, "preprocess") as span:
            work = apply_degree_ordering(graph)[0] if degree_order else graph
            oriented = work.orient_lower()
            span.set("oriented_arcs", oriented.num_edges)
        with timed_phase(timer, "count") as span:
            triangles = forward_count_oriented(oriented, fused=fused)
            if span.enabled:
                span.set("arcs_iterated", oriented.num_edges)
                deg = oriented.degrees()
                span.set(
                    "gather_volume",
                    int(deg[oriented.indices.astype(np.int64, copy=False)].sum()),
                )
        rspan.set("triangles", triangles)
    return TCResult(
        algorithm="forward" if degree_order else "forward-natural",
        triangles=triangles,
        elapsed=timer.total,
        phases=dict(timer.phases),
    )
