"""From-scratch sparse matrix algebra for triangle counting.

The linear-algebra TC family ([8] Azad et al.; the GraphChallenge
kernels) computes ``triangles = sum((L @ L) .* L)`` where L is the
strictly-lower adjacency matrix and ``.*`` the element-wise mask.  This
module implements the *masked SpGEMM* from scratch — no scipy — with the
row-merge (Gustavson) formulation vectorised over NumPy:

for every output row ``i``, the products ``L[i,k] * L[k,j]`` enumerate
paths i -> k -> j; masking by L[i,j] keeps closed wedges.  Because all
values are 0/1, the masked product reduces to counting gathered column
indices that hit the mask row — the same multi-row gather + binary-probe
kernel the rest of the library uses, which is exactly the equivalence
between SpGEMM TC and the Forward algorithm the literature points out.

A general (unmasked) boolean SpGEMM is included for completeness and is
validated against scipy in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span, timed_phase
from repro.tc.result import TCResult
from repro.util.arrays import concat_ranges, group_ids, segment_sums
from repro.util.timer import PhaseTimer

__all__ = ["masked_spgemm_count", "spgemm_boolean", "count_triangles_spgemm"]


def masked_spgemm_count(
    indptr: np.ndarray, indices: np.ndarray, budget: int = 1 << 22
) -> int:
    """``sum((A @ A) .* A)`` for a 0/1 CSR matrix with sorted rows.

    Row-merge formulation, chunked over rows: gather, for each row i,
    the concatenated rows A[k,:] of all k in A[i,:], then count the
    gathered entries that fall inside A[i,:] (the mask).  ``budget``
    bounds the gathered volume per chunk.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    n = indptr.size - 1
    total = 0
    row_lens = np.diff(indptr)
    # chunk rows so the gathered volume stays bounded
    gather_per_row = segment_sums(
        row_lens[indices.astype(np.int64, copy=False)], row_lens
    )
    start = 0
    while start < n:
        vol = 0
        stop = start
        while stop < n and (vol == 0 or vol + gather_per_row[stop] <= budget):
            vol += int(gather_per_row[stop])
            stop += 1
        rows = np.arange(start, stop, dtype=np.int64)
        # k-values: the column indices of the chunk's rows
        k_flat = concat_ranges(indptr[rows], row_lens[rows])
        ks = indices[k_flat].astype(np.int64, copy=False)
        owner_row = rows[group_ids(row_lens[rows])]
        # gather A[k,:] for every k, remembering which output row owns it
        k_lens = row_lens[ks]
        gathered = indices[concat_ranges(indptr[ks], k_lens)].astype(np.int64, copy=False)
        g_owner = owner_row[group_ids(k_lens)]
        # mask probe: is `gathered[j]` a column of row g_owner[j]?
        lo = indptr[g_owner].copy()
        hi = indptr[g_owner + 1].copy()
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) // 2
            vals = indices[np.minimum(mid, indices.size - 1)].astype(np.int64, copy=False)
            go_right = active & (vals < gathered)
            go_left = active & ~go_right
            lo[go_right] = mid[go_right] + 1
            hi[go_left] = mid[go_left]
        found = (lo < indptr[g_owner + 1]) & (
            indices[np.minimum(lo, indices.size - 1)] == gathered
        )
        total += int(np.count_nonzero(found))
        start = stop
    return total


def spgemm_boolean(
    indptr_a: np.ndarray,
    indices_a: np.ndarray,
    indptr_b: np.ndarray,
    indices_b: np.ndarray,
    n_cols: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean CSR product ``A @ B`` (pattern only), rows sorted.

    Gustavson row-merge with NumPy set-union per row chunk; returns
    ``(indptr, indices)`` of the product pattern.  Intended for modest
    matrices (validation, small substrates) — the masked variant above is
    the production kernel.
    """
    n_rows = indptr_a.size - 1
    out_rows: list[np.ndarray] = []
    counts = np.zeros(n_rows, dtype=np.int64)
    a_lens = np.diff(indptr_a)
    for i in range(n_rows):
        ks = indices_a[indptr_a[i] : indptr_a[i + 1]].astype(np.int64, copy=False)
        if ks.size == 0:
            out_rows.append(np.empty(0, dtype=np.int64))
            continue
        lens = indptr_b[ks + 1] - indptr_b[ks]
        gathered = indices_b[concat_ranges(indptr_b[ks], lens)]
        row = np.unique(gathered.astype(np.int64, copy=False))
        if row.size and row[-1] >= n_cols:
            raise ValueError("column index out of range")
        out_rows.append(row)
        counts[i] = row.size
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(out_rows) if counts.sum() else np.empty(0, dtype=np.int64)
    )
    return indptr, indices


def count_triangles_spgemm(graph: CSRGraph, degree_order: bool = True) -> TCResult:
    """Linear-algebra TC: ``sum((L @ L) .* L)`` on the oriented adjacency.

    End-to-end comparator in the style of the masked-SpGEMM
    GraphChallenge kernels; exact, from scratch (no scipy).
    """
    timer = PhaseTimer()
    with root_span(
        "spgemm-masked",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan:
        with timed_phase(timer, "preprocess") as span:
            work = apply_degree_ordering(graph)[0] if degree_order else graph
            oriented = work.orient_lower()
            span.set("oriented_arcs", oriented.num_edges)
        with timed_phase(timer, "count") as span:
            triangles = masked_spgemm_count(
                oriented.indptr, oriented.indices
            )
            if span.enabled:
                lens = np.diff(oriented.indptr)
                span.set(
                    "gather_volume",
                    int(lens[oriented.indices.astype(np.int64, copy=False)].sum()),
                )
        rspan.set("triangles", triangles)
    return TCResult(
        algorithm="spgemm-masked",
        triangles=triangles,
        elapsed=timer.total,
        phases=dict(timer.phases),
    )
