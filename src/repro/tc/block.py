"""Block-based triangle counting (BBTC-style, [76]).

BBTC partitions the adjacency matrix into 2-D blocks and counts triangles
block-triple by block-triple to improve load balancing on heterogeneous
hardware.  We reproduce the algorithmic skeleton: the vertex range is cut
into ``num_blocks`` contiguous ranges; for each block triple
``(bi <= bj <= bk)`` the kernel counts triangles whose (sorted) corners
fall in those ranges.  The triple loop adds bookkeeping overhead per
block, which is why BBTC trails the other systems in the paper's Table 5
— a property this reproduction inherits by construction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span, timed_phase
from repro.tc.result import TCResult
from repro.util.arrays import concat_ranges, segment_sums
from repro.util.timer import PhaseTimer

__all__ = ["count_triangles_block"]


def _block_boundaries(n: int, num_blocks: int) -> np.ndarray:
    """Contiguous vertex-range boundaries: ``num_blocks + 1`` cut points."""
    return np.linspace(0, n, num_blocks + 1).astype(np.int64)


def count_triangles_block(
    graph: CSRGraph, num_blocks: int = 8, degree_order: bool = True
) -> TCResult:
    """Count triangles by iterating over blocks of the oriented adjacency.

    For a triangle ``w < u < v`` let ``bk, bj, bi`` be the blocks of
    ``w, u, v``.  For every vertex block ``bi`` we process each vertex
    ``v`` once per (bj, bk) pair of its neighbour blocks, restricting both
    the iterated neighbours ``u`` and the intersection targets ``w`` to
    the corresponding ranges.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    timer = PhaseTimer()
    with root_span(
        f"block-{num_blocks}",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan:
        with timed_phase(timer, "preprocess") as span:
            work = apply_degree_ordering(graph)[0] if degree_order else graph
            oriented = work.orient_lower()
            n = oriented.num_vertices
            bounds = _block_boundaries(n, num_blocks)
            span.set("oriented_arcs", oriented.num_edges)
            span.set("num_blocks", num_blocks)
        with timed_phase(timer, "count") as span:
            indptr, indices = oriented.indptr, oriented.indices
            total = 0
            for v in range(n):
                row = indices[indptr[v] : indptr[v + 1]].astype(np.int64, copy=False)
                if row.size < 2:
                    continue
                # split v's neighbour list at block boundaries once
                cuts = np.searchsorted(row, bounds)
                for bj in range(num_blocks):
                    us = row[cuts[bj] : cuts[bj + 1]]
                    if us.size == 0:
                        continue
                    for bk in range(bj + 1):
                        wlo, whi = bounds[bk], bounds[bk + 1]
                        # targets w of v restricted to block bk
                        q = row[np.searchsorted(row, wlo) : np.searchsorted(row, whi)]
                        if q.size == 0:
                            continue
                        # neighbours of each u restricted to [wlo, whi)
                        u_start = indptr[us]
                        u_end = indptr[us + 1]
                        # range restriction via per-row binary search
                        lo = u_start + _rows_searchsorted(indices, u_start, u_end, wlo)
                        hi = u_start + _rows_searchsorted(indices, u_start, u_end, whi)
                        lens = hi - lo
                        gathered = indices[concat_ranges(lo, lens)]
                        pos = np.searchsorted(q, gathered)
                        np.minimum(pos, q.size - 1, out=pos)
                        hits = (q[pos] == gathered).astype(np.int64)
                        total += int(segment_sums(hits, lens).sum())
        rspan.set("triangles", total)
    return TCResult(
        algorithm=f"block-{num_blocks}",
        triangles=total,
        elapsed=timer.total,
        phases=dict(timer.phases),
        extra={"num_blocks": num_blocks},
    )


def _rows_searchsorted(
    indices: np.ndarray, starts: np.ndarray, ends: np.ndarray, value: int
) -> np.ndarray:
    """Vectorised per-row ``searchsorted``: offset of ``value`` in each
    sorted slice ``indices[starts[i]:ends[i]]``."""
    lo = starts.astype(np.int64).copy()
    hi = ends.astype(np.int64).copy()
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        vals = indices[np.minimum(mid, indices.size - 1)].astype(np.int64, copy=False)
        go_right = active & (vals < value)
        go_left = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[go_left] = mid[go_left]
    return lo - starts.astype(np.int64)
