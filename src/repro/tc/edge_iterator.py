"""Edge-iterator triangle counting (Section 2.2; GraphGrind's algorithm).

For every edge (u, v), count the common neighbours of its endpoints.
Iterating each undirected edge once counts every triangle 3 times (once
per side).  The paper benchmarks GraphGrind's edge iterator as one of
the comparator systems.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph
from repro.obs import root_span, timed_phase
from repro.tc.intersect import batch_pairwise_counts
from repro.tc.result import TCResult
from repro.util.timer import PhaseTimer

__all__ = ["count_triangles_edge_iterator"]


def count_triangles_edge_iterator(graph: CSRGraph) -> TCResult:
    """Count triangles as ``sum over edges (u,v) of |N_u ∩ N_v| / 3``."""
    timer = PhaseTimer()
    with root_span(
        "edge-iterator",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan:
        with timed_phase(timer, "preprocess") as span:
            edges = graph.edges()
            span.set("edges_enumerated", int(edges.shape[0]))
        with timed_phase(timer, "count") as span:
            raw = batch_pairwise_counts(
                graph.indptr, graph.indices,
                graph.indptr, graph.indices,
                edges[:, 0], edges[:, 1],
            )
            triangles = raw // 3
            span.set("intersections", int(edges.shape[0]))
        rspan.set("triangles", triangles)
    return TCResult(
        algorithm="edge-iterator",
        triangles=triangles,
        elapsed=timer.total,
        phases=dict(timer.phases),
    )
