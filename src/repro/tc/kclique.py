"""k-clique counting — the paper's first future-work item (Section 7).

TC is the k = 3 case of k-clique counting.  The paper anticipates that
the hub-dominance statistics become *more* skewed for larger cliques
(every corner of a clique needs k-1 incident edges, which favours hubs).

Two counters:

* :func:`count_kcliques` — the classical ordered-DAG enumeration
  (kClist / Chiba-Nishizeki style): orient edges by a total order, then
  recursively count cliques inside successive out-neighbourhood
  intersections;
* :func:`count_kcliques_hub` — the LOTUS-style decomposition into cliques
  containing at least one hub vs hub-free cliques, computed by counting
  on the full graph and on the hub-free induced subgraph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.degree import hub_mask_top_k
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span

__all__ = ["count_kcliques", "count_kcliques_hub"]


def _kclique_recursive(
    indptr: np.ndarray, indices: np.ndarray, candidates: np.ndarray, depth: int
) -> int:
    """Count (depth)-cliques inside the candidate set.

    ``candidates`` is a sorted array of vertices forming a clique-
    extension frontier: every vertex in it is adjacent (in the DAG) to all
    clique members chosen so far.
    """
    if depth == 1:
        return int(candidates.size)
    if depth == 2:
        # number of DAG edges inside the candidate set
        total = 0
        for v in candidates:
            row = indices[indptr[v] : indptr[v + 1]]
            pos = np.searchsorted(candidates, row)
            np.minimum(pos, candidates.size - 1, out=pos)
            total += int(np.count_nonzero(candidates[pos] == row))
        return total
    total = 0
    for v in candidates:
        row = indices[indptr[v] : indptr[v + 1]]
        nxt = _sorted_intersect(candidates, row)
        if nxt.size >= depth - 1:
            total += _kclique_recursive(indptr, indices, nxt, depth - 1)
    return total


def _sorted_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted arrays, sorted output."""
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=a.dtype)
    if a.size > b.size:
        a, b = b, a
    pos = np.searchsorted(b, a)
    valid = pos < b.size
    a = a[valid]
    pos = pos[valid]
    return a[b[pos] == a]


def count_kcliques(graph: CSRGraph, k: int, degree_order: bool = True) -> int:
    """Exact number of k-cliques in ``graph``.

    k = 1 counts vertices, k = 2 edges, k = 3 triangles, etc.  The degree
    ordering bounds out-degrees (the same optimisation the Forward
    algorithm uses), keeping the recursion shallow on power-law graphs.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return graph.num_vertices
    with root_span("kclique", k=k, num_vertices=graph.num_vertices) as span:
        work = apply_degree_ordering(graph)[0] if degree_order else graph
        oriented = work.orient_lower()
        indptr = oriented.indptr
        indices = oriented.indices.astype(np.int64, copy=False)
        if k == 2:
            span.set("cliques", oriented.num_edges)
            return oriented.num_edges
        total = 0
        for v in range(oriented.num_vertices):
            row = indices[indptr[v] : indptr[v + 1]]
            if row.size >= k - 1:
                total += _kclique_recursive(indptr, indices, row, k - 1)
        span.set("cliques", total)
    return total


def count_kcliques_hub(
    graph: CSRGraph, k: int, hub_count: int | None = None
) -> dict[str, int | float]:
    """LOTUS-style hub decomposition of the k-clique count.

    Returns ``{"total", "hub", "non_hub", "hub_fraction"}`` where ``hub``
    is the number of k-cliques containing at least one of the top
    ``hub_count`` vertices by degree.  Computed as
    ``total - kcliques(G - hubs)`` — the same subtraction identity LOTUS's
    NNN phase exploits for triangles.
    """
    if hub_count is None:
        hub_count = max(1, graph.num_vertices // 100)
    mask = hub_mask_top_k(graph, hub_count)
    total = count_kcliques(graph, k)
    non_hub_graph = graph.subgraph_mask(~mask)
    non_hub = count_kcliques(non_hub_graph, k)
    hub = total - non_hub
    return {
        "total": total,
        "hub": hub,
        "non_hub": non_hub,
        "hub_fraction": (hub / total) if total else 0.0,
    }
