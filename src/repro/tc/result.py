"""Common result record returned by every TC implementation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TCResult"]


@dataclass
class TCResult:
    """Outcome of one triangle-counting run.

    ``phases`` records the end-to-end breakdown the paper reports
    (preprocessing vs counting, Figure 6); ``extra`` carries
    algorithm-specific data (e.g. LOTUS per-type triangle counts).
    """

    algorithm: str
    triangles: int
    elapsed: float
    phases: dict[str, float] = field(default_factory=dict)
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def preprocessing_time(self) -> float:
        return self.phases.get("preprocess", 0.0)

    @property
    def counting_time(self) -> float:
        return self.elapsed - self.preprocessing_time

    def rate_edges_per_second(self, num_edges: int) -> float:
        """End-to-end TC rate (Figure 1 metric): edges / total seconds."""
        if self.elapsed == 0.0:
            return float("inf")
        return num_edges / self.elapsed
