"""k-truss decomposition — a triangle-support-based mining substrate.

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least k-2 triangles.  Truss decomposition is the
canonical *consumer* of edge-local triangle counts and one of the graph
mining applications the paper's introduction motivates.  The initial
support computation reuses the vectorised triangle enumeration of
:mod:`repro.tc.local`; the peeling loop follows the standard
support-ordered algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.tc.local import edge_supports

__all__ = ["truss_numbers", "k_truss"]


def truss_numbers(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Trussness of every edge.

    Returns ``(edges, truss)`` where ``truss[i]`` is the largest k such
    that edge ``i`` belongs to the k-truss.  Edges in no triangle have
    trussness 2.  Standard peeling: repeatedly remove the edge of
    minimum remaining support, decrementing the support of the edges of
    every triangle it closes.
    """
    edges, support = edge_supports(graph)
    m = edges.shape[0]
    truss = np.full(m, 2, dtype=np.int64)
    if m == 0:
        return edges, truss

    # adjacency with edge IDs for triangle lookup during peeling
    neighbor_edge: list[dict[int, int]] = [dict() for _ in range(graph.num_vertices)]
    for eid, (a, b) in enumerate(edges.tolist()):
        neighbor_edge[a][b] = eid
        neighbor_edge[b][a] = eid

    support = support.copy()
    alive = np.ones(m, dtype=bool)
    # bucket queue over support values
    order = list(np.argsort(support, kind="stable"))
    import heapq

    heap = [(int(support[e]), int(e)) for e in order]
    heapq.heapify(heap)
    k = 2
    processed = 0
    while heap:
        s, eid = heapq.heappop(heap)
        if not alive[eid] or s != support[eid]:
            continue  # stale heap entry
        k = max(k, s + 2)
        truss[eid] = k
        alive[eid] = False
        processed += 1
        a, b = int(edges[eid, 0]), int(edges[eid, 1])
        na, nb = neighbor_edge[a], neighbor_edge[b]
        small, big = (na, nb) if len(na) <= len(nb) else (nb, na)
        for w, e1 in list(small.items()):
            e2 = big.get(w)
            if e2 is None or not alive[e1] or not alive[e2]:
                continue
            for other in (e1, e2):
                support[other] -= 1
                heapq.heappush(heap, (int(support[other]), other))
        del na[b]
        del nb[a]
    return edges, truss


def k_truss(graph: CSRGraph, k: int) -> CSRGraph:
    """The k-truss subgraph of ``graph`` (on the same vertex set).

    Matches ``networkx.k_truss``: the maximal subgraph whose edges each
    participate in at least k-2 triangles *within the subgraph*.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    edges, truss = truss_numbers(graph)
    keep = truss >= k
    return from_edges(edges[keep], num_vertices=graph.num_vertices)
