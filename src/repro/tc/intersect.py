"""Neighbour-list intersection kernels.

The intersection of two sorted neighbour lists is the inner loop of every
TC algorithm (Section 2.2).  The paper discusses four families: merge
join, bitmap lookup, hashing, and binary search (Sections 2.2 and 6.3);
all four are implemented here with identical semantics so they can be
swapped in the ablation benches.

Scalar kernels (``intersect_count_*``) operate on one pair of sorted
arrays; :func:`batch_intersect_counts` is the vectorised work-horse used
by the Forward and LOTUS implementations — it intersects one query row
against many CSR rows in a single NumPy pass.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import concat_ranges, group_ids, segment_sums

__all__ = [
    "intersect_count_merge",
    "intersect_count_binary",
    "intersect_count_hash",
    "intersect_count_bitmap",
    "intersect_count_galloping",
    "intersect_count_adaptive",
    "merge_join_cost",
    "merge_join_touched",
    "batch_intersect_counts",
    "batch_pairwise_counts",
    "INTERSECT_KERNELS",
]


def intersect_count_merge(a: np.ndarray, b: np.ndarray) -> int:
    """Two-pointer merge-join count of common elements of sorted ``a``, ``b``.

    This is the reference implementation (kept deliberately literal — it
    mirrors the C code's control flow and is what the op-count model in
    :mod:`repro.memsim.opcounts` describes).  Use
    :func:`batch_intersect_counts` in hot paths.
    """
    i = j = count = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        av, bv = a[i], b[j]
        if av == bv:
            count += 1
            i += 1
            j += 1
        elif av < bv:
            i += 1
        else:
            j += 1
    return count


def intersect_count_binary(a: np.ndarray, b: np.ndarray) -> int:
    """Binary-search intersection: probe each element of the smaller list
    into the larger one (the GPU-style kernel of [31])."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return 0
    pos = np.searchsorted(b, a)
    valid = pos < b.size
    return int(np.count_nonzero(b[np.minimum(pos, b.size - 1)][valid] == a[valid]))


def intersect_count_hash(a: np.ndarray, b: np.ndarray) -> int:
    """Hash-container intersection (Forward-hashed / GBBS style)."""
    if len(a) > len(b):
        a, b = b, a
    small = set(int(x) for x in a)
    return sum(1 for y in b if int(y) in small)


def intersect_count_bitmap(a: np.ndarray, b: np.ndarray, universe: int | None = None) -> int:
    """Bitmap intersection (Latapy's new-vertex-listing style [48]).

    Marks ``a`` in a dense boolean array over the ID universe, then tests
    ``b``.  Cost is O(|a| + |b|) plus the (amortisable) bitmap clear.

    An explicit ``universe`` is a promise about the marked set: every
    element of ``a`` must fit (``ValueError`` otherwise — silently
    dropping marks would undercount).  Elements of ``b`` outside the
    universe cannot have been marked and simply contribute zero.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return 0
    if universe is None:
        universe = int(max(a.max(), b.max())) + 1
    elif a.max() >= universe:
        raise ValueError(
            f"universe={universe} cannot hold element {int(a.max())} of a"
        )
    bitmap = np.zeros(universe, dtype=bool)
    bitmap[a] = True
    b = b[b < universe]
    return int(np.count_nonzero(bitmap[b])) if b.size else 0


def intersect_count_galloping(a: np.ndarray, b: np.ndarray) -> int:
    """Galloping (exponential) search intersection.

    For each element of the smaller list, gallop through the larger list
    with doubling steps before a bounded binary search — the strategy of
    the branch-free GPU kernels [33, 40].  Asymptotically
    O(|a| log(|b|/|a|)), best when the size ratio is extreme (a hub list
    probed by a short list).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return 0
    count = 0
    lo = 0
    nb = b.size
    for x in a.tolist():
        # gallop from the current frontier
        step = 1
        hi = lo
        while hi < nb and b[hi] < x:
            lo = hi
            hi += step
            step <<= 1
        hi = min(hi, nb)
        pos = lo + int(np.searchsorted(b[lo:hi + 1 if hi < nb else nb], x))
        if pos < nb and b[pos] == x:
            count += 1
        lo = pos
    return count


def intersect_count_adaptive(a: np.ndarray, b: np.ndarray, ratio: int = 32) -> int:
    """Degree-adaptive intersection ([34]): merge join for similar sizes,
    binary probing when one list is >= ``ratio`` times longer."""
    a = np.asarray(a)
    b = np.asarray(b)
    small, big = (a, b) if a.size <= b.size else (b, a)
    if small.size == 0:
        return 0
    if big.size >= ratio * small.size:
        return intersect_count_binary(small, big)
    return intersect_count_merge(a, b)


INTERSECT_KERNELS = {
    "merge": intersect_count_merge,
    "binary": intersect_count_binary,
    "hash": intersect_count_hash,
    "bitmap": intersect_count_bitmap,
    "galloping": intersect_count_galloping,
    "adaptive": intersect_count_adaptive,
}


def merge_join_cost(a: np.ndarray, b: np.ndarray) -> int:
    """Exact number of loop iterations a two-pointer merge join performs.

    The merge advances one (or both) pointers per iteration and stops when
    either list is exhausted, so the iteration count equals
    ``|{x in a : x <= b[-1]}| + |{y in b : y <= a[-1]}| - |a ∩ b|``.
    Used by the op-count model; verified against the literal loop in the
    test suite.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return 0
    touched_a = int(np.searchsorted(a, b[-1], side="right"))
    touched_b = int(np.searchsorted(b, a[-1], side="right"))
    return touched_a + touched_b - intersect_count_binary(a, b)


def merge_join_touched(a: np.ndarray, b: np.ndarray) -> tuple[int, int]:
    """Number of elements of ``a`` and of ``b`` a merge join reads.

    An element is read iff it is <= the last element of the other list,
    except that the element that terminates the loop is also read; we use
    the simpler <=-rule, exact up to one element per list, which is what
    the locality traces need.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return 0, 0
    return (
        min(int(np.searchsorted(a, b[-1], side="right")) + 1, int(a.size)),
        min(int(np.searchsorted(b, a[-1], side="right")) + 1, int(b.size)),
    )


def batch_intersect_counts(
    indptr: np.ndarray,
    indices: np.ndarray,
    query: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """``out[i] = |query ∩ row(rows[i])|`` over a CSR structure, vectorised.

    ``query`` must be sorted ascending.  Gathers the neighbour lists of
    all ``rows`` in one shot and resolves membership with a single
    ``searchsorted`` — the Python interpreter never loops over edges.

    This is the library's hot kernel: Forward (Algorithm 1 line 5), the
    LOTUS HNN phase (Algorithm 3 line 9) and NNN phase (line 12) all
    reduce to calls of this function.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    query = np.asarray(query)
    if query.size == 0:
        return np.zeros(rows.size, dtype=np.int64)
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    flat = concat_ranges(starts, lengths)
    gathered = indices[flat]
    pos = np.searchsorted(query, gathered)
    np.minimum(pos, query.size - 1, out=pos)
    hits = (query[pos] == gathered).astype(np.int64)
    return segment_sums(hits, lengths)


def batch_pairwise_counts(
    indptr_a: np.ndarray,
    indices_a: np.ndarray,
    indptr_b: np.ndarray,
    indices_b: np.ndarray,
    pairs_left: np.ndarray,
    pairs_right: np.ndarray,
) -> int:
    """Sum of ``|A.row(l) ∩ B.row(r)|`` over paired rows, fully vectorised.

    Both structures must have sorted rows.  Used by the edge-iterator
    algorithm where the pair list is the edge list itself.  Processes the
    smaller side of each pair via gathered ``searchsorted`` against the
    concatenation trick: for each pair we probe every element of the
    B-row into the A-row.
    """
    pairs_left = np.asarray(pairs_left, dtype=np.int64)
    pairs_right = np.asarray(pairs_right, dtype=np.int64)
    if pairs_left.size == 0:
        return 0
    # probe the smaller row of each pair into the larger one so the
    # gathered volume is sum(min(deg_l, deg_r)) — without this, pairs
    # whose right row is a huge hub list dominate the gather cost
    deg_l = indptr_a[pairs_left + 1] - indptr_a[pairs_left]
    deg_r = indptr_b[pairs_right + 1] - indptr_b[pairs_right]
    swap = deg_l < deg_r
    total = 0
    for sel, (ip_g, ix_g, ip_p, ix_p, gather_rows, probe_rows) in (
        (~swap, (indptr_b, indices_b, indptr_a, indices_a, pairs_right, pairs_left)),
        (swap, (indptr_a, indices_a, indptr_b, indices_b, pairs_left, pairs_right)),
    ):
        g_rows_all = gather_rows[sel]
        p_rows_all = probe_rows[sel]
        chunk = 200_000
        for s in range(0, g_rows_all.size, chunk):
            g_rows = g_rows_all[s : s + chunk]
            p_rows = p_rows_all[s : s + chunk]
            g_starts = ip_g[g_rows]
            g_lens = ip_g[g_rows + 1] - g_starts
            gathered = ix_g[concat_ranges(g_starts, g_lens)].astype(np.int64, copy=False)
            owner = group_ids(g_lens)  # index into this chunk's pairs
            p_sel = p_rows[owner]
            lo = ip_p[p_sel].copy()
            hi = ip_p[p_sel + 1].copy()
            # classic vectorised per-window binary search (lower bound)
            while True:
                active = lo < hi
                if not active.any():
                    break
                mid = (lo + hi) // 2
                vals = ix_p[np.minimum(mid, ix_p.size - 1)].astype(np.int64, copy=False)
                go_right = active & (vals < gathered)
                go_left = active & ~go_right
                lo[go_right] = mid[go_right] + 1
                hi[go_left] = mid[go_left]
            found = (lo < ip_p[p_sel + 1]) & (
                ix_p[np.minimum(lo, ix_p.size - 1)] == gathered
            )
            total += int(np.count_nonzero(found))
    return total
