"""Node-iterator triangle counting (Section 2.2).

Enumerates each pair of neighbours of every vertex and checks whether the
pair is connected.  Each triangle is seen once per corner, so the raw
count is divided by 3.  O(sum deg(v)^2) pair tests — the slowest of the
classical algorithms; included as a comparator and validation aid.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import root_span
from repro.tc.intersect import batch_intersect_counts
from repro.tc.result import TCResult
from repro.util.timer import Timer

__all__ = ["count_triangles_node_iterator"]


def count_triangles_node_iterator(graph: CSRGraph) -> TCResult:
    """Count triangles by checking adjacency of every neighbour pair.

    For vertex ``v`` with neighbours ``N_v``, the number of connected
    pairs equals ``sum_{u in N_v} |N_v ∩ N_u| / 2``; summing over ``v``
    counts each triangle 6 times (3 corners x 2 pair orders), handled by
    a final division.
    """
    indptr, indices = graph.indptr, graph.indices
    with root_span(
        "node-iterator",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan, Timer() as t:
        total = 0
        intersections = 0
        for v in range(graph.num_vertices):
            row = indices[indptr[v] : indptr[v + 1]]
            if row.size < 2:
                continue
            intersections += row.size
            counts = batch_intersect_counts(indptr, indices, row, row.astype(np.int64))
            total += int(counts.sum())
        triangles = total // 6
        rspan.set("intersections", intersections)
        rspan.set("triangles", triangles)
    return TCResult(
        algorithm="node-iterator",
        triangles=triangles,
        elapsed=t.elapsed,
        phases={"count": t.elapsed},
    )
