"""Forward-hashed triangle counting (Schank & Wagner; GBBS-style).

Identical traversal to the Forward algorithm but the intersection uses a
hash container for the current vertex's neighbour list instead of a merge
join.  GBBS additionally parallelises the intersection; our substrate
exposes that through :mod:`repro.parallel` — the sequential kernel here
defines the algorithmic behaviour (op counts, access pattern).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.reorder import apply_degree_ordering
from repro.obs import root_span, timed_phase
from repro.tc.result import TCResult
from repro.util.arrays import concat_ranges
from repro.util.timer import PhaseTimer

__all__ = ["count_triangles_forward_hashed"]


def count_triangles_forward_hashed(graph: CSRGraph, degree_order: bool = True) -> TCResult:
    """Forward traversal with hash-membership intersections.

    The "hash container" is realised as a dense membership table indexed
    by vertex ID (the idiomatic NumPy analogue of a per-vertex hash set):
    marking ``N_v^<`` costs O(deg), probing each gathered neighbour is an
    O(1) random access — the same asymptotics and, crucially for the
    locality study, the same *random access pattern* as a hash table.
    """
    timer = PhaseTimer()
    with root_span(
        "forward-hashed",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as rspan:
        with timed_phase(timer, "preprocess") as span:
            work = apply_degree_ordering(graph)[0] if degree_order else graph
            oriented = work.orient_lower()
            span.set("oriented_arcs", oriented.num_edges)
        with timed_phase(timer, "count") as span:
            indptr, indices = oriented.indptr, oriented.indices
            n = oriented.num_vertices
            member = np.zeros(n, dtype=bool)
            total = 0
            probes = 0
            for v in range(n):
                row = indices[indptr[v] : indptr[v + 1]]
                if row.size < 2:
                    continue
                member[row] = True
                starts = indptr[row.astype(np.int64)]
                lens = indptr[row.astype(np.int64) + 1] - starts
                gathered = indices[concat_ranges(starts, lens)]
                probes += gathered.size
                total += int(np.count_nonzero(member[gathered]))
                member[row] = False
            span.set("hash_probes", probes)
        rspan.set("triangles", total)
    return TCResult(
        algorithm="forward-hashed",
        triangles=total,
        elapsed=timer.total,
        phases=dict(timer.phases),
    )
