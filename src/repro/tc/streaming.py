"""Approximate and streaming triangle counting (Section 6.2).

The paper positions LOTUS as an accelerator for streaming TC: hubs create
most triangles, so keeping the H2H bit array resident lets a streaming
counter process hub edges exactly and cheaply while sampling the non-hub
remainder.  Three counters are provided:

* :func:`doulion_estimate` — DOULION [71]: keep each edge with
  probability ``p``, count exactly, scale by ``1/p^3``;
* :func:`reservoir_triangle_estimate` — TRIEST-style reservoir sampling
  over an edge stream;
* :class:`StreamingLotusCounter` — the paper's proposal: hub triangles
  counted *exactly* using a resident hub-hub edge set (the streaming
  analogue of the H2H bit array) and per-vertex hub-neighbour sets, while
  non-hub-only edges may be subsampled to bound memory, with the NNN
  count rescaled DOULION-style.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.tc.forward import count_triangles_forward
from repro.util.rng import make_rng
from repro.util.validation import check_probability

__all__ = [
    "doulion_estimate",
    "reservoir_triangle_estimate",
    "wedge_sampling_estimate",
    "StreamingLotusCounter",
]


def wedge_sampling_estimate(
    graph: CSRGraph, num_samples: int = 10_000, seed: int | None = 0
) -> float:
    """Triangle estimate by uniform wedge sampling (Seshadhri-style [39]).

    Samples wedges (paths u-v-w through a centre v, chosen with
    probability proportional to v's wedge count), measures the fraction
    that close into a triangle (= the global transitivity kappa), and
    returns ``kappa * total_wedges / 3``.  Unbiased; variance shrinks as
    1/num_samples.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    deg = graph.degrees().astype(np.int64)
    wedges_per_vertex = deg * (deg - 1) // 2
    total_wedges = int(wedges_per_vertex.sum())
    if total_wedges == 0:
        return 0.0
    rng = make_rng(seed)
    # sample centres proportionally to wedge counts
    cdf = np.cumsum(wedges_per_vertex)
    picks = np.searchsorted(cdf, rng.integers(0, total_wedges, size=num_samples), side="right")
    closed = 0
    for v in picks.tolist():
        row = graph.neighbors(int(v))
        i, j = rng.choice(row.size, size=2, replace=False)
        u, w = int(row[i]), int(row[j])
        if graph.has_edge(u, w):
            closed += 1
    kappa = closed / num_samples
    return kappa * total_wedges / 3.0


def doulion_estimate(graph: CSRGraph, p: float, seed: int | None = 0) -> float:
    """DOULION: sparsify with coin probability ``p`` and rescale by p^-3."""
    check_probability(p, "p")
    if p == 0.0:
        return 0.0
    rng = make_rng(seed)
    edges = graph.edges()
    keep = rng.random(edges.shape[0]) < p
    sparsified = from_edges(edges[keep], num_vertices=graph.num_vertices)
    exact = count_triangles_forward(sparsified).triangles
    return exact / (p ** 3)


def reservoir_triangle_estimate(
    edges: np.ndarray, reservoir_size: int, seed: int | None = 0
) -> float:
    """TRIEST-base: unbiased triangle estimate from one pass over an edge
    stream using a fixed-size edge reservoir.

    ``edges`` is the stream in arrival order, shape (m, 2).  Returns the
    estimate at the end of the stream.
    """
    if reservoir_size < 1:
        raise ValueError("reservoir_size must be >= 1")
    rng = make_rng(seed)
    edges = np.asarray(edges, dtype=np.int64)
    adjacency: dict[int, set[int]] = {}
    reservoir: list[tuple[int, int]] = []
    tau = 0.0  # weighted triangle counter

    def weight(t: int) -> float:
        # inverse probability that both closing edges are in the reservoir
        m = reservoir_size
        if t <= m:
            return 1.0
        return max(1.0, (t - 1) * (t - 2) / (m * (m - 1)))

    for t, (u, v) in enumerate(edges, start=1):
        u, v = int(u), int(v)
        if u == v:
            continue
        common = adjacency.get(u, set()) & adjacency.get(v, set())
        tau += weight(t) * len(common)
        if len(reservoir) < reservoir_size:
            reservoir.append((u, v))
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        elif rng.random() < reservoir_size / t:
            idx = int(rng.integers(len(reservoir)))
            ou, ov = reservoir[idx]
            adjacency[ou].discard(ov)
            adjacency[ov].discard(ou)
            reservoir[idx] = (u, v)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
    return tau


class StreamingLotusCounter:
    """Streaming TC with LOTUS's resident hub structure (Section 6.2).

    The hub set is fixed up front (from a degree oracle or a warm-up
    window).  State kept:

    * ``h2h`` — hub-hub edge set (streaming analogue of the H2H bit array;
      with 64 K hubs this is at most 256 MB resident, per the paper);
    * per-vertex *hub-neighbour* sets (small — hubs are few);
    * full adjacency only for edges that survive non-hub subsampling:
      a non-hub-to-non-hub edge is stored with probability
      ``nn_keep_prob``; every closed triangle is weighted by the inverse
      probability that its two already-stored edges survived (hub edges
      survive with probability 1, non-hub edges with ``nn_keep_prob``),
      making the estimator unbiased.

    With ``nn_keep_prob=1.0`` the counter is exact.  HHH and HHN
    triangles are exact for *any* keep probability (all their stored
    edges touch a hub), and HNN triangles closed by their non-hub edge
    are exact too — this realises the paper's claim (Section 6.2) that
    the resident H2H/hub structures let a stream processor count the
    dominant triangle class precisely while sampling the rest.
    """

    def __init__(
        self,
        hubs: np.ndarray,
        nn_keep_prob: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        check_probability(nn_keep_prob, "nn_keep_prob")
        self._hubs = frozenset(int(h) for h in np.asarray(hubs).ravel())
        self._h2h: set[tuple[int, int]] = set()
        self._adj: dict[int, set[int]] = {}
        self._dropped: set[tuple[int, int]] = set()
        self._hub_neighbors: dict[int, set[int]] = {}
        self._rng = make_rng(seed)
        self._p = nn_keep_prob
        self._hub_weighted = 0.0
        self._nnn_weighted = 0.0
        self.edges_seen = 0
        self.edges_stored = 0

    def is_hub(self, v: int) -> bool:
        return v in self._hubs

    def _h2h_connected(self, a: int, b: int) -> bool:
        """Constant-time hub-hub adjacency test (H2H bit array analogue)."""
        return (min(a, b), max(a, b)) in self._h2h

    def update(self, u: int, v: int) -> None:
        """Process one arriving undirected edge."""
        u, v = int(u), int(v)
        if u == v:
            return
        self.edges_seen += 1
        u_hub, v_hub = u in self._hubs, v in self._hubs

        adj_u = self._adj.get(u, set())
        adj_v = self._adj.get(v, set())
        if v in adj_u:
            return  # duplicate edge
        key = (min(u, v), max(u, v))
        if key in self._dropped:
            # duplicate of a subsampled-away edge: each *distinct* edge
            # gets exactly one coin flip, so a re-arrival must neither
            # close triangles again nor re-enter the sampling lottery —
            # otherwise the estimate depends on duplicate multiplicity
            # and the per-seed result is no longer reproducible from the
            # distinct-edge stream
            return
        common = adj_u & adj_v
        for w in common:
            w_hub = w in self._hubs
            # inverse survival probability of the two stored edges
            # (u, w) and (v, w): hub edges are always kept
            p_uw = 1.0 if (u_hub or w_hub) else self._p
            p_vw = 1.0 if (v_hub or w_hub) else self._p
            weight = 1.0 / (p_uw * p_vw)
            if u_hub or v_hub or w_hub:
                self._hub_weighted += weight
            else:
                self._nnn_weighted += weight

        keep = True
        if not u_hub and not v_hub and self._p < 1.0:
            keep = bool(self._rng.random() < self._p)
        if not keep:
            self._dropped.add(key)
        if keep:
            self._adj.setdefault(u, set()).add(v)
            self._adj.setdefault(v, set()).add(u)
            self.edges_stored += 1
            if u_hub and v_hub:
                self._h2h.add((min(u, v), max(u, v)))
            if u_hub:
                self._hub_neighbors.setdefault(v, set()).add(u)
            if v_hub:
                self._hub_neighbors.setdefault(u, set()).add(v)

    def update_many(self, edges: np.ndarray) -> None:
        for u, v in np.asarray(edges, dtype=np.int64):
            self.update(int(u), int(v))

    @property
    def hub_triangles(self) -> int | float:
        """Triangles with >= 1 hub; exact (an int) when ``nn_keep_prob=1``."""
        if self._p == 1.0:
            return int(round(self._hub_weighted))
        return self._hub_weighted

    @property
    def nnn_estimate(self) -> float:
        """(Possibly rescaled) count of triangles with no hub corner."""
        return self._nnn_weighted

    def estimate_total(self) -> float:
        """Hub triangle estimate + NNN estimate (both exact at keep prob 1)."""
        return float(self._hub_weighted) + self._nnn_weighted

    def common_hub_neighbors(self, u: int, v: int) -> set[int]:
        """Hubs adjacent to both endpoints — the HNN closure query that the
        resident hub structures answer without touching main adjacency."""
        return self._hub_neighbors.get(u, set()) & self._hub_neighbors.get(v, set())
