"""Structural graph analytics: k-core decomposition and wedge counts.

Core numbers complement the hub machinery: the paper's node-iterator-core
relative (Section 6.1) processes vertices in degeneracy order, and the
k-clique counter bounds its recursion by the degeneracy.  Implemented
with the linear-time bucket peeling of Batagelj-Zaversnik.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["core_numbers", "degeneracy", "degeneracy_ordering", "wedge_count"]


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """k-core number of every vertex (Batagelj-Zaversnik peeling).

    The k-core is the maximal subgraph with all degrees >= k; a vertex's
    core number is the largest k of a core containing it.
    """
    n = graph.num_vertices
    deg = graph.degrees().astype(np.int64).copy()
    if n == 0:
        return deg
    max_deg = int(deg.max())
    # bucket sort vertices by degree
    bin_starts = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(deg, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_starts[1:])
    pos = bin_starts[deg].copy()  # position of each vertex in `vert`
    vert = np.empty(n, dtype=np.int64)
    fill = bin_starts[:-1].copy()
    for v in range(n):
        pos[v] = fill[deg[v]]
        vert[pos[v]] = v
        fill[deg[v]] += 1
    bins = bin_starts[:-1].copy()  # start index of each degree bucket

    core = deg.copy()
    indptr, indices = graph.indptr, graph.indices
    for i in range(n):
        v = int(vert[i])
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            if core[u] > core[v]:
                du = core[u]
                pu = pos[u]
                pw = bins[du]
                w = int(vert[pw])
                if u != w:  # swap u to the front of its bucket
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bins[du] += 1
                core[u] -= 1
    return core


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy: the maximum core number."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max())


def degeneracy_ordering(graph: CSRGraph) -> np.ndarray:
    """Vertices in a degeneracy (minimum-degree peeling) order.

    Orienting edges along this order bounds out-degrees by the
    degeneracy — the alternative to degree ordering used by
    node-iterator-core style algorithms (Section 6.1).
    """
    n = graph.num_vertices
    core = core_numbers(graph)
    # peel order = stable sort by (core number, degree)
    return np.lexsort((graph.degrees(), core))


def wedge_count(graph: CSRGraph) -> int:
    """Number of wedges (paths of length 2): ``sum_v deg_v*(deg_v-1)/2``.

    The denominator of the global transitivity and the search space the
    node-iterator algorithm enumerates (Section 2.2).
    """
    deg = graph.degrees().astype(np.int64)
    return int((deg * (deg - 1) // 2).sum())
