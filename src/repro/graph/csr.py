"""CSR (CSX) graph storage.

The paper stores graphs in Compressed Sparse Rows/Columns with ``|V|+1``
8-byte index values and 4-byte neighbour IDs (Section 5.1.2).  We mirror
that layout exactly: ``indptr`` is ``int64`` and ``indices`` is ``uint32``
(``uint64`` when the graph is too large), so the Table-7 byte accounting
is faithful.

Two classes:

* :class:`CSRGraph` — an undirected simple graph stored symmetrically
  (each edge appears in both endpoint rows), rows sorted ascending.
* :class:`OrientedGraph` — the "forward" orientation where row ``v``
  holds only ``N_v^< = {u in N_v | u < v}`` (Section 2.1).  This is the
  structure the Forward algorithm (Algorithm 1) iterates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["CSRGraph", "OrientedGraph", "neighbor_dtype_for"]


def neighbor_dtype_for(n_vertices: int) -> np.dtype:
    """Smallest of the paper's neighbour dtypes that can hold vertex IDs.

    The paper uses 4-byte IDs for public datasets and notes 8-byte IDs can
    be used for larger graphs (Section 4.3.2).
    """
    return np.dtype(np.uint32) if n_vertices <= np.iinfo(np.uint32).max else np.dtype(np.uint64)


class CSRGraph:
    """Undirected simple graph in CSR form.

    Invariants (enforced by builders, checkable via :meth:`validate`):

    * no self-loops, no duplicate edges;
    * symmetric: ``u in N_v  <=>  v in N_u``;
    * every row of ``indices`` is sorted ascending.

    ``indices.size == 2 * num_edges`` because each undirected edge is
    stored in both directions.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        indices = np.ascontiguousarray(indices)
        if indices.dtype.kind not in "ui":
            raise TypeError(f"indices must be an integer array, got {indices.dtype}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at indices.size")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices

    # -- basic properties -------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the stored directed arcs)."""
        return self.indices.size // 2

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (= 2 * num_edges)."""
        return int(self.indices.size)

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour list of ``v`` (a view, not a copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg) membership test via binary search on the sorted row."""
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < row.size and row[i] == v)

    # -- conversions -------------------------------------------------------
    def edges(self) -> np.ndarray:
        """Return an (m, 2) array of undirected edges with ``u < v`` per row."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees()
        )
        dst = self.indices.astype(np.int64, copy=False)
        keep = src < dst
        return np.column_stack([src[keep], dst[keep]])

    def orient_lower(self) -> "OrientedGraph":
        """Forward orientation: keep ``u < v`` in the row of ``v``.

        This implements the symmetric-edge elision of the Forward algorithm
        (Section 3.1): after (any) relabeling, edge (v, u) is retained in
        ``v``'s list iff ``u < v``; rows remain sorted.
        """
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        dst = self.indices.astype(np.int64, copy=False)
        keep = dst < src
        counts = np.bincount(src[keep], minlength=self.num_vertices)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # rows of `indices` are already sorted, and the mask preserves order
        indices = self.indices[keep].astype(self.indices.dtype, copy=False)
        return OrientedGraph(indptr, indices)

    def subgraph_mask(self, keep: np.ndarray) -> "CSRGraph":
        """Induced subgraph on the vertex set ``keep`` (boolean mask).

        Vertices are renumbered compactly in increasing original-ID order.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.size != self.num_vertices:
            raise ValueError("mask length must equal num_vertices")
        new_id = np.cumsum(keep, dtype=np.int64) - 1
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        dst = self.indices.astype(np.int64, copy=False)
        m = keep[src] & keep[dst]
        src, dst = new_id[src[m]], new_id[dst[m]]
        n = int(keep.sum())
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr, dst.astype(neighbor_dtype_for(n)))

    def to_shared(self):
        """Copy the CSR arrays into one shared-memory segment.

        Returns a :class:`repro.util.shm.SharedArrays` handle whose
        picklable ``manifest`` reconstructs the graph zero-copy in any
        process via :meth:`from_shared`.  The caller owns the segment
        (``unlink()`` when all attachers are done).
        """
        from repro.util.shm import share_arrays

        return share_arrays(
            {"indptr": self.indptr, "indices": self.indices},
            meta={"kind": "csr-graph"},
        )

    @classmethod
    def from_shared(cls, manifest: dict) -> "tuple[CSRGraph, object]":
        """Attach a segment created by :meth:`to_shared`.

        Returns ``(graph, handle)``; the graph's arrays are zero-copy
        views into the segment, which stays mapped at least as long as
        the views are alive.
        """
        from repro.util.shm import attach_arrays

        handle = attach_arrays(manifest)
        graph = cls(handle.arrays["indptr"], handle.arrays["indices"])
        return graph, handle

    def nbytes_csx(self, include_symmetric: bool = True) -> int:
        """Bytes of the CSX representation as accounted in Table 7.

        ``|V|+1`` index values of 8 bytes plus 4 bytes (or 8 for huge
        graphs) per stored neighbour ID.  With ``include_symmetric=False``
        only half the arcs are counted (the Forward algorithm uses only
        ``N^<``, see Section 5.6).
        """
        arcs = self.num_arcs if include_symmetric else self.num_edges
        return 8 * (self.num_vertices + 1) + self.indices.dtype.itemsize * arcs

    def validate(self) -> None:
        """Check all invariants; raises ``ValueError`` on violation."""
        n = self.num_vertices
        if self.indices.size and int(self.indices.max(initial=0)) >= n:
            raise ValueError("neighbour ID out of range")
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
        dst = self.indices.astype(np.int64, copy=False)
        if np.any(src == dst):
            raise ValueError("self-loop present")
        for v in range(n):
            row = self.neighbors(v)
            if row.size > 1 and np.any(np.diff(row.astype(np.int64)) <= 0):
                raise ValueError(f"row {v} not strictly sorted")
        # symmetry: the multiset of (min,max) pairs must pair up exactly
        lo, hi = np.minimum(src, dst), np.maximum(src, dst)
        key = lo * n + hi
        _, counts = np.unique(key, return_counts=True)
        if np.any(counts != 2):
            raise ValueError("graph is not symmetric or has duplicate edges")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def iter_vertices(self) -> Iterator[int]:
        return iter(range(self.num_vertices))


class OrientedGraph:
    """Directed acyclic orientation of a graph: row ``v`` holds ``N_v^<``.

    Produced by :meth:`CSRGraph.orient_lower`.  Stores each undirected
    edge exactly once, which is what Algorithm 1 iterates over.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices)
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at indices.size")

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted ``N_v^<`` (a view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def validate(self) -> None:
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        dst = self.indices.astype(np.int64, copy=False)
        if np.any(dst >= src):
            raise ValueError("oriented row contains neighbour >= vertex")
        for v in range(self.num_vertices):
            row = self.neighbors(v)
            if row.size > 1 and np.any(np.diff(row.astype(np.int64)) <= 0):
                raise ValueError(f"row {v} not strictly sorted")

    def __repr__(self) -> str:
        return f"OrientedGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
