"""Vertex relabeling: degree ordering and the LOTUS relabeling array.

Degree ordering (descending) is the standard Forward-algorithm
preprocessing (Algorithm 1, line 1).  LOTUS instead assigns the first
consecutive IDs to the top 10 % of vertices by degree — the first
``hub_count`` of which are the hubs — and keeps the *original* order for
the remaining 90 % to preserve the input graph's locality
(Section 4.3.1).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, neighbor_dtype_for

__all__ = [
    "degree_ordering_permutation",
    "lotus_relabeling_array",
    "relabel",
    "apply_degree_ordering",
]


def degree_ordering_permutation(graph: CSRGraph) -> np.ndarray:
    """Relabeling array ``RA``: ``RA[old_id] = new_id`` by descending degree.

    Ties are broken by original ID so the permutation is deterministic.
    """
    n = graph.num_vertices
    deg = graph.degrees()
    order = np.lexsort((np.arange(n), -deg))  # old IDs in new-ID order
    ra = np.empty(n, dtype=np.int64)
    ra[order] = np.arange(n, dtype=np.int64)
    return ra


def lotus_relabeling_array(graph: CSRGraph, head_fraction: float = 0.10) -> np.ndarray:
    """The LOTUS ``create_relabeling_array()`` (Algorithm 2, line 1).

    The top ``head_fraction`` of vertices by degree receive the first
    consecutive new IDs (in descending-degree order, so hubs come first);
    all remaining vertices keep their relative original order.  This
    avoids the locality destruction of full degree ordering that the paper
    highlights (Section 4.3.1).
    """
    if not (0.0 <= head_fraction <= 1.0):
        raise ValueError("head_fraction must be in [0, 1]")
    n = graph.num_vertices
    deg = graph.degrees()
    head = int(round(n * head_fraction))
    order = np.lexsort((np.arange(n), -deg))
    head_old = order[:head]  # top-degree vertices, by descending degree
    tail_mask = np.ones(n, dtype=bool)
    tail_mask[head_old] = False
    tail_old = np.flatnonzero(tail_mask)  # remaining vertices in original order
    ra = np.empty(n, dtype=np.int64)
    ra[head_old] = np.arange(head, dtype=np.int64)
    ra[tail_old] = head + np.arange(n - head, dtype=np.int64)
    return ra


def relabel(graph: CSRGraph, ra: np.ndarray) -> CSRGraph:
    """Apply a relabeling array (``ra[old] = new``) to ``graph``.

    Returns a new :class:`CSRGraph` whose vertex ``ra[v]`` has the
    (relabeled, re-sorted) neighbour list of ``v``.
    """
    ra = np.asarray(ra, dtype=np.int64)
    n = graph.num_vertices
    if ra.size != n:
        raise ValueError("relabeling array length must equal num_vertices")
    check = np.zeros(n, dtype=bool)
    check[ra] = True
    if not check.all():
        raise ValueError("relabeling array must be a permutation of 0..n-1")
    old_src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    new_src = ra[old_src]
    new_dst = ra[graph.indices.astype(np.int64, copy=False)]
    order = np.lexsort((new_dst, new_src))
    new_src, new_dst = new_src[order], new_dst[order]
    counts = np.bincount(new_src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, new_dst.astype(neighbor_dtype_for(n)))


def apply_degree_ordering(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Degree-order ``graph``; returns ``(relabeled_graph, ra)``."""
    ra = degree_ordering_permutation(graph)
    return relabel(graph, ra), ra
