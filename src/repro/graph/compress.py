"""Compressed neighbour-list (CSX) encoding — the Section 3.2 study.

The paper motivates LOTUS's 16-bit HE IDs with coding theory: hub IDs
occur in most neighbour lists, so spending a fixed 32 bits on them is
wasteful.  This module provides a WebGraph-flavoured delta + varint row
encoding so the compactness argument can be *measured*: after the LOTUS
relabeling puts hubs at the smallest IDs, the frequent IDs become the
cheapest to encode and the topology shrinks — without any per-edge
entropy coder (the paper's "no runtime overhead" requirement rules
Huffman out; varint decoding is a few shifts per edge).

Encoding: each row stores its first neighbour as an absolute varint,
then the successive gaps minus one (rows are strictly increasing).
Varints use 7 payload bits per byte, little-endian, MSB as continuation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "varint_encode",
    "varint_decode",
    "CompressedCSX",
    "compress_graph",
    "save_compressed",
    "load_compressed",
]

_THRESHOLDS = [1 << (7 * k) for k in range(1, 10)]


def varint_encode(values: np.ndarray) -> np.ndarray:
    """Encode non-negative integers as little-endian base-128 varints.

    Fully vectorised: one pass per byte position (at most 10 for 64-bit
    values).  Returns a ``uint8`` array.
    """
    v = np.asarray(values)
    if v.size and v.min() < 0:
        raise ValueError("varint values must be non-negative")
    v = v.astype(np.uint64, copy=False)
    nbytes = np.ones(v.size, dtype=np.int64)
    for t in _THRESHOLDS:
        nbytes += v >= t
    total = int(nbytes.sum())
    out = np.zeros(total, dtype=np.uint8)
    starts = np.cumsum(nbytes) - nbytes
    max_len = int(nbytes.max()) if v.size else 0
    for j in range(max_len):
        sel = nbytes > j
        byte = (v[sel] >> np.uint64(7 * j)) & np.uint64(0x7F)
        more = (nbytes[sel] - 1 > j).astype(np.uint8) << 7
        out[starts[sel] + j] = byte.astype(np.uint8) | more
    return out


def varint_decode(data: np.ndarray) -> np.ndarray:
    """Decode a concatenation of varints back to a ``uint64`` array.

    Vectorised: value boundaries are the bytes whose continuation bit is
    clear; payloads are accumulated by byte position within each value.
    """
    data = np.asarray(data, dtype=np.uint8)
    if data.size == 0:
        return np.empty(0, dtype=np.uint64)
    is_last = (data & 0x80) == 0
    if not is_last[-1]:
        raise ValueError("truncated varint stream")
    # value index of every byte: 0-based, increments after each terminator
    value_id = np.zeros(data.size, dtype=np.int64)
    value_id[1:] = np.cumsum(is_last[:-1])
    num_values = int(value_id[-1]) + 1
    # byte position within its value
    starts = np.zeros(num_values, dtype=np.int64)
    starts[1:] = np.flatnonzero(is_last)[:-1] + 1
    pos = np.arange(data.size, dtype=np.int64) - starts[value_id]
    if int(pos.max()) * 7 >= 64:
        raise ValueError("varint too long for uint64")
    out = np.zeros(num_values, dtype=np.uint64)
    np.add.at(
        out,
        value_id,
        (data.astype(np.uint64) & np.uint64(0x7F)) << (7 * pos).astype(np.uint64),
    )
    return out


class CompressedCSX:
    """Delta+varint compressed neighbour lists with per-row byte offsets."""

    __slots__ = ("row_offsets", "data", "num_vertices", "num_arcs")

    def __init__(self, row_offsets: np.ndarray, data: np.ndarray, num_arcs: int) -> None:
        self.row_offsets = row_offsets
        self.data = data
        self.num_vertices = row_offsets.size - 1
        self.num_arcs = num_arcs

    @property
    def nbytes(self) -> int:
        """Payload bytes plus the 8-byte-per-row offset array (Table 7 style)."""
        return int(self.data.nbytes) + 8 * (self.num_vertices + 1)

    def bytes_per_arc(self) -> float:
        return self.data.nbytes / self.num_arcs if self.num_arcs else 0.0

    def decode_row(self, v: int) -> np.ndarray:
        """Neighbour list of ``v`` (sorted ascending, as encoded)."""
        chunk = self.data[self.row_offsets[v] : self.row_offsets[v + 1]]
        if chunk.size == 0:
            return np.empty(0, dtype=np.int64)
        deltas = varint_decode(chunk).astype(np.int64)
        deltas[1:] += 1  # gaps were stored as (gap - 1)
        return np.cumsum(deltas)

    def decode(self) -> CSRGraph:
        """Round-trip back to an uncompressed :class:`CSRGraph`."""
        rows = [self.decode_row(v) for v in range(self.num_vertices)]
        counts = np.array([r.size for r in rows], dtype=np.int64)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate(rows) if counts.sum() else np.empty(0, dtype=np.int64)
        )
        return CSRGraph(indptr, indices.astype(np.uint32))


def compress_graph(graph: CSRGraph) -> CompressedCSX:
    """Compress every (sorted) row of ``graph``.

    Row encoding: absolute first neighbour, then successive gaps minus 1.
    The whole transform is vectorised: deltas for all rows are computed
    in one pass and varint-encoded in one call; per-row byte offsets are
    recovered from the per-value byte lengths.
    """
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices.astype(np.int64, copy=False)
    if indices.size == 0:
        return CompressedCSX(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.uint8), 0)
    deg = graph.degrees()
    # delta transform: first element absolute, others gap-1
    deltas = indices.copy()
    row_first = indptr[:-1][deg > 0]
    interior = np.ones(indices.size, dtype=bool)
    interior[row_first] = False
    deltas[interior] = indices[interior] - indices[np.flatnonzero(interior) - 1] - 1
    encoded = varint_encode(deltas)
    # per-value byte length -> per-row byte counts -> offsets
    value_bytes = np.ones(indices.size, dtype=np.int64)
    d = deltas.astype(np.uint64)
    for t in _THRESHOLDS:
        value_bytes += d >= t
    row_bytes = np.zeros(n, dtype=np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    np.add.at(row_bytes, owner, value_bytes)
    row_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_bytes, out=row_offsets[1:])
    return CompressedCSX(row_offsets, encoded, int(indices.size))


def save_compressed(path, compressed: CompressedCSX) -> None:
    """Persist a :class:`CompressedCSX` to an ``.npz`` file."""
    np.savez_compressed(
        path,
        row_offsets=compressed.row_offsets,
        data=compressed.data,
        num_arcs=np.int64(compressed.num_arcs),
    )


def load_compressed(path) -> CompressedCSX:
    """Load a :class:`CompressedCSX` saved by :func:`save_compressed`."""
    with np.load(path) as blob:
        return CompressedCSX(
            blob["row_offsets"], blob["data"], int(blob["num_arcs"])
        )
