"""Graph substrate: CSR storage, builders, IO, generators, analytics.

This package implements the CSX (compressed sparse rows/columns)
representation the paper builds on (Section 2.1), the degree-ordering
machinery of the Forward algorithm (Section 2.2/3.1), and synthetic
power-law generators standing in for the paper's 14 real-world datasets
(Table 4) — see DESIGN.md §1 for the substitution rationale.
"""

from repro.graph.csr import CSRGraph, OrientedGraph
from repro.graph.build import (
    from_edges,
    from_sparse,
    to_sparse,
    normalize_edges,
)
from repro.graph.generators import (
    erdos_renyi,
    chung_lu,
    powerlaw_chung_lu,
    rmat,
    barabasi_albert,
    watts_strogatz,
    complete_graph,
    star_graph,
    cycle_graph,
    empty_graph,
)
from repro.graph.degree import (
    degree_statistics,
    is_skewed,
    hub_mask_top_fraction,
    hub_mask_top_k,
)
from repro.graph.reorder import (
    degree_ordering_permutation,
    lotus_relabeling_array,
    relabel,
    apply_degree_ordering,
)
from repro.graph.io import (
    save_npz,
    load_npz,
    save_edgelist,
    load_edgelist,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    dataset_names,
)
from repro.graph.analytics import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    wedge_count,
)
from repro.graph.compress import (
    CompressedCSX,
    compress_graph,
    load_compressed,
    save_compressed,
    varint_decode,
    varint_encode,
)

__all__ = [
    "CSRGraph",
    "OrientedGraph",
    "from_edges",
    "from_sparse",
    "to_sparse",
    "normalize_edges",
    "erdos_renyi",
    "chung_lu",
    "powerlaw_chung_lu",
    "rmat",
    "barabasi_albert",
    "watts_strogatz",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "empty_graph",
    "degree_statistics",
    "is_skewed",
    "hub_mask_top_fraction",
    "hub_mask_top_k",
    "degree_ordering_permutation",
    "lotus_relabeling_array",
    "relabel",
    "apply_degree_ordering",
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "wedge_count",
    "CompressedCSX",
    "compress_graph",
    "load_compressed",
    "save_compressed",
    "varint_decode",
    "varint_encode",
]
