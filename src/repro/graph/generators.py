"""Synthetic graph generators.

These stand in for the paper's real-world datasets (Table 4): the LOTUS
claims derive from the *power-law structure* of the graphs — skewed degree
distribution, dense hub sub-graph — which the Chung-Lu and R-MAT models
reproduce at laptop scale (see DESIGN.md §1).

All generators return a validated, simple, undirected :class:`CSRGraph`
and are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng
from repro.util.validation import check_nonnegative_int, check_probability

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "powerlaw_chung_lu",
    "rmat",
    "barabasi_albert",
    "watts_strogatz",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "empty_graph",
]


def empty_graph(n: int) -> CSRGraph:
    """Graph on ``n`` vertices with no edges."""
    check_nonnegative_int(n, "n")
    return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    """Complete graph K_n — every pair of vertices connected."""
    check_nonnegative_int(n, "n")
    iu = np.triu_indices(n, k=1)
    return from_edges(np.column_stack(iu).astype(np.int64), num_vertices=n)


def star_graph(n: int) -> CSRGraph:
    """Star: vertex 0 connected to vertices 1..n-1 (the extreme hub)."""
    check_nonnegative_int(n, "n")
    if n < 2:
        return empty_graph(n)
    spokes = np.arange(1, n, dtype=np.int64)
    edges = np.column_stack([np.zeros_like(spokes), spokes])
    return from_edges(edges, num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle C_n (triangle-free for n != 3)."""
    check_nonnegative_int(n, "n")
    if n < 3:
        return empty_graph(n)
    v = np.arange(n, dtype=np.int64)
    edges = np.column_stack([v, (v + 1) % n])
    return from_edges(edges, num_vertices=n)


def erdos_renyi(n: int, p: float, seed: int | None = 0) -> CSRGraph:
    """G(n, p) random graph.

    Uses geometric skipping so memory is O(expected edges), not O(n^2).
    """
    check_nonnegative_int(n, "n")
    check_probability(p, "p")
    rng = make_rng(seed)
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0 or p == 0.0:
        return empty_graph(n)
    if p == 1.0:
        return complete_graph(n)
    # sample the linear indices of present pairs by geometric gaps
    expected = total_pairs * p
    picks: list[np.ndarray] = []
    pos = -1
    # draw in chunks to stay vectorised
    chunk = max(1024, int(expected * 1.2))
    log1mp = np.log1p(-p)
    while pos < total_pairs:
        gaps = np.floor(np.log1p(-rng.random(chunk)) / log1mp).astype(np.int64) + 1
        idx = pos + np.cumsum(gaps)
        picks.append(idx[idx < total_pairs])
        if idx.size == 0 or idx[-1] >= total_pairs:
            break
        pos = int(idx[-1])
    lin = np.concatenate(picks) if picks else np.empty(0, dtype=np.int64)
    lin = np.unique(lin)
    # invert linear index over the strict upper triangle: pair (u, v), u < v
    # row u starts at offset u*n - u*(u+1)/2 - u ... use search over cumulative row sizes
    row_sizes = np.arange(n - 1, 0, -1, dtype=np.int64)
    row_starts = np.zeros(n, dtype=np.int64)
    np.cumsum(row_sizes, out=row_starts[1:])
    u = np.searchsorted(row_starts, lin, side="right") - 1
    v = lin - row_starts[u] + u + 1
    return from_edges(np.column_stack([u, v]), num_vertices=n)


def chung_lu(weights: np.ndarray, seed: int | None = 0) -> CSRGraph:
    """Chung-Lu random graph with expected degrees ``weights``.

    Edge (u, v) appears with probability ``min(1, w_u * w_v / W)`` where
    ``W = sum(weights)``.  Implemented with the efficient "weight bucket"
    scheme: vertices sorted by weight descending, edges sampled per source
    with geometric skipping — O(m + n) expected time.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-D")
    if weights.size and weights.min() < 0:
        raise ValueError("weights must be non-negative")
    n = weights.size
    total = weights.sum()
    if n == 0 or total == 0:
        return empty_graph(n)
    rng = make_rng(seed)
    order = np.argsort(-weights, kind="stable")
    w = weights[order]
    src_list: list[np.ndarray] = []
    dst_list: list[np.ndarray] = []
    # classic Miller-Hagberg style sequential scan per source vertex
    for i in range(n - 1):
        wi = w[i]
        if wi == 0:
            break
        j = i + 1
        p = min(1.0, wi * w[j] / total)
        while j < n and p > 0:
            if p < 1.0:
                # geometric skip ahead
                r = rng.random()
                j += int(np.log(r) / np.log1p(-p)) if p < 1.0 else 0
            if j < n:
                q = min(1.0, wi * w[j] / total)
                if rng.random() < q / p:
                    src_list.append(np.int64(i))
                    dst_list.append(np.int64(j))
                p = q
                j += 1
    if not src_list:
        return empty_graph(n)
    src = order[np.asarray(src_list, dtype=np.int64)]
    dst = order[np.asarray(dst_list, dtype=np.int64)]
    return from_edges(np.column_stack([src, dst]), num_vertices=n)


def powerlaw_weights(n: int, exponent: float, avg_degree: float) -> np.ndarray:
    """Expected-degree sequence following a power law with given exponent.

    ``w_i ∝ (i + i0)^(-1/(exponent-1))`` scaled so the mean is
    ``avg_degree``; ``exponent`` is the tail exponent gamma (typically
    2–3 for social networks).
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    i = np.arange(n, dtype=np.float64)
    raw = (i + 1.0) ** (-1.0 / (exponent - 1.0))
    raw *= avg_degree * n / raw.sum()
    return raw


def powerlaw_chung_lu(
    n: int, avg_degree: float, exponent: float = 2.1, seed: int | None = 0,
    max_degree_fraction: float = 0.5,
) -> CSRGraph:
    """Chung-Lu graph with a power-law expected degree sequence.

    This is the primary stand-in for the paper's social-network datasets:
    a small fraction of hub vertices attracts a disproportionately large
    fraction of the edges, and hubs are densely interconnected — exactly
    the Table-1 statistics LOTUS exploits.
    """
    check_nonnegative_int(n, "n")
    w = powerlaw_weights(n, exponent, avg_degree)
    w = np.minimum(w, max_degree_fraction * n)
    return chung_lu(w, seed=seed)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
) -> CSRGraph:
    """R-MAT / Kronecker graph on ``2**scale`` vertices.

    The Graph500 parameterisation (a=0.57, b=c=0.19, d=0.05) produces the
    heavy-tailed degree distribution and community structure typical of the
    paper's web graphs.  Duplicate edges and self loops generated by the
    recursive process are removed, so the final edge count is slightly
    below ``edge_factor * 2**scale``.
    """
    check_nonnegative_int(scale, "scale")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum <= 1")
    n = 1 << scale
    m = edge_factor * n
    rng = make_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant choice: [a | b / c | d]
        go_down = r >= a + b  # row bit set
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)  # col bit set
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    return from_edges(np.column_stack([src, dst]), num_vertices=n)


def barabasi_albert(n: int, m: int, seed: int | None = 0) -> CSRGraph:
    """Barabási-Albert preferential attachment: each new vertex adds ``m`` edges.

    Uses the repeated-nodes list trick for O(m·n) time.
    """
    check_nonnegative_int(n, "n")
    check_nonnegative_int(m, "m")
    if m < 1 or n <= m:
        raise ValueError("need 1 <= m < n")
    rng = make_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    # start from a star on m+1 vertices so every early vertex has degree >= 1
    repeated: list[int] = []
    for v in range(1, m + 1):
        src.append(0)
        dst.append(v)
        repeated.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[rng.integers(len(repeated))])
        for t in targets:
            src.append(v)
            dst.append(t)
            repeated.extend((v, t))
    edges = np.column_stack([np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)])
    return from_edges(edges, num_vertices=n)


def watts_strogatz(n: int, k: int, p: float, seed: int | None = 0) -> CSRGraph:
    """Watts-Strogatz small world: ring lattice with ``k`` neighbours, rewired with prob ``p``.

    A *non*-skewed graph — used to exercise the Section 5.5 fallback path
    where LOTUS should detect low skew and defer to the Forward algorithm.
    """
    check_nonnegative_int(n, "n")
    check_nonnegative_int(k, "k")
    check_probability(p, "p")
    if k % 2 != 0:
        raise ValueError("k must be even")
    if n <= k:
        raise ValueError("need n > k")
    rng = make_rng(seed)
    v = np.arange(n, dtype=np.int64)
    src_parts = []
    dst_parts = []
    for off in range(1, k // 2 + 1):
        src_parts.append(v)
        dst_parts.append((v + off) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(src.size) < p
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return from_edges(np.column_stack([src, dst]), num_vertices=n)
