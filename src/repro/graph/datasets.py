"""Synthetic stand-ins for the paper's 14 real-world datasets (Table 4).

The real graphs (LiveJournal ... EU-2015, up to 162 B edges) cannot be
shipped or processed in pure Python.  Each registry entry generates a
scaled-down synthetic graph whose *structure* matches the original's
role in the evaluation:

* social networks (SN) -> Chung-Lu with a power-law expected degree
  sequence (tail exponent ~2.0-2.3, giving the hub-dominated structure of
  Table 1);
* web graphs (WG) -> R-MAT with skewed quadrant probabilities (dense
  hub-hub blocks, high hub-triangle share, the Table-8 "tightly packed
  H2H" behaviour);
* the bio graph (BG) -> R-MAT with milder skew;
* Friendster -> deliberately low skew (the paper's Section 5.5 outlier:
  max degree only ~5K, few hub edges, LOTUS gains least).

Absolute sizes are scaled to 10^4-10^5 vertices so every experiment runs
on a laptop; the reproduction target is the *shape* of each result, not
the paper's absolute seconds (DESIGN.md §1).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_chung_lu, rmat, watts_strogatz

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "SMALL_SUITE", "LARGE_SUITE"]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic stand-in dataset.

    ``paper_vertices_m`` / ``paper_edges_b`` / ``paper_triangles`` record
    the original dataset's statistics from Table 4 for the EXPERIMENTS.md
    comparison; ``generate`` builds the scaled synthetic graph.
    """

    name: str
    paper_name: str
    kind: str  # "SN" social network, "WG" web graph, "BG" bio graph
    paper_vertices_m: float
    paper_edges_b: float
    paper_triangles: int
    generate: Callable[[], CSRGraph]
    large: bool = False  # paper's >10B-edge class (Table 6)
    # CSX topology size in GB as reported in the paper's Table 7 (used to
    # derive the per-dataset cache scale factor, DESIGN.md §1); estimated
    # as ~2 GB per billion Table-4 edges for datasets Table 7 omits.
    paper_csx_gb: float = 0.0


def _sn(n: int, avg_deg: float, gamma: float, seed: int) -> Callable[[], CSRGraph]:
    return lambda: powerlaw_chung_lu(n, avg_deg, exponent=gamma, seed=seed)


def _wg(scale: int, ef: int, a: float, seed: int) -> Callable[[], CSRGraph]:
    b = c = (1.0 - a) / 3.0
    return lambda: rmat(scale, edge_factor=ef, a=a, b=b, c=c, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # --- Table 5 suite (paper: < 10B edges) --------------------------
        DatasetSpec("LJGrp", "LiveJournal", "SN", 7, 0.22, 141_388_608,
                    _sn(20_000, 14.0, 2.05, seed=11), paper_csx_gb=0.5),
        DatasetSpec("Twtr10", "Twitter 2010", "SN", 21, 0.53, 17_295_646_010,
                    _sn(30_000, 18.0, 1.95, seed=12), paper_csx_gb=1.1),
        DatasetSpec("Twtr", "Twitter", "SN", 28, 0.96, 13_734_746_881,
                    _sn(36_000, 20.0, 2.0, seed=13), paper_csx_gb=2.0),
        DatasetSpec("TwtrMpi", "Twitter-MPI", "SN", 41, 2.41, 34_824_916_864,
                    _sn(48_000, 24.0, 1.95, seed=14), paper_csx_gb=4.8),
        DatasetSpec("Frndstr", "Friendster", "SN", 65, 3.61, 4_173_724_142,
                    # the low-skew outlier: gamma ~ 3, so hubs are weak (Section 5.5)
                    lambda: powerlaw_chung_lu(60_000, 18.0, exponent=3.2, seed=15,
                                              max_degree_fraction=0.004), paper_csx_gb=7.2),
        DatasetSpec("SK", "SK-Domain", "WG", 50, 3.64, 84_907_040_872,
                    _wg(15, 14, 0.62, seed=16), paper_csx_gb=7.2),
        DatasetSpec("WbCc", "Web-CC12", "WG", 89, 3.87, 417_026_090_229,
                    _wg(15, 16, 0.66, seed=17), paper_csx_gb=7.9),
        DatasetSpec("UKDls", "UK-Delis", "WG", 110, 6.92, 663_713_224_204,
                    _wg(16, 14, 0.63, seed=18), paper_csx_gb=13.7),
        DatasetSpec("UU", "UK-Union", "WG", 133, 9.36, 453_830_915_490,
                    _wg(16, 16, 0.61, seed=19), paper_csx_gb=18.4),
        DatasetSpec("UKDmn", "UK-Domain", "WG", 105, 6.60, 286_701_284_103,
                    _wg(16, 12, 0.62, seed=20), paper_csx_gb=13.1),
        # --- Table 6 suite (paper: > 10B edges) --------------------------
        DatasetSpec("MClst", "MetaClust", "BG", 282, 42.8, 5_588_867_541_009,
                    _wg(17, 10, 0.55, seed=21), large=True, paper_csx_gb=85.6),
        DatasetSpec("ClWb12", "ClueWeb12", "WG", 978, 74.7, 1_995_295_290_765,
                    _wg(17, 12, 0.64, seed=22), large=True, paper_csx_gb=149.4),
        DatasetSpec("WDC14", "WDC 2014", "WG", 1_724, 124, 4_587_563_913_535,
                    _wg(17, 14, 0.63, seed=23), large=True, paper_csx_gb=248.0),
        DatasetSpec("EU15", "EU Domains", "WG", 1_071, 161, 15_338_196_409_949,
                    _wg(17, 16, 0.62, seed=24), large=True, paper_csx_gb=322.0),
        # --- extra non-paper dataset for fallback-path testing -----------
        DatasetSpec("SmallWorld", "(synthetic control)", "SW", 0, 0, 0,
                    lambda: watts_strogatz(20_000, 10, 0.05, seed=25)),
    ]
}

SMALL_SUITE: tuple[str, ...] = (
    "LJGrp", "Twtr10", "Twtr", "TwtrMpi", "Frndstr",
    "SK", "WbCc", "UKDls", "UU", "UKDmn",
)
LARGE_SUITE: tuple[str, ...] = ("MClst", "ClWb12", "WDC14", "EU15")


def dataset_names(include_large: bool = True) -> list[str]:
    """Names of the paper's datasets in Table-4 order."""
    names = list(SMALL_SUITE)
    if include_large:
        names += list(LARGE_SUITE)
    return names


@functools.lru_cache(maxsize=None)
def load_dataset(name: str) -> CSRGraph:
    """Generate (and memoise) the synthetic stand-in named ``name``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.generate()
