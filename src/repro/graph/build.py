"""Builders that turn raw edge data into validated :class:`CSRGraph` objects.

All builders normalise the input the way the paper's preprocessing does:
self-loops are dropped (Algorithm 2, lines 11-12), duplicate edges are
deduplicated, and the symmetric closure is stored so that every row holds
the full neighbour list.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph, neighbor_dtype_for

__all__ = ["normalize_edges", "from_edges", "from_sparse", "to_sparse"]


def normalize_edges(edges: np.ndarray, num_vertices: int | None = None) -> tuple[np.ndarray, int]:
    """Canonicalise an (m, 2) edge array.

    Drops self-loops, orders each pair as ``(min, max)``, removes
    duplicates, and returns ``(edges, num_vertices)`` where ``edges`` is
    sorted lexicographically.  ``num_vertices`` defaults to
    ``edges.max() + 1`` (0 for an empty array).
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        edges = edges.reshape(0, 2).astype(np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.dtype.kind not in "ui":
        raise TypeError(f"edges must be integer, got {edges.dtype}")
    edges = edges.astype(np.int64, copy=False)
    if edges.size and edges.min() < 0:
        raise ValueError("vertex IDs must be non-negative")
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    elif edges.size and int(edges.max()) >= num_vertices:
        raise ValueError("edge endpoint exceeds num_vertices")

    # drop self loops
    edges = edges[edges[:, 0] != edges[:, 1]]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    key = lo * np.int64(num_vertices) + hi
    uniq = np.unique(key)
    lo = uniq // num_vertices if num_vertices else uniq
    hi = uniq % num_vertices if num_vertices else uniq
    return np.column_stack([lo, hi]), num_vertices


def from_edges(edges: np.ndarray, num_vertices: int | None = None) -> CSRGraph:
    """Build a :class:`CSRGraph` from an (m, 2) array of undirected edges."""
    edges, n = normalize_edges(edges, num_vertices)
    # symmetric closure
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst.astype(neighbor_dtype_for(n)))


def from_sparse(mat: sp.spmatrix) -> CSRGraph:
    """Build from any scipy sparse matrix (interpreted as an adjacency matrix).

    The matrix is symmetrised (``A + A.T`` pattern-wise) and its diagonal
    dropped; values are ignored, only the sparsity pattern matters.
    """
    mat = sp.coo_matrix(mat)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError("adjacency matrix must be square")
    edges = np.column_stack([mat.row.astype(np.int64), mat.col.astype(np.int64)])
    return from_edges(edges, num_vertices=mat.shape[0])


def to_sparse(graph: CSRGraph) -> sp.csr_matrix:
    """Symmetric 0/1 ``csr_matrix`` adjacency of ``graph``."""
    n = graph.num_vertices
    data = np.ones(graph.indices.size, dtype=np.int64)
    return sp.csr_matrix(
        (data, graph.indices.astype(np.int64), graph.indptr), shape=(n, n)
    )
