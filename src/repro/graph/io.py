"""Graph serialisation: whitespace edge lists and compressed ``.npz``.

The ``.npz`` format stores the CSR arrays directly and round-trips
bit-exactly; the edge-list format interoperates with common graph tool
chains (SNAP/KONECT style: one ``u v`` pair per line, ``#`` comments).
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz", "save_edgelist", "load_edgelist"]


def save_npz(path: str | os.PathLike, graph: CSRGraph) -> None:
    """Save ``graph`` to ``path`` in compressed npz form."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(data["indptr"], data["indices"])


def save_edgelist(path: str | os.PathLike, graph: CSRGraph) -> None:
    """Write each undirected edge once as ``u v`` per line."""
    edges = graph.edges()
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# vertices {graph.num_vertices}\n")
        for u, v in edges:
            fh.write(f"{u} {v}\n")


def load_edgelist(path: str | os.PathLike, num_vertices: int | None = None) -> CSRGraph:
    """Read a whitespace edge list; ``#`` lines are comments.

    A ``# vertices N`` header (as written by :func:`save_edgelist`) fixes
    the vertex count; otherwise it is inferred from the max endpoint.
    """
    pairs: list[tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices" and num_vertices is None:
                    num_vertices = int(parts[1])
                continue
            a, b = line.split()[:2]
            pairs.append((int(a), int(b)))
    edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, num_vertices=num_vertices)
