"""Degree-distribution analytics and skew detection.

Implements the hub-selection predicates used throughout the paper
(top-k / top-fraction by degree, Section 2.1 and 4.2) and the skew
detection heuristic of Section 5.5 (GAP-style comparison of average and
sampled median degree) that decides whether LOTUS or plain Forward should
run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "hub_mask_top_k",
    "hub_mask_top_fraction",
    "is_skewed",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a degree distribution."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    # Gini coefficient of the degree distribution: 0 = uniform,
    # -> 1 = extremely skewed.  A scale-free distribution has high Gini.
    gini: float

    @property
    def skew_ratio(self) -> float:
        """mean / median — > 1 signals a heavy tail (GAP's heuristic)."""
        if self.median_degree == 0:
            return float("inf") if self.mean_degree > 0 else 1.0
        return self.mean_degree / self.median_degree


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    deg = graph.degrees()
    if deg.size == 0:
        return DegreeStatistics(0, 0, 0, 0, 0.0, 0.0, 0.0)
    sorted_deg = np.sort(deg)
    n = deg.size
    total = float(sorted_deg.sum())
    if total == 0:
        gini = 0.0
    else:
        # Gini = (2 * sum(i * x_i) / (n * sum x)) - (n + 1) / n, x sorted asc
        i = np.arange(1, n + 1, dtype=np.float64)
        gini = float(2.0 * np.dot(i, sorted_deg) / (n * total) - (n + 1) / n)
    return DegreeStatistics(
        num_vertices=n,
        num_edges=graph.num_edges,
        min_degree=int(sorted_deg[0]),
        max_degree=int(sorted_deg[-1]),
        mean_degree=float(deg.mean()),
        median_degree=float(np.median(sorted_deg)),
        gini=gini,
    )


def hub_mask_top_k(graph: CSRGraph, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` highest-degree vertices.

    Ties are broken by lower vertex ID (deterministic).  This is the
    paper's hub rule: LOTUS selects the 64K highest-degree vertices
    (Section 4.2); Table 1 uses the top 1 %.
    """
    n = graph.num_vertices
    k = min(int(k), n)
    mask = np.zeros(n, dtype=bool)
    if k == 0:
        return mask
    deg = graph.degrees()
    # stable argsort on (-degree, id): lexsort keys are last-key-major
    order = np.lexsort((np.arange(n), -deg))
    mask[order[:k]] = True
    return mask


def hub_mask_top_fraction(graph: CSRGraph, fraction: float) -> np.ndarray:
    """Boolean mask of the top ``fraction`` of vertices by degree (Table 1 uses 1 %)."""
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    k = int(round(graph.num_vertices * fraction))
    return hub_mask_top_k(graph, k)


def is_skewed(
    graph: CSRGraph,
    threshold: float = 3.0,
    sample_size: int = 1024,
    seed: int | None = 0,
) -> bool:
    """Skew detector in the spirit of GAP's sampling heuristic (Section 5.5).

    Samples ``sample_size`` vertices, compares the graph's average degree
    to the sampled median; a mean/median ratio above ``threshold`` (default 3.0)
    indicates a heavy-tailed (power-law) degree distribution where LOTUS's
    hub machinery pays off.  Non-skewed graphs should fall back to the
    Forward algorithm.
    """
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return False
    deg = graph.degrees()
    rng = make_rng(seed)
    if n > sample_size:
        sample = deg[rng.choice(n, size=sample_size, replace=False)]
    else:
        sample = deg
    median = float(np.median(sample))
    mean = float(deg.mean())
    if median == 0:
        return mean > 1.0
    return (mean / median) >= threshold
