"""Wall-clock timing utilities used by the benchmark harness.

The paper reports end-to-end execution time including preprocessing
(Section 5.1) and a per-phase breakdown (Figure 6); :class:`PhaseTimer`
captures both.

There is exactly **one clock source** in the repository: :func:`clock`
below (a monotonic ``perf_counter``).  Span tracing
(:mod:`repro.obs.spans`) and these timers both read it, so a
``PhaseTimer`` phase and the registry span wrapping the same region
(see :func:`repro.obs.instrument.timed_phase`) report directly
comparable durations — deduplicated here rather than keeping two
independent timing implementations (``docs/api.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "PhaseTimer", "clock"]


def clock() -> float:
    """The repository's single wall-clock source (monotonic seconds).

    Both the timers below and span tracing delegate here; measure
    anything new against this clock, never ``time.time()``.
    """
    return time.perf_counter()


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = clock()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = clock() - self._start
        self._start = None


@dataclass
class PhaseTimer:
    """Accumulates named phase durations, preserving insertion order.

    Used to produce the Figure-6 style execution breakdown
    (preprocess / HHH+HHN / HNN / NNN).
    """

    phases: dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fractions(self) -> dict[str, float]:
        """Phase name -> fraction of total time (0 if total is 0)."""
        total = self.total
        if total == 0.0:
            return {k: 0.0 for k in self.phases}
        return {k: v / total for k, v in self.phases.items()}


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: float | None = None

    def __enter__(self) -> "_PhaseContext":
        self._start = clock()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self._timer.add(self._name, clock() - self._start)
