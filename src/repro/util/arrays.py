"""Vectorised multi-range array helpers.

These implement the "gather many CSR rows at once" idiom that keeps the
per-vertex kernels of the TC algorithms inside NumPy: a Python loop runs
only over vertices, while all per-edge work is batched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges", "group_ids", "segment_sums", "rows_searchsorted"]


def rows_searchsorted(
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    needle: np.ndarray | int,
) -> np.ndarray:
    """Vectorised per-row lower-bound search.

    For each row ``i``, returns the offset of ``needle[i]`` (or a scalar
    needle) within the sorted slice ``values[starts[i]:ends[i]]`` (i.e.
    the count of elements ``< needle``).  One binary-search *round* per
    iteration runs over all rows simultaneously, so the Python-level loop
    is O(log max_row_len).
    """
    values = np.asarray(values)
    lo = np.asarray(starts, dtype=np.int64).copy()
    hi = np.asarray(ends, dtype=np.int64).copy()
    start64 = np.asarray(starts, dtype=np.int64)
    needle = np.asarray(needle, dtype=np.int64)
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        vals = values[np.minimum(mid, values.size - 1)].astype(np.int64, copy=False)
        go_right = active & (vals < needle)
        go_left = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[go_left] = mid[go_left]
    return lo - start64


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i]+lengths[i])`` for all i.

    Equivalent to ``np.concatenate([np.arange(s, s+l) ...])`` without the
    per-range Python overhead.  Returns an empty int64 array when the
    total length is zero.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # position of each output element within its own range
    group_start = np.cumsum(lengths) - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(group_start, lengths)
    return np.repeat(starts, lengths) + within


def group_ids(lengths: np.ndarray) -> np.ndarray:
    """Group index of each element of the concatenation of ranges.

    ``group_ids([2, 0, 3]) == [0, 0, 2, 2, 2]`` — pairs with
    :func:`concat_ranges` to label which source range each gathered
    element came from.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Sum ``values`` within consecutive segments of the given lengths.

    ``segment_sums([1,2,3,4,5], [2,3]) == [3, 12]``.  Zero-length
    segments yield 0.
    """
    values = np.asarray(values)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.size != int(lengths.sum()):
        raise ValueError("values length must equal sum(lengths)")
    out = np.zeros(lengths.size, dtype=np.int64 if values.dtype.kind in "bui" else values.dtype)
    if values.size == 0:
        return out
    nonzero = lengths > 0
    starts = (np.cumsum(lengths) - lengths)[nonzero]
    sums = np.add.reduceat(values, starts)
    out[nonzero] = sums
    return out
