"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["check_array_dtype", "check_nonnegative_int", "check_probability"]


def check_array_dtype(arr: np.ndarray, kind: str, name: str) -> None:
    """Raise ``TypeError`` unless ``arr`` has dtype kind ``kind`` (e.g. 'i', 'u', 'f')."""
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(arr).__name__}")
    if arr.dtype.kind not in kind:
        raise TypeError(f"{name} must have dtype kind in {kind!r}, got {arr.dtype}")


def check_nonnegative_int(value: int, name: str) -> int:
    """Raise unless ``value`` is a non-negative integer; returns it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Raise unless ``0 <= value <= 1``; returns it as ``float``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
