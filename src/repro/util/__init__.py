"""Shared utilities: timers, RNG helpers, validation."""

from repro.util.rng import make_rng
from repro.util.timer import Timer, PhaseTimer
from repro.util.validation import (
    check_array_dtype,
    check_nonnegative_int,
    check_probability,
)

__all__ = [
    "make_rng",
    "Timer",
    "PhaseTimer",
    "check_array_dtype",
    "check_nonnegative_int",
    "check_probability",
]
