"""Zero-copy NumPy array sharing over ``multiprocessing.shared_memory``.

The process backend (:mod:`repro.parallel.procpool`) places the CSR /
LOTUS arrays into one POSIX shared-memory segment so worker processes
reconstruct them as views without copying or pickling the payload.  This
module is the substrate: :func:`share_arrays` packs a named set of
arrays into a fresh segment and returns a handle whose picklable
``manifest`` describes the layout; :func:`attach_arrays` re-opens the
segment from a manifest and rebuilds the views.

Lifecycle rules (tested under injected worker crashes):

* the **creator** owns the segment: only its handle unlinks, and
  :meth:`SharedArrays.unlink` is idempotent so error paths can call it
  unconditionally;
* **attachers** are unregistered from the CPython resource tracker
  (which would otherwise also try to unlink the segment at interpreter
  exit and warn about "leaked" objects — the creator is the single
  owner);
* ``close`` is best-effort: NumPy views exported from the buffer keep
  the mapping alive, and the mapping dies with the process anyway.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory
from typing import Any, Mapping

import numpy as np

__all__ = ["SharedArrays", "share_arrays", "attach_arrays", "manifest_nbytes"]

# offsets are padded to cacheline size: keeps every array aligned for any
# dtype and avoids false sharing between adjacent arrays
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrays:
    """Handle for one shared-memory segment holding named NumPy arrays.

    ``manifest`` is a plain picklable dict (send it to workers);
    ``arrays`` maps each key to a view backed by the segment.  The
    creating process should ``unlink()`` when all workers are done —
    both are safe to call twice.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: dict[str, Any],
        arrays: dict[str, np.ndarray],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self.arrays = arrays
        self.owner = owner
        self._unlinked = False
        self._closed = False

    @property
    def name(self) -> str:
        return self.manifest["segment"]

    @property
    def nbytes(self) -> int:
        return int(self.manifest["nbytes"])

    @property
    def meta(self) -> dict[str, Any]:
        return self.manifest.get("meta", {})

    def close(self) -> None:
        """Release this process's mapping (best-effort; see module doc)."""
        if self._closed:
            return
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # live NumPy views still reference the buffer; the mapping is
            # reclaimed when they are garbage-collected or the process exits
            return
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment name (idempotent; owner's responsibility)."""
        if self._unlinked:
            return
        self._unlinked = True
        # Under the fork start method, workers share the parent's resource
        # tracker, so a worker's attach-time unregister (see _untrack) drops
        # the creator's registration too.  Re-registering is idempotent (the
        # tracker cache is a set) and guarantees the unregister inside
        # SharedMemory.unlink() finds the entry instead of logging KeyError.
        try:  # pragma: no cover - tracker internals
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedArrays({self.name!r}, {len(self.manifest['arrays'])} arrays, "
            f"{self.nbytes} bytes, owner={self.owner})"
        )


def share_arrays(
    arrays: Mapping[str, np.ndarray],
    meta: dict[str, Any] | None = None,
    name: str | None = None,
) -> SharedArrays:
    """Copy ``arrays`` into one fresh shared-memory segment.

    ``meta`` rides along in the manifest (picklable scalars only) — the
    graph classes use it for shape/config fields.  The single copy here
    is the only copy: workers attach views.
    """
    specs: list[dict[str, Any]] = []
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        specs.append(
            {
                "key": key,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    total = max(offset, 1)  # SharedMemory rejects size 0
    segment_name = name or f"repro-{secrets.token_hex(8)}"
    shm = shared_memory.SharedMemory(name=segment_name, create=True, size=total)
    manifest = {
        "segment": shm.name,
        "nbytes": total,
        "meta": dict(meta or {}),
        "arrays": specs,
    }
    views: dict[str, np.ndarray] = {}
    for spec, (key, array) in zip(specs, arrays.items()):
        view = np.ndarray(
            tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]),
            buffer=shm.buf, offset=spec["offset"],
        )
        view[...] = np.ascontiguousarray(array)
        views[key] = view
    return SharedArrays(shm, manifest, views, owner=True)


def attach_arrays(manifest: dict[str, Any]) -> SharedArrays:
    """Re-open a segment described by ``manifest`` and rebuild the views.

    The attachment is unregistered from the resource tracker so the
    creator stays the sole owner of the segment lifecycle.
    """
    shm = shared_memory.SharedMemory(name=manifest["segment"])
    _untrack(shm)
    arrays = {
        spec["key"]: np.ndarray(
            tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]),
            buffer=shm.buf, offset=spec["offset"],
        )
        for spec in manifest["arrays"]
    }
    return SharedArrays(shm, manifest, arrays, owner=False)


def manifest_nbytes(manifest: dict[str, Any]) -> int:
    """Segment size described by a manifest, without attaching to it.

    The serving cache accounts shared segments against its byte budget
    from the manifest alone.
    """
    return int(manifest["nbytes"])


def _untrack(shm: shared_memory.SharedMemory) -> None:
    # Until 3.13's track=False, every attach re-registers the segment
    # with the resource tracker, which then double-unlinks (and warns) at
    # interpreter exit.  The creator is the owner; drop the extra claim.
    try:  # pragma: no cover - platform-dependent internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
