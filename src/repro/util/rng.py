"""Seeded random number generation helpers.

Every stochastic component in the library accepts a ``seed`` argument and
routes it through :func:`make_rng` so runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing ``Generator`` (returned as-is,
    enabling streams to be threaded through call chains), or ``None`` for a
    non-deterministic generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
