"""Benchmark-trajectory artifacts: pinned measurements tracked over time.

GraphChallenge-style methodology (arXiv:2003.09269): performance claims
are only trustworthy when normalized, attributed measurements are
recorded per change and compared against a baseline.  This module builds
one ``BENCH_<date>.json`` artifact from a *pinned quick suite* — a fixed
set of fig4/fig6-scale graphs replayed on every machine model — holding:

* triangle counts per dataset (correctness canary, compared exactly);
* simulated miss totals per dataset × machine × algorithm (deterministic
  — the datasets are seeded generators and the replay is exact);
* per-region LLC/DTLB miss shares from the attributed replay (the
  locality claims themselves).

Wall-clock timings are recorded under ``info`` and never compared — only
the deterministic simulation metrics gate regressions
(:mod:`repro.obs.regress`).  The artifact is written by
``scripts/bench_trajectory.py``; the committed baseline lives in
``benchmarks/trajectory/``.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Any, Iterable

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "QUICK_SUITE",
    "DEFAULT_SUITE",
    "ALL_MACHINES",
    "SCALING_DATASET",
    "SCALING_WORKERS",
    "SERVE_DATASET",
    "SERVE_REQUESTS",
    "TELEMETRY_DATASET",
    "TELEMETRY_REPEATS",
    "PROFILER_DATASET",
    "PROFILER_REPEATS",
    "DYNAMIC_DATASET",
    "DYNAMIC_OPS",
    "DYNAMIC_BATCH",
    "DYNAMIC_SEED",
    "DIST_DATASET",
    "DIST_SHARDS",
    "DIST_PARTITIONER",
    "DIST_SIM_SHARDS",
    "build_dist_measurements",
    "build_scaling_measurements",
    "build_serve_measurements",
    "build_telemetry_overhead_measurements",
    "build_profiler_overhead_measurements",
    "build_dynamic_measurements",
    "build_trajectory_artifact",
    "write_trajectory_artifact",
]

TRAJECTORY_SCHEMA_VERSION = 1

# Pinned suites: QUICK is what CI and the committed baseline use; the
# default adds the two slower fig4/fig6 outliers (low-skew Friendster,
# web-graph SK).  Changing either set invalidates the baseline — bump it
# in the same commit.
QUICK_SUITE: tuple[str, ...] = ("LJGrp", "Twtr10")
DEFAULT_SUITE: tuple[str, ...] = ("LJGrp", "Twtr10", "Frndstr", "SK")
ALL_MACHINES: tuple[str, ...] = ("SkyLakeX", "Haswell", "Epyc")

# Pinned multi-worker scaling run: the largest stand-in, phase 1 on the
# process backend.  The gated metric is the *simulated* work-stealing
# speedup over the exact tile costs (deterministic on any host); measured
# wall-clock lands in ``info`` because CI runners have arbitrary core
# counts (this container has one).
SCALING_DATASET = "EU15"
SCALING_WORKERS: tuple[int, ...] = (1, 2, 4)

# Pinned serve session: repeated queries over one cached structure.  All
# resulting keys carry the ``serve.`` prefix, which the regression gate
# maps to the ``timing`` kind — recorded for trend lines, never gated
# (latencies depend on machine load; the hit *mix* depends only on the
# request plan but rides along under the same never-gate rule).
SERVE_DATASET = "LJGrp"
SERVE_REQUESTS = 12

# Pinned telemetry-overhead run: one LOTUS count with observability fully
# off versus fully on (metrics registry + telemetry bus + both live
# exporters).  The gated metric is the on/off wall-time ratio — the one
# timing-derived number the gate *does* check, because it is a ratio of
# two runs on the same host in the same process and so cancels machine
# speed.  The regression gate holds it under a documented ceiling
# (:data:`repro.obs.regress.DEFAULT_OVERHEAD_CEILING`); the design
# target is <= 1.05 on EU15.
TELEMETRY_DATASET = "EU15"
TELEMETRY_REPEATS = 3

# Pinned profiler-overhead run: the same ratio methodology as the
# telemetry gate, but the "on" side runs the sampling profiler
# (:class:`repro.obs.profiler.SamplingProfiler`) at its default 10 ms
# interval over an observed count.  Gated against the tighter
# :data:`repro.obs.regress.DEFAULT_PROFILER_CEILING` (<= 1.10).
PROFILER_DATASET = "EU15"
PROFILER_REPEATS = 3

# Pinned dynamic-graph replay: a seeded mixed insert/delete stream
# against the largest stand-in.  The gated metric is the amortised
# per-update cost versus a per-update full forward recount, expressed as
# a speedup (``*_speedup`` -> floor kind: a drop regresses).  The
# acceptance floor is 10x; the committed baseline pins exactly that
# policy value rather than a measured number (measurements land 2-3
# orders of magnitude higher and would make the floor gate meaninglessly
# tight under the 2% tolerance).  The final triangle count of the seeded
# stream is deterministic and gated exactly.
DYNAMIC_DATASET = "EU15"
DYNAMIC_OPS = 1024
DYNAMIC_BATCH = 128
DYNAMIC_SEED = 7

# Pinned distributed run: one real sharded count on the largest stand-in
# plus a simulated shard-scaling sweep.  The gated metrics are the exact
# triangle count (the distributed backend must agree with the baseline
# bit-for-bit) and the deterministic traffic numbers — boundary edges,
# bytes exchanged, and the simulator's predictions across shard counts.
# The build itself asserts the differential contract: the simulator's
# predicted ``bytes_exchanged`` must equal the measured wire traffic
# exactly, because runtime and simulator share ``repro.dist.plan``.
# Measured wall time lands in ``info`` (IPC speed is machine-dependent).
DIST_DATASET = "EU15"
DIST_SHARDS = 2
DIST_PARTITIONER = "hash"
DIST_SIM_SHARDS: tuple[int, ...] = (2, 4, 8)


def build_scaling_measurements(
    dataset: str = SCALING_DATASET,
    workers: Iterable[int] = SCALING_WORKERS,
) -> tuple[dict[str, float], dict[str, Any]]:
    """Phase-1 scaling metrics for one dataset across worker counts.

    Returns ``(metrics, info)``: gated metrics are the phase-1 hit count
    (deterministic, backend-invariant) and per-worker-count simulated
    speedups (``*_speedup`` keys — gated as a floor: a drop regresses);
    ``info`` carries measured process-backend wall times and the measured
    speedup ratio.
    """
    import time

    from repro.core.count import count_hhh_hhn
    from repro.core.structure import build_lotus_graph
    from repro.core.tiling import tiles_for_phase1
    from repro.graph import load_dataset
    from repro.parallel.procpool import count_hhh_hhn_processes
    from repro.parallel.scheduler import simulate_schedule

    graph = load_dataset(dataset)
    lotus = build_lotus_graph(graph)
    seq = count_hhh_hhn(lotus)
    metrics: dict[str, float] = {f"{dataset}.phase1.hits": int(sum(seq))}
    info: dict[str, Any] = {}
    for w in workers:
        tiles = tiles_for_phase1(lotus.he, partitions=2 * w)
        sim = simulate_schedule(tiles, w)
        metrics[f"{dataset}.phase1.workers{w}_sim_speedup"] = round(sim.speedup, 4)
        started = time.perf_counter()
        got = count_hhh_hhn_processes(lotus, workers=w)
        elapsed = time.perf_counter() - started
        if got != seq:  # pragma: no cover - correctness canary
            raise AssertionError(
                f"process backend diverged on {dataset} at workers={w}: "
                f"{got} != {seq}"
            )
        info[f"{dataset}.phase1.workers{w}_seconds"] = round(elapsed, 4)
    base = info.get(f"{dataset}.phase1.workers{min(workers)}_seconds")
    for w in workers:
        secs = info[f"{dataset}.phase1.workers{w}_seconds"]
        if base and secs:
            info[f"{dataset}.phase1.workers{w}_measured_speedup"] = round(
                base / secs, 4
            )
    return metrics, info


def build_serve_measurements(
    dataset: str = SERVE_DATASET,
    requests: int = SERVE_REQUESTS,
) -> tuple[dict[str, float], dict[str, Any]]:
    """One scripted warm/cold serve session over ``dataset``.

    Returns ``(metrics, info)``: every metric key is ``serve.``-prefixed,
    which :func:`repro.obs.regress._metric_kind` classifies as ``timing``
    — reported in diffs, never a gate.  The correctness canary (all
    responses equal, warm responses are cache hits) is asserted here so a
    broken serving path fails the measurement loudly instead of writing
    garbage trend data.
    """
    from repro.obs import use_registry
    from repro.obs.report import histogram_quantile
    from repro.serve import QueryEngine, QueryRequest, StructureCache

    if requests < 2:
        raise ValueError("requests must be >= 2 (one cold + warm remainder)")
    metrics: dict[str, float] = {}
    info: dict[str, Any] = {}
    with use_registry() as registry:
        with QueryEngine(StructureCache()) as engine:
            answers = []
            latencies = []
            for i in range(requests):
                result = engine.query(
                    QueryRequest(dataset=dataset, id=f"bench-{i}"),
                    wait_timeout=600,
                )
                if not result.ok:  # pragma: no cover - correctness canary
                    raise AssertionError(
                        f"serve bench query {i} failed: {result.error}"
                    )
                answers.append(result.triangles)
                latencies.append(result.elapsed_ms)
        if len(set(answers)) != 1:  # pragma: no cover - correctness canary
            raise AssertionError(f"serve bench answers diverged: {set(answers)}")
        counters = registry.family("serve")["counters"]
        hits = counters.get("serve.cache.hit", 0)
        if hits != requests - 1:  # pragma: no cover - correctness canary
            raise AssertionError(
                f"expected {requests - 1} warm hits, saw {hits}"
            )
        hist = registry.family("serve")["histograms"]["serve.latency_seconds"]
        metrics[f"serve.{dataset}.hit_rate"] = round(hits / requests, 4)
        metrics[f"serve.{dataset}.latency_p50_seconds"] = round(
            histogram_quantile(hist, 0.5), 6
        )
        metrics[f"serve.{dataset}.latency_p95_seconds"] = round(
            histogram_quantile(hist, 0.95), 6
        )
        info[f"serve.{dataset}.requests"] = requests
        info[f"serve.{dataset}.cold_ms"] = round(latencies[0], 3)
        info[f"serve.{dataset}.warm_mean_ms"] = round(
            sum(latencies[1:]) / (requests - 1), 3
        )
    return metrics, info


def build_telemetry_overhead_measurements(
    dataset: str = TELEMETRY_DATASET,
    repeats: int = TELEMETRY_REPEATS,
) -> tuple[dict[str, float], dict[str, Any]]:
    """Self-measured telemetry overhead: count with obs off versus on.

    The "on" configuration is the full live pipeline a serve session
    would run: an enabled :class:`~repro.obs.registry.MetricsRegistry`,
    a :class:`~repro.obs.telemetry.TelemetryBus` streaming every span
    open/close to a JSONL exporter, and a background
    :class:`~repro.obs.telemetry.PrometheusFileExporter` re-exporting
    the registry.  Both sides take the best of ``repeats`` runs so the
    ratio compares steady-state floors, not scheduler noise.  Returns
    ``(metrics, info)`` where the single gated metric is
    ``telemetry.<dataset>.overhead_ratio``.
    """
    import os
    import tempfile
    import time

    from repro.core import count_triangles_lotus
    from repro.graph import load_dataset
    from repro.obs import use_registry
    from repro.obs.telemetry import (
        JsonlExporter,
        PrometheusFileExporter,
        TelemetryBus,
        use_bus,
    )

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    graph = load_dataset(dataset)
    expected = count_triangles_lotus(graph).triangles  # warm-up + canary

    def best_of(run) -> float:
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            result = run()
            times.append(time.perf_counter() - started)
            if result.triangles != expected:  # pragma: no cover - canary
                raise AssertionError(
                    f"telemetry bench diverged on {dataset}: "
                    f"{result.triangles} != {expected}"
                )
        return min(times)

    off_s = best_of(lambda: count_triangles_lotus(graph))
    events = 0
    with tempfile.TemporaryDirectory(prefix="repro-telemetry-") as tmp:
        jsonl = JsonlExporter(os.path.join(tmp, "events.jsonl"))
        with use_registry() as registry:
            exposer = PrometheusFileExporter(
                registry, os.path.join(tmp, "live.prom"), interval_s=0.25
            )
            try:
                with use_bus(TelemetryBus((jsonl,))):
                    on_s = best_of(lambda: count_triangles_lotus(graph))
            finally:
                exposer.close()
            events = jsonl.events_written
    ratio = on_s / off_s if off_s > 0 else 1.0
    metrics = {f"telemetry.{dataset}.overhead_ratio": round(ratio, 4)}
    info: dict[str, Any] = {
        f"telemetry.{dataset}.off_seconds": round(off_s, 4),
        f"telemetry.{dataset}.on_seconds": round(on_s, 4),
        f"telemetry.{dataset}.repeats": repeats,
        f"telemetry.{dataset}.events": events,
    }
    return metrics, info


def build_profiler_overhead_measurements(
    dataset: str = PROFILER_DATASET,
    repeats: int = PROFILER_REPEATS,
    interval_ms: float = 10.0,
) -> tuple[dict[str, float], dict[str, Any]]:
    """Self-measured sampling-profiler overhead on an observed count.

    Both sides run under an enabled registry (span attribution is the
    profiler's whole point, so the registry's own cost — already gated by
    the telemetry measurement — is held constant); the "on" side adds a
    :class:`~repro.obs.profiler.SamplingProfiler` at ``interval_ms``.
    Best-of-``repeats`` on each side; the single gated metric is
    ``profiler.<dataset>.overhead_ratio`` (ceiling kind, tighter
    :data:`repro.obs.regress.DEFAULT_PROFILER_CEILING`).
    """
    import time

    from repro.core import count_triangles_lotus
    from repro.graph import load_dataset
    from repro.obs import use_registry
    from repro.obs.profiler import SamplingProfiler

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if interval_ms <= 0:
        raise ValueError("interval_ms must be positive")
    graph = load_dataset(dataset)
    expected = count_triangles_lotus(graph).triangles  # warm-up + canary

    def best_of(run) -> float:
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            result = run()
            times.append(time.perf_counter() - started)
            if result.triangles != expected:  # pragma: no cover - canary
                raise AssertionError(
                    f"profiler bench diverged on {dataset}: "
                    f"{result.triangles} != {expected}"
                )
        return min(times)

    with use_registry():
        off_s = best_of(lambda: count_triangles_lotus(graph))
    samples = dropped = 0
    with use_registry():
        with SamplingProfiler(interval_s=interval_ms / 1000.0) as profiler:
            on_s = best_of(lambda: count_triangles_lotus(graph))
        samples = profiler.profile.samples
        dropped = profiler.profile.dropped
    if samples <= 0:  # pragma: no cover - canary
        raise AssertionError("profiler bench recorded zero samples")
    ratio = on_s / off_s if off_s > 0 else 1.0
    metrics = {f"profiler.{dataset}.overhead_ratio": round(ratio, 4)}
    info: dict[str, Any] = {
        f"profiler.{dataset}.off_seconds": round(off_s, 4),
        f"profiler.{dataset}.on_seconds": round(on_s, 4),
        f"profiler.{dataset}.repeats": repeats,
        f"profiler.{dataset}.interval_ms": interval_ms,
        f"profiler.{dataset}.samples": samples,
        f"profiler.{dataset}.dropped": dropped,
    }
    return metrics, info


def build_dynamic_measurements(
    dataset: str = DYNAMIC_DATASET,
    ops: int = DYNAMIC_OPS,
    batch: int = DYNAMIC_BATCH,
    seed: int = DYNAMIC_SEED,
) -> tuple[dict[str, float], dict[str, Any]]:
    """Amortised incremental-update cost versus naive per-update recount.

    Replays a seeded mixed insert/delete stream through a
    :class:`~repro.dynamic.graph.DynamicGraph` and times (a) the whole
    replay, amortised per applied update, and (b) one full
    ``count_triangles_forward`` recount of the final graph — the cost a
    naive serving layer would pay *per update*.  Returns ``(metrics,
    info)``: the gated metrics are ``dynamic.<dataset>.update_speedup``
    (floor kind) and ``dynamic.<dataset>.triangles`` (exact — the seeded
    stream is deterministic).  The correctness canary asserts the
    incrementally maintained count equals the recount exactly.
    """
    import time

    from repro.dynamic import DynamicGraph, replay_stream, synthesize_stream
    from repro.graph import load_dataset
    from repro.tc.forward import count_triangles_forward

    if ops < 1:
        raise ValueError("ops must be >= 1")
    graph = load_dataset(dataset)
    base = count_triangles_forward(graph)
    stream = synthesize_stream(graph, ops, seed=seed)
    dyn = DynamicGraph(graph, triangles=int(base.triangles))
    report = replay_stream(dyn, stream, batch=batch)
    started = time.perf_counter()
    recount = count_triangles_forward(dyn.snapshot().graph)
    recount_s = time.perf_counter() - started
    if int(recount.triangles) != dyn.triangles:  # pragma: no cover - canary
        raise AssertionError(
            f"dynamic bench diverged on {dataset}: incremental "
            f"{dyn.triangles} != recount {int(recount.triangles)}"
        )
    per_update = report.per_update_seconds
    speedup = recount_s / per_update if per_update > 0 else float(ops)
    metrics = {
        f"dynamic.{dataset}.update_speedup": round(speedup, 4),
        f"dynamic.{dataset}.triangles": dyn.triangles,
    }
    info: dict[str, Any] = {
        f"dynamic.{dataset}.ops": ops,
        f"dynamic.{dataset}.applied": report.applied,
        f"dynamic.{dataset}.batch": batch,
        f"dynamic.{dataset}.per_update_us": round(per_update * 1e6, 2),
        f"dynamic.{dataset}.recount_seconds": round(recount_s, 4),
        f"dynamic.{dataset}.replay_seconds": round(report.elapsed_seconds, 4),
        f"dynamic.{dataset}.compactions": report.compactions,
    }
    return metrics, info


def build_dist_measurements(
    dataset: str = DIST_DATASET,
    shards: int = DIST_SHARDS,
    partitioner: str = DIST_PARTITIONER,
    sim_shards: Iterable[int] = DIST_SIM_SHARDS,
) -> tuple[dict[str, float], dict[str, Any]]:
    """One real sharded count plus the simulated shard-scaling sweep.

    Runs :func:`repro.dist.runtime.run_distributed_count` on ``dataset``
    and simulates the same partitioner across ``sim_shards``.  Returns
    ``(metrics, info)``: gated metrics are ``dist.<dataset>.triangles``
    (exact), the measured traffic (``boundary_edges`` /
    ``bytes_exchanged`` — deterministic functions of the partition), and
    the per-shard-count simulated traffic trend.  Two canaries run
    in-build: the simulator must predict the measured wire bytes
    *exactly* (runtime and simulator share :mod:`repro.dist.plan`), and
    the simulated triangle total must match the distributed run.
    """
    import time

    from repro.core.structure import LotusConfig
    from repro.dist import (
        PARTITIONERS,
        lotus_rank,
        run_distributed_count,
        simulate_distributed_tc,
    )
    from repro.graph import load_dataset

    graph = load_dataset(dataset)
    config = LotusConfig()
    started = time.perf_counter()
    run = run_distributed_count(
        graph, config=config, shards=shards, partitioner=partitioner
    )
    run_s = time.perf_counter() - started
    rank, _hub = lotus_rank(graph, config)
    metrics: dict[str, float] = {
        f"dist.{dataset}.triangles": int(run.counts.total),
        f"dist.{dataset}.boundary_edges": int(run.boundary_edges),
        f"dist.{dataset}.bytes_exchanged": int(run.bytes_exchanged),
    }
    info: dict[str, Any] = {
        f"dist.{dataset}.shards": shards,
        f"dist.{dataset}.partitioner": partitioner,
        f"dist.{dataset}.run_seconds": round(run_s, 4),
        f"dist.{dataset}.boundary_edge_ratio": round(run.boundary_edge_ratio, 6),
    }
    for s in sim_shards:
        owner = PARTITIONERS[partitioner](graph, s)
        sim = simulate_distributed_tc(graph, owner, s, rank=rank)
        if sim.triangles != run.counts.total:  # pragma: no cover - canary
            raise AssertionError(
                f"dist bench diverged on {dataset}: simulated "
                f"{sim.triangles} != distributed {run.counts.total}"
            )
        if s == shards and sim.bytes_exchanged != run.bytes_exchanged:
            raise AssertionError(  # pragma: no cover - canary
                f"dist bench traffic mismatch on {dataset}: simulator "
                f"predicted {sim.bytes_exchanged} bytes, runtime "
                f"measured {run.bytes_exchanged}"
            )
        metrics[f"dist.{dataset}.sim.shards{s}.bytes_exchanged"] = int(
            sim.bytes_exchanged
        )
        metrics[f"dist.{dataset}.sim.shards{s}.remote_share"] = round(
            sim.remote_wedge_checks
            / max(1, sim.remote_wedge_checks + sim.local_wedge_checks),
            6,
        )
    return metrics, info


def build_trajectory_artifact(
    suite: Iterable[str] = DEFAULT_SUITE,
    machines: Iterable[str] = ALL_MACHINES,
    generated: str | None = None,
    scaling: str | None = None,
    serve: str | None = None,
    telemetry_overhead: str | None = None,
    profiler_overhead: str | None = None,
    dynamic: str | None = None,
    dist: str | None = None,
) -> dict[str, Any]:
    """Measure the pinned suite and return the artifact as a plain dict.

    ``metrics`` is a flat ``key -> number`` map (the unit of comparison
    for :mod:`repro.obs.regress`); ``info`` carries non-deterministic
    context (timings) that is recorded but never gated.
    """
    # imported lazily: this module is reachable from `repro.obs` tooling
    # and must not drag the full pipeline in at import time
    from repro.core import build_lotus_graph, count_triangles_lotus
    from repro.eval.experiments import cache_scale_for
    from repro.graph import load_dataset
    from repro.graph.reorder import apply_degree_ordering
    from repro.memsim import (
        MACHINES,
        MemoryHierarchy,
        REGION_OTHER,
        forward_layout,
        forward_trace,
        lotus_trace,
    )
    from repro.memsim.trace import lotus_layout

    suite = tuple(suite)
    machines = tuple(machines)
    metrics: dict[str, float] = {}
    info: dict[str, Any] = {}
    for name in suite:
        graph = load_dataset(name)
        result = count_triangles_lotus(graph)
        metrics[f"{name}.triangles"] = int(result.triangles)
        info[f"{name}.lotus_seconds"] = float(result.elapsed)
        scale = cache_scale_for(name)
        info[f"{name}.cache_scale"] = int(scale)
        oriented = apply_degree_ordering(graph)[0].orient_lower()
        lotus = build_lotus_graph(graph)
        fwd_layout = forward_layout(oriented)
        traces = (
            ("forward", forward_trace(oriented, fwd_layout), fwd_layout),
            ("lotus", lotus_trace(lotus), lotus_layout(lotus)),
        )
        for machine_name in machines:
            machine = MACHINES[machine_name].scaled(scale)
            for algorithm, trace, layout in traces:
                hierarchy = MemoryHierarchy(machine)
                attributed = hierarchy.access_lines_attributed(trace, layout)
                totals = attributed.totals()
                base = f"{name}.{machine_name}.{algorithm}"
                metrics[f"{base}.accesses"] = totals.accesses
                metrics[f"{base}.l1_misses"] = totals.l1_misses
                metrics[f"{base}.l2_misses"] = totals.l2_misses
                metrics[f"{base}.llc_misses"] = totals.llc_misses
                metrics[f"{base}.dtlb_misses"] = totals.dtlb_misses
                for level in ("llc", "dtlb"):
                    for region, share in attributed.miss_shares(level).items():
                        if region == REGION_OTHER:
                            continue
                        metrics[f"{base}.region.{region}.{level}_share"] = round(
                            share, 6
                        )
    if scaling:
        scaling_metrics, scaling_info = build_scaling_measurements(scaling)
        metrics.update(scaling_metrics)
        info.update(scaling_info)
    if serve:
        serve_metrics, serve_info = build_serve_measurements(serve)
        metrics.update(serve_metrics)
        info.update(serve_info)
    if telemetry_overhead:
        tel_metrics, tel_info = build_telemetry_overhead_measurements(
            telemetry_overhead
        )
        metrics.update(tel_metrics)
        info.update(tel_info)
    if profiler_overhead:
        prof_metrics, prof_info = build_profiler_overhead_measurements(
            profiler_overhead
        )
        metrics.update(prof_metrics)
        info.update(prof_info)
    if dynamic:
        dyn_metrics, dyn_info = build_dynamic_measurements(dynamic)
        metrics.update(dyn_metrics)
        info.update(dyn_info)
    if dist:
        dist_metrics, dist_info = build_dist_measurements(dist)
        metrics.update(dist_metrics)
        info.update(dist_info)
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "kind": "bench-trajectory",
        "generated": generated or datetime.date.today().isoformat(),
        "suite": list(suite),
        "machines": list(machines),
        "scaling": scaling,
        "serve": serve,
        "telemetry_overhead": telemetry_overhead,
        "profiler_overhead": profiler_overhead,
        "dynamic": dynamic,
        "dist": dist,
        "metrics": metrics,
        "info": info,
    }


def write_trajectory_artifact(
    artifact: dict[str, Any], out_dir: str | pathlib.Path, baseline: bool = False
) -> pathlib.Path:
    """Persist an artifact as ``BENCH_<date>.json`` (or ``BENCH_baseline.json``)."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = "baseline" if baseline else artifact["generated"]
    path = out_dir / f"BENCH_{stem}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path
