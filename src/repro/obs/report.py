"""Structured report emission: one JSON/CSV artifact per observed run.

The report schema (version 1):

```json
{
  "schema": 1,
  "meta":    {"algorithm": "lotus", "dataset": "LJGrp", ...},
  "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
  "spans":   [ {"name": "lotus", "elapsed": ..., "attrs": {...},
                "children": [...]}, ... ]
}
```

``meta`` is caller-supplied context (dataset, algorithm, result numbers);
``metrics`` is :meth:`MetricsRegistry.snapshot`; ``spans`` is the list of
root span trees.  The JSON form round-trips losslessly
(:func:`report_from_json` rebuilds :class:`~repro.obs.spans.Span`
objects via :func:`spans_from_report`); the CSV form is a flat
spreadsheet-friendly projection for quick plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span

__all__ = [
    "SCHEMA_VERSION",
    "build_report",
    "report_to_json",
    "report_from_json",
    "spans_from_report",
    "report_to_csv",
    "write_report",
    "render_span_tree",
    "histogram_quantile",
]

SCHEMA_VERSION = 1


def build_report(
    registry: MetricsRegistry, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Snapshot ``registry`` into a plain-data report dict."""
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "metrics": registry.snapshot(),
        "spans": [root.to_dict() for root in registry.roots],
    }


def report_to_json(report: dict[str, Any], indent: int | None = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=False, default=_jsonify)


def _jsonify(value: Any) -> Any:
    # NumPy scalars leak into attrs from vectorised kernels; coerce them
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def report_from_json(text: str) -> dict[str, Any]:
    report = json.loads(text)
    schema = report.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported report schema {schema!r}")
    for key in ("meta", "metrics", "spans"):
        if key not in report:
            raise ValueError(f"report missing {key!r} section")
    return report


def spans_from_report(report: dict[str, Any]) -> list[Span]:
    """Rebuild the root :class:`Span` trees of a parsed report."""
    return [Span.from_dict(d) for d in report.get("spans", [])]


def report_to_csv(report: dict[str, Any]) -> str:
    """Flat CSV projection: one row per metric and per span.

    Columns: ``record`` (counter/gauge/histogram/span), ``name`` (metric
    name or slash-joined span path), ``value`` (counter/gauge value,
    histogram count, span elapsed seconds), ``detail`` (JSON blob with
    the rest: histogram stats, span attrs).
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["record", "name", "value", "detail"])
    metrics = report.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        writer.writerow(["counter", name, value, ""])
    for name, value in metrics.get("gauges", {}).items():
        writer.writerow(["gauge", name, value, ""])
    for name, snap in metrics.get("histograms", {}).items():
        detail = {k: snap[k] for k in ("sum", "min", "max") if k in snap}
        writer.writerow(["histogram", name, snap.get("count", 0), json.dumps(detail)])
    for root in spans_from_report(report):
        _write_span_rows(writer, root, prefix="")
    return out.getvalue()


def _write_span_rows(writer: Any, span: Span, prefix: str) -> None:
    path = f"{prefix}/{span.name}" if prefix else span.name
    writer.writerow(
        ["span", path, f"{span.elapsed:.9f}", json.dumps(span.attrs, default=_jsonify)]
    )
    for child in span.children:
        _write_span_rows(writer, child, prefix=path)


def write_report(
    path: str, report: dict[str, Any], fmt: str = "json"
) -> None:
    """Persist a report artifact as ``json`` or ``csv``."""
    if fmt == "json":
        text = report_to_json(report)
    elif fmt == "csv":
        text = report_to_csv(report)
    else:
        raise ValueError(f"unknown report format {fmt!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + ("\n" if not text.endswith("\n") else ""))


def histogram_quantile(snapshot: dict[str, Any], q: float) -> float:
    """Approximate quantile from a histogram *snapshot* dict.

    Mirrors :meth:`repro.obs.registry.Histogram.quantile` but operates on
    the plain-data form found in reports and metrics artifacts, so
    offline consumers (``bench_trajectory``, the serve-smoke CI check)
    can read latency quantiles without a live registry.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    buckets = snapshot.get("buckets") or []
    counts = snapshot.get("counts") or []
    total = snapshot.get("count", 0)
    if not total:
        return 0.0
    fallback = float(
        snapshot["max"] if snapshot.get("max") is not None
        else (buckets[-1] if buckets else 0.0)
    )
    rank = q * total
    seen = 0
    for idx, c in enumerate(counts):
        seen += c
        if seen >= rank and c:
            if idx < len(buckets):
                return float(buckets[idx])
            return fallback
    return fallback


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable span tree (the CLI's default ``report`` view)."""
    pad = "  " * indent
    attrs = ""
    if span.attrs:
        attrs = "  " + " ".join(
            f"{k}={_fmt_attr(v)}" for k, v in sorted(span.attrs.items())
        )
    lines = [f"{pad}{span.name:<16} {span.elapsed * 1e3:10.3f} ms{attrs}"]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def _fmt_attr(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
