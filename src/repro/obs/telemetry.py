"""Live telemetry: cross-process trace propagation and streaming exporters.

This module turns :mod:`repro.obs` from a post-mortem recorder into a
streaming pipeline, in three pieces:

**Trace propagation.**  Every :class:`~repro.obs.spans.Span` carries a
stable ``trace_id`` / ``span_id`` / ``parent_id``.  :class:`TraceContext`
serialises the (trace_id, span_id) pair of an open parent span into a
plain dict (``to_wire``) that crosses a process boundary — procpool
pickles it into each worker.  The worker runs a real in-process
:class:`~repro.obs.registry.MetricsRegistry` under
:func:`worker_telemetry_session`, records spans with true worker-side
start/stop timestamps, and ships :func:`worker_payload` (span trees +
counter deltas) back over the pool's telemetry queue.  The parent calls
:func:`stitch_worker_payloads` to graft those trees under its still-open
``phase1`` span, so ledger records and Chrome-trace exports show real
worker-side nesting with distinct pids.

**Event bus + exporters.**  A process-wide :class:`TelemetryBus`
(activated like the metrics registry: :func:`set_bus` /
:func:`use_bus`) fans plain-dict events out to pluggable
:class:`Exporter` instances *while a session runs*:

- :class:`JsonlExporter` — streaming JSONL event log (span-open/close
  from :class:`~repro.obs.spans.SpanContext`, counter increments and
  slow-query events from the serve engine);
- :class:`PrometheusFileExporter` — background thread rewriting a
  Prometheus text-exposition file on an interval;
- :class:`PrometheusHTTPExporter` — ``GET /metrics`` endpoint on a
  daemon thread (``port=0`` binds an ephemeral port).

The text format itself is :func:`prometheus_exposition` (stable metric
ordering, ``# TYPE`` lines, cumulative ``_bucket{le=...}`` histograms,
label-value escaping per the Prometheus exposition spec); registries
expose it directly as ``MetricsRegistry.to_prometheus()``.

The default bus is :data:`NULL_BUS` (``enabled = False``), so the hot
path pays one attribute check per span when telemetry is off.  The
``telemetry.overhead`` benchmark (:mod:`repro.obs.trajectory`) measures
exactly this and :mod:`repro.obs.regress` gates the ratio.

Only the standard library is imported at module level — spans.py imports
``get_bus`` from here, so anything heavier would create a cycle.
"""

from __future__ import annotations

import http.server
import json
import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

__all__ = [
    "new_id",
    "TraceContext",
    "Exporter",
    "JsonlExporter",
    "PrometheusFileExporter",
    "PrometheusHTTPExporter",
    "TelemetryBus",
    "NULL_BUS",
    "get_bus",
    "set_bus",
    "use_bus",
    "prometheus_exposition",
    "worker_telemetry_session",
    "worker_payload",
    "stitch_worker_payloads",
]


def new_id() -> str:
    """A 16-hex-digit random identifier (64 bits of entropy)."""
    return os.urandom(8).hex()


# ---------------------------------------------------------------------------
# trace propagation
# ---------------------------------------------------------------------------

class TraceContext:
    """The (trace_id, span_id) pair that crosses a process boundary.

    ``span_id`` is the id of the *remote parent* — the span that child
    spans created on the far side should hang under.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def from_span(cls, span: Any) -> "TraceContext | None":
        """Capture the context of an open span; ``None`` when tracing is
        disabled (null span) or the span has not been entered yet."""
        if span is None or not getattr(span, "enabled", False):
            return None
        if not span.trace_id:
            return None
        return cls(span.trace_id, span.span_id)

    def to_wire(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: dict[str, str]) -> "TraceContext":
        return cls(str(wire["trace_id"]), str(wire["span_id"]))

    def __repr__(self) -> str:
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def _coerce(value: Any) -> Any:
    # NumPy scalars leak into span attrs from vectorised kernels
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class Exporter:
    """One telemetry sink.

    Event-driven sinks implement :meth:`export`; snapshot-driven sinks
    (the Prometheus exposers) poll a registry on their own schedule and
    leave :meth:`export` a no-op.  Either way :meth:`close` flushes and
    releases resources.
    """

    def export(self, event: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class JsonlExporter(Exporter):
    """Streaming JSONL event log: one JSON object per line, flushed as
    written so a concurrent reader sees events mid-session."""

    def __init__(self, target: str | TextIO) -> None:
        if isinstance(target, str):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = target
            self._owned = False
        self._lock = threading.Lock()
        self.events_written = 0

    def export(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=False, default=_coerce)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owned:
                self._fh.close()


class PrometheusFileExporter(Exporter):
    """Background thread rewriting a Prometheus text file every
    ``interval_s`` seconds (atomic replace, so scrapers never see a
    partial write).  A final snapshot is written on :meth:`close`."""

    def __init__(
        self,
        registry: Any,
        path: str,
        interval_s: float = 1.0,
        labels: dict[str, str] | None = None,
    ) -> None:
        self._registry = registry
        self._path = path
        self._labels = dict(labels) if labels else None
        self._stop = threading.Event()
        self.write_now()
        self._thread = threading.Thread(
            target=self._run, args=(max(interval_s, 0.05),),
            name="prometheus-file-exporter", daemon=True,
        )
        self._thread.start()

    def _run(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            self.write_now()

    def write_now(self) -> None:
        text = prometheus_exposition(self._registry.snapshot(), labels=self._labels)
        tmp = f"{self._path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, self._path)

    def export(self, event: dict[str, Any]) -> None:
        pass  # snapshot-driven

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.write_now()


class PrometheusHTTPExporter(Exporter):
    """``GET /metrics`` endpoint serving the live registry snapshot.

    Binds ``host:port`` (``port=0`` → ephemeral; read :attr:`port`) and
    serves from a daemon thread until :meth:`close`.
    """

    def __init__(
        self,
        registry: Any,
        port: int = 0,
        host: str = "127.0.0.1",
        labels: dict[str, str] | None = None,
    ) -> None:
        exporter = self
        self._registry = registry
        self._labels = dict(labels) if labels else None

        class _Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.rstrip("/") not in ("", "/metrics".rstrip("/")):
                    self.send_error(404)
                    return
                body = prometheus_exposition(
                    exporter._registry.snapshot(), labels=exporter._labels
                ).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # keep scrapes off stderr

        self._server = http.server.ThreadingHTTPServer((host, port), _Handler)
        self.port: int = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="prometheus-http-exporter", daemon=True,
        )
        self._thread.start()

    def export(self, event: dict[str, Any]) -> None:
        pass  # snapshot-driven

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------------

class TelemetryBus:
    """Fans plain-dict events out to the attached exporters.

    ``emit`` stamps a ``ts`` (the repository clock) when absent and
    never raises: a broken sink increments :attr:`dropped` instead of
    killing the pipeline it observes.
    """

    enabled = True

    def __init__(self, exporters: tuple[Exporter, ...] | list[Exporter] = ()) -> None:
        self._exporters: list[Exporter] = list(exporters)
        self._lock = threading.Lock()
        self.dropped = 0

    def attach(self, exporter: Exporter) -> Exporter:
        with self._lock:
            self._exporters.append(exporter)
        return exporter

    def detach(self, exporter: Exporter) -> None:
        with self._lock:
            if exporter in self._exporters:
                self._exporters.remove(exporter)

    @property
    def exporters(self) -> list[Exporter]:
        with self._lock:
            return list(self._exporters)

    def emit(self, event: dict[str, Any]) -> None:
        if "ts" not in event:
            from repro.util.timer import clock

            event["ts"] = clock()
        for exporter in self.exporters:
            try:
                exporter.export(event)
            except Exception:
                self.dropped += 1

    def close(self) -> None:
        for exporter in self.exporters:
            try:
                exporter.close()
            except Exception:
                self.dropped += 1


class _NullBus(TelemetryBus):
    """Shared disabled bus: one ``enabled`` check and out."""

    enabled = False

    def attach(self, exporter: Exporter) -> Exporter:
        raise RuntimeError("cannot attach exporters to the null bus; "
                           "activate a TelemetryBus via set_bus()/use_bus()")

    def emit(self, event: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


NULL_BUS = _NullBus()

_active_bus: TelemetryBus = NULL_BUS


def get_bus() -> TelemetryBus:
    """The process-wide active bus (:data:`NULL_BUS` when disabled)."""
    return _active_bus


def set_bus(bus: TelemetryBus | None) -> None:
    """Install ``bus`` as the active bus (``None`` disables)."""
    global _active_bus
    _active_bus = bus if bus is not None else NULL_BUS


@contextmanager
def use_bus(bus: TelemetryBus | None = None) -> Iterator[TelemetryBus]:
    """Scoped activation mirroring ``use_registry``: restores the
    previous bus on exit and closes the one it created/was handed."""
    owned = bus is None
    active = bus if bus is not None else TelemetryBus()
    previous = _active_bus
    set_bus(active)
    try:
        yield active
    finally:
        set_bus(previous if previous is not NULL_BUS else None)
        if owned:
            active.close()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _sanitize_name(name: str) -> str:
    out = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    # exposition-format escaping: backslash, double-quote, line feed
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _label_str(labels: dict[str, str] | None, extra: str = "") -> str:
    parts = [
        f'{_sanitize_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted((labels or {}).items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_exposition(
    snapshot: dict[str, Any], labels: dict[str, str] | None = None
) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict in Prometheus text
    exposition format (version 0.0.4).

    Families are emitted in sorted order of their sanitized metric name
    (ties broken counter < gauge < histogram), each preceded by its
    ``# TYPE`` line; histograms expand to cumulative ``_bucket{le=...}``
    series plus ``_sum`` and ``_count``.  ``labels`` are applied to
    every series, values escaped per the exposition spec.  The ordering
    is deterministic, which is what the golden-file test pins.
    """
    families: list[tuple[str, int, str]] = []
    plain = _label_str(labels)

    for name, value in snapshot.get("counters", {}).items():
        mname = _sanitize_name(name)
        body = f"# TYPE {mname} counter\n{mname}{plain} {_format_value(value)}\n"
        families.append((mname, 0, body))

    for name, value in snapshot.get("gauges", {}).items():
        mname = _sanitize_name(name)
        body = f"# TYPE {mname} gauge\n{mname}{plain} {_format_value(value)}\n"
        families.append((mname, 1, body))

    for name, snap in snapshot.get("histograms", {}).items():
        mname = _sanitize_name(name)
        lines = [f"# TYPE {mname} histogram"]
        cumulative = 0
        counts = snap.get("counts") or []
        buckets = snap.get("buckets") or []
        for le, count in zip(buckets, counts):
            cumulative += count
            lab = _label_str(labels, extra=f'le="{_format_value(le)}"')
            lines.append(f"{mname}_bucket{lab} {cumulative}")
        lab = _label_str(labels, extra='le="+Inf"')
        lines.append(f"{mname}_bucket{lab} {snap.get('count', 0)}")
        lines.append(f"{mname}_sum{plain} {_format_value(snap.get('sum', 0.0))}")
        lines.append(f"{mname}_count{plain} {snap.get('count', 0)}")
        families.append((mname, 2, "\n".join(lines) + "\n"))

    families.sort(key=lambda item: (item[0], item[1]))
    return "".join(body for _, _, body in families)


# ---------------------------------------------------------------------------
# worker-side session + parent-side stitching
# ---------------------------------------------------------------------------

@contextmanager
def worker_telemetry_session(
    wire: dict[str, str], name: str = "worker", **attrs: Any
) -> Iterator[tuple[Any, Any]]:
    """Run a worker-process telemetry session.

    Installs a fresh in-process :class:`MetricsRegistry`, opens a root
    span ``name`` whose trace identity is rewired to the propagated
    :class:`TraceContext` (so children recorded here inherit the
    parent process's ``trace_id``), and yields ``(registry, root_span)``.
    The registry is deactivated on exit; ship the result with
    :func:`worker_payload`.
    """
    from repro.obs.registry import MetricsRegistry, set_registry

    ctx = TraceContext.from_wire(wire)
    registry = MetricsRegistry()
    set_registry(registry)
    try:
        with registry.span(name, **attrs) as root:
            root.trace_id = ctx.trace_id
            root.parent_id = ctx.span_id
            yield registry, root
    finally:
        set_registry(None)


def worker_payload(
    registry: Any, worker: int, pid: int, profile: Any = None
) -> dict[str, Any]:
    """Serialise a worker registry for the telemetry channel: its span
    trees (with real worker-side timestamps) plus metric deltas.

    ``profile`` (a :class:`~repro.obs.profiler.Profile` or its
    ``to_dict()`` form) rides along when the worker sampled itself; the
    parent folds it into its own profiler during stitching.
    """
    snap = registry.snapshot()
    payload = {
        "worker": int(worker),
        "pid": int(pid),
        "spans": [root.to_dict() for root in registry.roots],
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": snap["histograms"],
    }
    if profile is not None:
        payload["profile"] = (
            profile if isinstance(profile, dict) else profile.to_dict()
        )
    return payload


def stitch_worker_payloads(
    registry: Any, parent_span: Any, payloads: list[dict[str, Any]]
) -> list[Any]:
    """Graft worker span trees under the (still open) parent span and
    merge the workers' metric deltas into ``registry``.

    Root spans from each payload are re-parented onto ``parent_span``
    (trace id rewritten defensively in case the worker ran without a
    propagated context); counter deltas add, gauges last-write-wins,
    histograms merge bucket-wise.  Returns the stitched roots.  A no-op
    (returning ``[]``) when telemetry is disabled.
    """
    if not getattr(registry, "enabled", True) or not getattr(
        parent_span, "enabled", False
    ):
        return []
    from repro.obs.spans import Span

    stitched: list[Any] = []
    for payload in sorted(payloads, key=lambda p: p.get("worker", 0)):
        for data in payload.get("spans", []):
            span = Span.from_dict(data)
            span.parent_id = parent_span.span_id
            for node in span.iter_spans():
                node.trace_id = parent_span.trace_id
            parent_span.children.append(span)
            stitched.append(span)
        for cname, value in sorted(payload.get("counters", {}).items()):
            registry.counter(cname).add(value)
        for gname, value in sorted(payload.get("gauges", {}).items()):
            registry.gauge(gname).set(value)
        for hname, snap in sorted(payload.get("histograms", {}).items()):
            buckets = snap.get("buckets")
            hist = registry.histogram(
                hname, buckets=tuple(buckets) if buckets else None
            )
            hist.merge_snapshot(snap)
        prof_data = payload.get("profile")
        if prof_data:
            # fold the worker's stack samples into the parent's live
            # profiler; the worker-side span ids in the samples resolve
            # through the tree just stitched above
            from repro.obs.profiler import get_profiler

            profiler = get_profiler()
            if profiler is not None:
                profiler.merge_dict(prof_data)
    return stitched
