"""``repro.obs`` — pipeline-wide observability.

A uniform way to ask "where did the time / ops / bytes go?" across the
whole reproduction: :class:`MetricsRegistry` collects counters, gauges
and histograms; a nesting ``span()`` tracer records the per-phase
breakdown (preprocess -> phase1/2/3 -> reduce) the paper's evaluation is
built on; :mod:`repro.obs.report` turns one run into a machine-readable
JSON/CSV artifact (``python -m repro report ...``).

Disabled by default: the active registry is a shared no-op object, so
the hooks threaded through ``repro.tc`` / ``repro.core`` /
``repro.parallel`` / ``repro.memsim`` cost nothing measurable.  Enable
per run:

```python
from repro.obs import use_registry, build_report

with use_registry() as reg:
    result = count_triangles_lotus(graph)
report = build_report(reg, meta={"algorithm": result.algorithm})
```
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    enabled,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    add_span_observer,
    clock,
    remove_span_observer,
    thread_spans,
)
from repro.obs.profiler import (
    ContinuousProfiler,
    MemoryAccountant,
    Profile,
    SamplingProfiler,
    get_profiler,
)
from repro.obs.profexport import (
    render_top_table,
    span_path_index,
    to_collapsed,
    to_speedscope,
    write_collapsed,
    write_speedscope,
)
from repro.obs.telemetry import (
    NULL_BUS,
    Exporter,
    JsonlExporter,
    PrometheusFileExporter,
    PrometheusHTTPExporter,
    TelemetryBus,
    TraceContext,
    get_bus,
    prometheus_exposition,
    set_bus,
    stitch_worker_payloads,
    use_bus,
    worker_payload,
    worker_telemetry_session,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    Ledger,
    LedgerError,
    build_run_record,
    config_hash,
    dataset_fingerprint,
    diff_runs,
    format_run_diff,
)
from repro.obs.traceexport import (
    build_trace,
    spans_from_trace,
    trace_from_record,
    trace_from_report,
    write_trace,
)
from repro.obs.report import (
    SCHEMA_VERSION,
    build_report,
    render_span_tree,
    report_from_json,
    report_to_csv,
    report_to_json,
    spans_from_report,
    write_report,
)
from repro.obs.instrument import (
    add_count,
    observe,
    root_span,
    set_gauge,
    timed_phase,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "enabled",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "NULL_SPAN",
    "clock",
    "add_span_observer",
    "remove_span_observer",
    "thread_spans",
    "ContinuousProfiler",
    "MemoryAccountant",
    "Profile",
    "SamplingProfiler",
    "get_profiler",
    "render_top_table",
    "span_path_index",
    "to_collapsed",
    "to_speedscope",
    "write_collapsed",
    "write_speedscope",
    "NULL_BUS",
    "Exporter",
    "JsonlExporter",
    "PrometheusFileExporter",
    "PrometheusHTTPExporter",
    "TelemetryBus",
    "TraceContext",
    "get_bus",
    "prometheus_exposition",
    "set_bus",
    "stitch_worker_payloads",
    "use_bus",
    "worker_payload",
    "worker_telemetry_session",
    "DEFAULT_LEDGER_DIR",
    "Ledger",
    "LedgerError",
    "build_run_record",
    "config_hash",
    "dataset_fingerprint",
    "diff_runs",
    "format_run_diff",
    "build_trace",
    "spans_from_trace",
    "trace_from_record",
    "trace_from_report",
    "write_trace",
    "SCHEMA_VERSION",
    "build_report",
    "render_span_tree",
    "report_from_json",
    "report_to_csv",
    "report_to_json",
    "spans_from_report",
    "write_report",
    "add_count",
    "observe",
    "root_span",
    "set_gauge",
    "timed_phase",
]
