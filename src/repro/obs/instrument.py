"""Instrumentation helpers bridging the hot paths and the registry.

The counting kernels keep their existing :class:`~repro.util.timer.PhaseTimer`
plumbing (the benchmark harness consumes ``TCResult.phases``); the
observability layer rides along.  :func:`timed_phase` enters both the
timer phase and a registry span in one ``with``, so instrumenting an
algorithm is a one-line change per phase:

```python
with timed_phase(timer, "preprocess") as span:
    ...
    span.set("arcs", int(arcs))      # no-op when disabled
```

When observability is disabled the span is the shared null span whose
``set``/``add`` do nothing and whose ``enabled`` is ``False`` — guard
*expensive* attribute computation behind ``if span.enabled``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.registry import get_registry
from repro.obs.spans import Span
from repro.util.timer import PhaseTimer

__all__ = ["timed_phase", "root_span", "add_count", "observe", "set_gauge"]


@contextmanager
def timed_phase(
    timer: PhaseTimer | None, name: str, **attrs: Any
) -> Iterator[Span]:
    """Open a registry span and (optionally) a PhaseTimer phase together."""
    registry = get_registry()
    with registry.span(name, **attrs) as span:
        if timer is None:
            yield span
        else:
            with timer.phase(name):
                yield span


@contextmanager
def root_span(name: str, **attrs: Any) -> Iterator[Span]:
    """Open a top-level (or nested, if one is already open) span."""
    with get_registry().span(name, **attrs) as span:
        yield span


def add_count(name: str, amount: int | float = 1) -> None:
    """Bump the named counter on the active registry (no-op when disabled)."""
    get_registry().counter(name).add(amount)


def observe(name: str, value: int | float) -> None:
    """Record one observation in the named histogram."""
    get_registry().histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set the named gauge."""
    get_registry().gauge(name).set(value)
