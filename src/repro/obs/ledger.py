"""The run ledger: provenance-stamped experiment tracking.

The paper's evaluation is a matrix of (algorithm × dataset × machine)
runs whose headline claims are *relative*; GraphChallenge-style
methodology (arXiv:2003.09269) makes such claims trustworthy only when
every measurement is a standardized, provenance-stamped submission that
can be compared against any other.  This module is that substrate: every
harness / CLI / benchmark run appends one **run record** to an
append-only JSONL ledger (default ``runs/ledger.jsonl``) with a small
rebuildable index (``runs/index.json``).

A run record (schema version 1) carries:

* ``run_id`` — ``r<UTCSTAMP>-<content-hash8>``, unique per record;
* ``provenance`` — git SHA + dirty flag, python/numpy versions,
  platform, hostname;
* ``config`` + ``config_hash`` — the full caller-supplied configuration
  and a canonical-JSON SHA-256 over it (identical configs hash
  identically across machines and runs);
* ``dataset`` — registry parameters plus an ``edge_hash`` fingerprint
  of the exact CSR arrays, so "same dataset name" can be distinguished
  from "same graph bytes";
* ``seed`` — the RNG seed threaded through the run (``None`` when the
  run is deterministic or the seed is baked into the dataset registry);
* ``metrics`` — the full :meth:`MetricsRegistry.snapshot`;
* ``spans`` — the serialized span trees of the run;
* ``meta`` — freeform context (triangles, elapsed, algorithm, ...);
* optionally ``artifact`` — a full bench-trajectory artifact, when the
  record was written by ``scripts/bench_trajectory.py`` (this is what
  ``repro.obs.regress --against-run`` gates against).

On top of the ledger sit :func:`diff_runs` (aligned per-metric /
per-span deltas between any two records, using the same tolerance logic
as :mod:`repro.obs.regress`) and the ``repro.cli runs`` subcommands.
"""

from __future__ import annotations

import getpass
import hashlib
import json
import pathlib
import platform
import socket
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Iterator, TYPE_CHECKING

from repro.obs.spans import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "RUN_SCHEMA_VERSION",
    "DEFAULT_LEDGER_DIR",
    "Ledger",
    "LedgerError",
    "build_run_record",
    "canonical_json",
    "collect_provenance",
    "config_hash",
    "dataset_fingerprint",
    "diff_runs",
    "flatten_record_metrics",
    "format_run_diff",
    "run_span_deltas",
]

RUN_SCHEMA_VERSION = 1
DEFAULT_LEDGER_DIR = "runs"

_HASH_LEN = 16  # hex chars kept from each SHA-256 (64 bits: plenty here)


class LedgerError(Exception):
    """Raised on unresolvable run references or corrupt ledger files."""


# -- canonical hashing -----------------------------------------------------

def _jsonify(value: Any) -> Any:
    # NumPy scalars leak in from vectorised kernels (same coercion as
    # repro.obs.report)
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, numpy coerced."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonify)


def config_hash(config: dict[str, Any] | None) -> str:
    """Canonical SHA-256 over a configuration dict (order-insensitive)."""
    digest = hashlib.sha256(canonical_json(config or {}).encode()).hexdigest()
    return f"sha256:{digest[:_HASH_LEN]}"


def dataset_fingerprint(
    graph: "CSRGraph | None", name: str | None = None
) -> dict[str, Any]:
    """Fingerprint a graph: registry params + a hash of the CSR bytes.

    The ``edge_hash`` covers ``indptr`` and ``indices`` exactly, so two
    records agree on it iff they counted the very same graph — the
    registry *parameters* alone cannot distinguish a regenerated dataset
    from a silently drifted generator.
    """
    fp: dict[str, Any] = {"name": name}
    if graph is not None:
        h = hashlib.sha256()
        h.update(graph.indptr.tobytes())
        h.update(graph.indices.tobytes())
        fp["num_vertices"] = int(graph.num_vertices)
        fp["num_edges"] = int(graph.num_edges)
        fp["edge_hash"] = f"sha256:{h.hexdigest()[:_HASH_LEN]}"
    if name is not None:
        from repro.graph.datasets import DATASETS  # lazy: keep obs light

        spec = DATASETS.get(name)
        if spec is not None:
            fp["registry"] = {
                "paper_name": spec.paper_name,
                "kind": spec.kind,
                "large": spec.large,
            }
    return fp


# -- provenance ------------------------------------------------------------

def _git(*args: str) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def collect_provenance(machine_model: str | None = None) -> dict[str, Any]:
    """Environment stamp: git state, interpreter, platform, host."""
    import numpy

    dirty_out = _git("status", "--porcelain")
    prov: dict[str, Any] = {
        "git_sha": _git("rev-parse", "HEAD"),
        "git_dirty": bool(dirty_out) if dirty_out is not None else None,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
    }
    try:
        prov["user"] = getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - no passwd entry
        prov["user"] = None
    if machine_model is not None:
        prov["machine_model"] = machine_model
    return prov


# -- record construction ---------------------------------------------------

def build_run_record(
    registry: "MetricsRegistry | None",
    *,
    command: str,
    config: dict[str, Any] | None = None,
    graph: "CSRGraph | None" = None,
    dataset_name: str | None = None,
    seed: int | None = None,
    meta: dict[str, Any] | None = None,
    artifact: dict[str, Any] | None = None,
    machine_model: str | None = None,
    profile: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one provenance-stamped run record (schema version 1).

    ``registry`` supplies the metric snapshot and span trees (``None``
    for runs that were not observed); ``artifact`` optionally embeds a
    full bench-trajectory artifact so the regression gate can use the
    record as a baseline; ``profile`` embeds a sampling-profiler digest
    (:meth:`repro.obs.profiler.Profile.summary` or ``to_dict``) when the
    run was profiled.
    """
    record: dict[str, Any] = {
        "schema": RUN_SCHEMA_VERSION,
        "kind": "run-record",
        "created": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "command": command,
        "provenance": collect_provenance(machine_model),
        "config": dict(config) if config else {},
        "config_hash": config_hash(config),
        "dataset": dataset_fingerprint(graph, dataset_name),
        "seed": seed,
        "metrics": registry.snapshot() if registry is not None else {},
        "spans": [root.to_dict() for root in registry.roots] if registry else [],
        "meta": dict(meta) if meta else {},
    }
    if artifact is not None:
        record["artifact"] = artifact
    if profile is not None:
        record["profile"] = dict(profile)
    stamp = record["created"].replace("-", "").replace(":", "")
    content = hashlib.sha256(canonical_json(record).encode()).hexdigest()
    record["run_id"] = f"r{stamp}-{content[:8]}"
    return record


# -- the ledger ------------------------------------------------------------

class Ledger:
    """Append-only JSONL run store with a small rebuildable index.

    Layout under ``root``: ``ledger.jsonl`` (one record per line, never
    rewritten) and ``index.json`` (run_id / created / command /
    config_hash / dataset summaries plus byte offsets).  The index is a
    cache: if it is missing or out of sync with the JSONL it is rebuilt
    from scratch, so the JSONL alone is the source of truth.
    """

    def __init__(self, root: str | pathlib.Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = pathlib.Path(root)
        self.path = self.root / "ledger.jsonl"
        self.index_path = self.root / "index.json"

    # -- writing ----------------------------------------------------------
    def append(self, record: dict[str, Any]) -> str:
        """Append one record; returns its ``run_id``."""
        if record.get("kind") != "run-record":
            raise LedgerError("not a run record (kind != 'run-record')")
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=False, default=_jsonify)
        offset = self.path.stat().st_size if self.path.exists() else 0
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        entries = self._load_index()
        entries.append(self._index_entry(record, offset))
        self._write_index(entries)
        return record["run_id"]

    @staticmethod
    def _index_entry(record: dict[str, Any], offset: int) -> dict[str, Any]:
        meta = record.get("meta", {})
        return {
            "run_id": record["run_id"],
            "created": record.get("created"),
            "command": record.get("command"),
            "config_hash": record.get("config_hash"),
            "dataset": record.get("dataset", {}).get("name"),
            "triangles": meta.get("triangles"),
            "offset": offset,
        }

    def _write_index(self, entries: list[dict[str, Any]]) -> None:
        payload = {"schema": RUN_SCHEMA_VERSION, "runs": entries}
        self.index_path.write_text(json.dumps(payload, indent=1) + "\n")

    def _load_index(self) -> list[dict[str, Any]]:
        if not self.index_path.exists():
            return []
        try:
            payload = json.loads(self.index_path.read_text())
            return list(payload.get("runs", []))
        except (json.JSONDecodeError, AttributeError):
            return []

    # -- reading ----------------------------------------------------------
    def records(self) -> Iterator[dict[str, Any]]:
        """Every record in append order (reads the JSONL)."""
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{self.path}:{lineno}: malformed ledger line: {exc}"
                    ) from None

    def entries(self) -> list[dict[str, Any]]:
        """Index entries in append order, rebuilding the index if stale."""
        entries = self._load_index()
        count = self._count_lines()
        if len(entries) != count:
            entries = self.rebuild_index()
        return entries

    def _count_lines(self) -> int:
        if not self.path.exists():
            return 0
        with open(self.path, encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def rebuild_index(self) -> list[dict[str, Any]]:
        """Reconstruct ``index.json`` from the JSONL (the source of truth)."""
        entries: list[dict[str, Any]] = []
        offset = 0
        if self.path.exists():
            with open(self.path, "rb") as fh:
                for raw in fh:
                    line = raw.decode("utf-8")
                    if line.strip():
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError as exc:
                            raise LedgerError(
                                f"{self.path}: malformed ledger line at byte "
                                f"{offset}: {exc}"
                            ) from None
                        entries.append(self._index_entry(record, offset))
                    offset += len(raw)
        if entries or self.root.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_index(entries)
        return entries

    def get(self, ref: str) -> dict[str, Any]:
        """Resolve ``ref`` to a full record.

        ``ref`` may be a full ``run_id``, a unique prefix of one,
        ``latest``, or ``latest~N`` (the N-th newest, git-style).
        """
        entries = self.entries()
        if not entries:
            raise LedgerError(f"ledger {self.path} is empty")
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if "~" in ref:
                try:
                    back = int(ref.split("~", 1)[1])
                except ValueError:
                    raise LedgerError(f"bad run reference {ref!r}") from None
            if back >= len(entries):
                raise LedgerError(
                    f"{ref!r} is out of range: ledger has {len(entries)} run(s)"
                )
            entry = entries[-1 - back]
        else:
            matches = [e for e in entries if e["run_id"].startswith(ref)]
            if not matches:
                raise LedgerError(f"no run matching {ref!r} in {self.path}")
            distinct = {e["run_id"] for e in matches}
            if len(distinct) > 1:
                raise LedgerError(
                    f"ambiguous run reference {ref!r}: matches {sorted(distinct)}"
                )
            entry = matches[-1]
        return self._read_at(entry["offset"], entry["run_id"])

    def _read_at(self, offset: int, run_id: str) -> dict[str, Any]:
        with open(self.path, encoding="utf-8") as fh:
            fh.seek(offset)
            line = fh.readline()
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            record = None
        if not record or record.get("run_id") != run_id:
            # stale offsets (hand-edited JSONL): fall back to a scan
            for record in self.records():
                if record.get("run_id") == run_id:
                    return record
            raise LedgerError(f"run {run_id} not found in {self.path}")
        return record


# -- run diffing -----------------------------------------------------------

def flatten_record_metrics(record: dict[str, Any]) -> dict[str, float]:
    """Project a record onto the flat ``key -> number`` space the
    regression gate compares.

    Counters / gauges / histogram summaries are namespaced by kind;
    numeric ``meta`` entries ride along as ``meta.<key>``; an embedded
    bench-trajectory artifact contributes its metrics unprefixed (their
    keys are already globally meaningful: ``LJGrp.SkyLakeX...``).
    """
    flat: dict[str, float] = {}
    metrics = record.get("metrics", {}) or {}
    for name, value in metrics.get("counters", {}).items():
        flat[f"counter.{name}"] = value
    for name, value in metrics.get("gauges", {}).items():
        flat[f"gauge.{name}"] = value
    for name, snap in metrics.get("histograms", {}).items():
        flat[f"histogram.{name}.count"] = snap.get("count", 0)
        flat[f"histogram.{name}.sum"] = snap.get("sum", 0.0)
    for key, value in (record.get("meta") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[f"meta.{key}"] = value
    artifact = record.get("artifact") or {}
    for key, value in (artifact.get("metrics") or {}).items():
        flat[key] = value
    return flat


def ledger_metric_kind(key: str) -> str:
    """Tolerance class of a flattened run-record metric.

    Mirrors :func:`repro.obs.regress._metric_kind` and extends it to the
    record namespaces: triangle counts compare exactly, shares / rates
    (gauges) by absolute drift, wall-clock timings are informational
    only, everything else is a count gated by relative tolerance.
    """
    if key.endswith(".triangles"):
        return "exact"
    if key.endswith(".overhead_ratio"):
        # telemetry/profiler self-measurement: gated against an absolute
        # ceiling (profiler.* keys get their own, tighter default)
        return "ceiling"
    if ".profiler." in key or key.startswith("profiler."):
        # sample/drop totals scale with wall time and machine load;
        # trend, never gate (the overhead_ratio above is the gate)
        return "timing"
    if ".sched." in key:
        # scheduler-dependent metrics (tile/chunk/steal counts, pool waits,
        # shm sizes) vary with worker count and backend by design; they are
        # informational, so snapshots stay identical across backends
        return "timing"
    if ".serve." in key or key.startswith("serve."):
        # serving metrics (cache hit mixes, queue depths, latencies) depend
        # on request arrival order and machine load; trend, never gate
        return "timing"
    if ".dynamic." in key or key.startswith("dynamic."):
        # dynamic-graph metrics: the update-vs-recount speedup is gated
        # as a floor (the whole point of incremental maintenance); batch
        # sizes, overlay residency and latencies are informational
        return "floor" if key.endswith("_speedup") else "timing"
    if key.endswith("_share") or key.startswith("gauge."):
        return "share"
    if key.endswith("_speedup"):
        return "floor"
    if (
        key.endswith("_seconds")
        or key.endswith(".elapsed")
        or key == "meta.elapsed"
        or ".queue_wait" in key
    ):
        return "timing"
    return "count"


@dataclass(frozen=True)
class SpanDelta:
    """Elapsed-time comparison of one aligned span path."""

    path: str
    a_elapsed: float | None
    b_elapsed: float | None

    @property
    def delta(self) -> float | None:
        if self.a_elapsed is None or self.b_elapsed is None:
            return None
        return self.b_elapsed - self.a_elapsed


def _span_path_times(spans: list[dict[str, Any]]) -> dict[str, float]:
    """Slash-joined span path -> total elapsed (duplicates summed)."""
    times: dict[str, float] = {}

    def walk(node: dict[str, Any], prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        times[path] = times.get(path, 0.0) + float(node.get("elapsed", 0.0))
        for child in node.get("children", []):
            walk(child, path)

    for root in spans:
        walk(root, "")
    return times


def run_span_deltas(
    a: dict[str, Any], b: dict[str, Any]
) -> list[SpanDelta]:
    """Aligned per-span-path elapsed deltas between two records."""
    ta = _span_path_times(a.get("spans", []))
    tb = _span_path_times(b.get("spans", []))
    order = list(ta) + [p for p in tb if p not in ta]
    return [SpanDelta(p, ta.get(p), tb.get(p)) for p in order]


def diff_runs(
    a: dict[str, Any],
    b: dict[str, Any],
    rel_tol: float | None = None,
    share_tol: float | None = None,
) -> dict[str, Any]:
    """Full diff of two run records.

    Metric deltas reuse :func:`repro.obs.regress.compare_artifacts` with
    the ledger kind map (so ``runs diff`` and the regression gate agree
    on what counts as a regression); span deltas align the two trees by
    slash path.  Returns ``{"a", "b", "same_config", "same_dataset",
    "metrics": [MetricDelta...], "spans": [SpanDelta...]}``.
    """
    from repro.obs.regress import DEFAULT_REL_TOL, DEFAULT_SHARE_TOL, compare_artifacts

    rel_tol = DEFAULT_REL_TOL if rel_tol is None else rel_tol
    share_tol = DEFAULT_SHARE_TOL if share_tol is None else share_tol
    deltas = compare_artifacts(
        {"metrics": flatten_record_metrics(a)},
        {"metrics": flatten_record_metrics(b)},
        rel_tol=rel_tol,
        share_tol=share_tol,
        kind_fn=ledger_metric_kind,
    )
    return {
        "a": a["run_id"],
        "b": b["run_id"],
        "same_config": a.get("config_hash") == b.get("config_hash"),
        "same_dataset": (
            a.get("dataset", {}).get("edge_hash")
            == b.get("dataset", {}).get("edge_hash")
        ),
        "metrics": deltas,
        "spans": run_span_deltas(a, b),
    }


def format_run_diff(diff: dict[str, Any], verbose: bool = False) -> str:
    """Human-readable rendering of :func:`diff_runs`."""
    from repro.obs.regress import format_deltas

    lines = [
        f"run a: {diff['a']}",
        f"run b: {diff['b']}",
        f"config:  {'identical' if diff['same_config'] else 'DIFFERENT'}",
        f"dataset: {'identical' if diff['same_dataset'] else 'DIFFERENT'}",
        format_deltas(diff["metrics"], verbose=verbose),
    ]
    spans = diff["spans"]
    if spans:
        lines.append(f"span timings ({len(spans)} aligned paths, informational):")
        width = max(len(s.path) for s in spans)
        for s in spans:
            a_ms = "-" if s.a_elapsed is None else f"{s.a_elapsed * 1e3:10.3f}"
            b_ms = "-" if s.b_elapsed is None else f"{s.b_elapsed * 1e3:10.3f}"
            if s.delta is None:
                tail = "(only in one run)"
            else:
                base = s.a_elapsed or 0.0
                pct = f" ({s.delta / base:+.1%})" if base else ""
                tail = f"{s.delta * 1e3:+10.3f} ms{pct}"
            lines.append(f"  {s.path:<{width}}  {a_ms:>10}  {b_ms:>10}  {tail}")
    return "\n".join(lines)
