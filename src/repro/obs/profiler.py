"""Span-attributed sampling profiler with per-span memory accounting.

The span tree (:mod:`repro.obs.spans`) says *that* ``hhh+hhn`` took 2.1
seconds; this module says *which frames inside it* burned the time.  A
:class:`SamplingProfiler` runs a daemon thread that walks
``sys._current_frames()`` on a fixed interval (default 10 ms), folds
each thread's Python stack into a frame path, and attributes the sample
to the span currently open on that thread (via
:func:`repro.obs.spans.thread_spans`).  The aggregate is a
:class:`Profile`: per-(span, stack) sample counts, per-span totals, and
self/cumulative frame weights — exportable as collapsed-stack text or
speedscope JSON through :mod:`repro.obs.profexport`.

Three integration points:

* **workers** — procpool workers run their own sampler when the
  propagated trace wire requests one and ship ``Profile.to_dict()``
  back in the telemetry payload; the parent's
  :func:`~repro.obs.telemetry.stitch_worker_payloads` merges it into the
  active profiler, so a ``--backend processes`` profile shows worker
  frames attributed to the worker-side spans stitched under ``phase1``;
* **memory** — ``profile_memory=True`` (or a standalone
  :class:`MemoryAccountant`) snapshots :mod:`tracemalloc` at every span
  boundary and writes ``mem_delta`` / ``mem_peak`` byte attrs onto the
  closing span;
* **serving** — :class:`ContinuousProfiler` drains the sampler on a
  rolling window, bumps the ``profiler.samples`` / ``profiler.dropped``
  registry counters (picked up by the Prometheus exposers) and publishes
  a ``profile`` event on the :class:`~repro.obs.telemetry.TelemetryBus`.

Overhead is self-measured: ``scripts/bench_trajectory.py
--profiler-overhead`` records ``profiler.EU15.overhead_ratio``, gated by
:mod:`repro.obs.regress` against an absolute ceiling (target <= 1.10 at
the 10 ms default interval).

Only one sampler is *active* per process (module-level, like the
registry and the bus): :meth:`SamplingProfiler.start` installs it so the
procpool dispatch can discover that profiling is on and forward the
interval to its workers.
"""

from __future__ import annotations

import sys
import threading
import tracemalloc
from typing import Any, Iterator

from repro.obs.spans import (
    Span,
    add_span_observer,
    remove_span_observer,
    thread_spans,
)
from repro.util.timer import clock

__all__ = [
    "DEFAULT_INTERVAL_S",
    "Profile",
    "SamplingProfiler",
    "MemoryAccountant",
    "ContinuousProfiler",
    "get_profiler",
    "frame_label",
]

DEFAULT_INTERVAL_S = 0.010  # 10 ms: ~100 Hz, <<1% overhead on EU15

# stack depth bound: deeper frames are truncated from the *root* end so
# the hot leaf is always kept
_MAX_DEPTH = 128

# span-key used for samples taken while no span was open on the thread
NO_SPAN = ("", "(no span)")


def frame_label(frame: Any) -> str:
    """Human-readable folded-stack label for one Python frame.

    ``module.function`` when the module name is importable,
    ``basename.py:function`` otherwise — short enough for flamegraph
    rails, unique enough to find the code.
    """
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if module:
        return f"{module}.{code.co_name}"
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


def _fold_stack(frame: Any) -> tuple[str, ...]:
    """Root-to-leaf tuple of frame labels for one thread's current frame."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < _MAX_DEPTH:
        labels.append(frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return tuple(labels)


class Profile:
    """Aggregated stack samples with span attribution.

    ``stacks`` maps ``(span_id, span_name, frames)`` — ``frames`` a
    root-to-leaf tuple of labels — to a sample count.  ``samples`` is the
    total taken, ``dropped`` counts sampling ticks skipped because a
    pass overran the interval, ``duration_s`` the sampled wall window.
    Mergeable (:meth:`merge` / :meth:`merge_dict`) so worker-process
    profiles fold into the parent's.
    """

    __slots__ = ("interval_s", "samples", "dropped", "duration_s", "stacks")

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.interval_s = float(interval_s)
        self.samples = 0
        self.dropped = 0
        self.duration_s = 0.0
        self.stacks: dict[tuple[str, str, tuple[str, ...]], int] = {}

    # -- recording ---------------------------------------------------------
    def record(
        self, span_id: str, span_name: str, frames: tuple[str, ...], count: int = 1
    ) -> None:
        key = (span_id, span_name, frames)
        self.stacks[key] = self.stacks.get(key, 0) + count
        self.samples += count

    # -- queries -----------------------------------------------------------
    def span_samples(self) -> dict[tuple[str, str], int]:
        """``(span_id, span_name) -> sample count``, descending."""
        totals: dict[tuple[str, str], int] = {}
        for (span_id, span_name, _), count in self.stacks.items():
            key = (span_id, span_name)
            totals[key] = totals.get(key, 0) + count
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def frame_weights(self) -> dict[str, tuple[int, int]]:
        """``frame label -> (self samples, cumulative samples)``.

        Self counts samples where the frame is the stack leaf; cumulative
        counts every sample whose stack contains the frame (recursive
        frames counted once per sample).
        """
        weights: dict[str, list[int]] = {}
        for (_, _, frames), count in self.stacks.items():
            if not frames:
                continue
            for label in set(frames):
                w = weights.setdefault(label, [0, 0])
                w[1] += count
            weights[frames[-1]][0] += count
        return {
            label: (w[0], w[1])
            for label, w in sorted(weights.items(), key=lambda kv: -kv[1][0])
        }

    def top_frames(self, n: int = 10) -> list[dict[str, Any]]:
        """The ``n`` hottest frames by self weight, with span attribution.

        Each entry carries ``frame``, ``self`` / ``cum`` sample counts,
        their shares of the total, and ``spans`` — the frame's self
        samples split by the span names it was sampled under.
        """
        by_span: dict[str, dict[str, int]] = {}
        for (_, span_name, frames), count in self.stacks.items():
            if not frames:
                continue
            leaf_spans = by_span.setdefault(frames[-1], {})
            leaf_spans[span_name] = leaf_spans.get(span_name, 0) + count
        total = self.samples or 1
        out = []
        for label, (self_w, cum_w) in self.frame_weights().items():
            if len(out) >= n:
                break
            spans = dict(
                sorted(by_span.get(label, {}).items(), key=lambda kv: -kv[1])
            )
            out.append({
                "frame": label,
                "self": self_w,
                "cum": cum_w,
                "self_share": self_w / total,
                "cum_share": cum_w / total,
                "spans": spans,
            })
        return out

    # -- merging / (de)serialisation ---------------------------------------
    def merge(self, other: "Profile") -> None:
        for (span_id, span_name, frames), count in other.stacks.items():
            self.record(span_id, span_name, frames, count)
        self.samples = sum(self.stacks.values())  # record() re-added counts
        self.dropped += other.dropped
        self.duration_s = max(self.duration_s, other.duration_s)

    def merge_dict(self, data: dict[str, Any]) -> None:
        self.merge(Profile.from_dict(data))

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "dropped": self.dropped,
            "duration_s": round(self.duration_s, 6),
            "stacks": [
                {
                    "span_id": span_id,
                    "span": span_name,
                    "frames": list(frames),
                    "count": count,
                }
                for (span_id, span_name, frames), count in sorted(
                    self.stacks.items(), key=lambda kv: -kv[1]
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profile":
        profile = cls(interval_s=data.get("interval_s", DEFAULT_INTERVAL_S))
        for entry in data.get("stacks", []):
            profile.record(
                str(entry.get("span_id", "")),
                str(entry.get("span", NO_SPAN[1])),
                tuple(entry.get("frames", ())),
                int(entry.get("count", 0)),
            )
        profile.dropped = int(data.get("dropped", 0))
        profile.duration_s = float(data.get("duration_s", 0.0))
        return profile

    def summary(self) -> dict[str, Any]:
        """Small ledger-friendly digest (no full stack table)."""
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "dropped": self.dropped,
            "duration_s": round(self.duration_s, 6),
            "distinct_stacks": len(self.stacks),
            "span_samples": {
                name or "(no span)": count
                for (_, name), count in self.span_samples().items()
            },
            "top_frames": self.top_frames(10),
        }

    def __repr__(self) -> str:
        return (
            f"Profile(samples={self.samples}, dropped={self.dropped}, "
            f"stacks={len(self.stacks)}, interval_s={self.interval_s})"
        )


# the process-wide active profiler (None when off), mirroring the
# registry / bus activation pattern
_active_profiler: "SamplingProfiler | None" = None
_active_lock = threading.Lock()


def get_profiler() -> "SamplingProfiler | None":
    """The running :class:`SamplingProfiler`, or ``None``.

    Procpool dispatch asks this to decide whether workers should sample
    themselves (and at what interval).
    """
    return _active_profiler


class SamplingProfiler:
    """Background sampler attributing folded stacks to open spans.

    Use as a context manager (``with SamplingProfiler() as prof: ...``)
    or via explicit :meth:`start` / :meth:`stop`; the aggregated
    :class:`Profile` is the ``stop()`` return value and stays available
    as :attr:`profile`.  ``profile_memory=True`` additionally installs a
    :class:`MemoryAccountant` for the profiler's lifetime.

    The sampler thread never takes locks shared with the sampled code:
    it reads ``sys._current_frames()`` (a consistent snapshot made under
    the GIL) and the span registry snapshot, so the only cost imposed on
    the pipeline is the GIL hold while frames are copied — the overhead
    gate (``profiler.*.overhead_ratio``) holds that under its ceiling.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        profile_memory: bool = False,
        activate: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.profile_memory = bool(profile_memory)
        self._activate = bool(activate)
        self.profile = Profile(interval_s=self.interval_s)
        self._lock = threading.Lock()  # guards self.profile swap/merge
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._memory: MemoryAccountant | None = None
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        global _active_profiler
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._activate:
            with _active_lock:
                if _active_profiler is not None:
                    raise RuntimeError(
                        "another SamplingProfiler is already active in this "
                        "process; stop it first"
                    )
                _active_profiler = self
        if self.profile_memory:
            self._memory = MemoryAccountant()
            self._memory.install()
        self._started_at = clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        global _active_profiler
        thread = self._thread
        if thread is None:
            return self.profile
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._memory is not None:
            self._memory.uninstall()
            self._memory = None
        if self._activate:
            with _active_lock:
                if _active_profiler is self:
                    _active_profiler = None
        with self._lock:
            self.profile.duration_s = clock() - self._started_at
            return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- used by stitching / the continuous wrapper ------------------------
    def merge_dict(self, data: dict[str, Any]) -> None:
        """Fold a serialised (worker) profile into the live aggregate."""
        with self._lock:
            self.profile.merge_dict(data)

    def take_profile(self) -> Profile:
        """Swap the aggregate for a fresh one and return the old window."""
        with self._lock:
            window = self.profile
            window.duration_s = clock() - self._started_at
            self._started_at = clock()
            self.profile = Profile(interval_s=self.interval_s)
            return window

    # -- the sampler thread ------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        interval = self.interval_s
        while not self._stop.wait(interval):
            pass_started = clock()
            try:
                frames = sys._current_frames()
                spans = thread_spans()
                with self._lock:
                    for ident, frame in frames.items():
                        if ident == own_ident:
                            continue
                        span = spans.get(ident)
                        if span is not None:
                            span_key = (span.span_id, span.name)
                        else:
                            span_key = NO_SPAN
                        self.profile.record(
                            span_key[0], span_key[1], _fold_stack(frame)
                        )
            except Exception:
                # a torn frame walk must never kill the sampled process;
                # count the lost tick instead
                with self._lock:
                    self.profile.dropped += 1
            overrun = clock() - pass_started
            if overrun > interval:
                with self._lock:
                    self.profile.dropped += int(overrun // interval)


class MemoryAccountant:
    """Per-span memory accounting via :mod:`tracemalloc`.

    While installed (a span observer, see
    :func:`repro.obs.spans.add_span_observer`), every closing span gains

    * ``mem_delta`` — net traced bytes allocated over the span (can be
      negative: the span freed more than it allocated);
    * ``mem_peak``  — high-water mark of traced bytes over the span,
      relative to the bytes traced at span open (>= 0; includes any
      child span's peak).

    Starts ``tracemalloc`` if it is not already tracing and stops it
    again on :meth:`uninstall` (only if it started it).  Opt-in because
    tracemalloc itself costs 2-4x on allocation-heavy code — the
    *sampling* side of the profiler stays cheap either way.
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._started_tracing = False
        self._installed = False

    def install(self) -> "MemoryAccountant":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._installed = True
        add_span_observer(self)
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        remove_span_observer(self)
        self._installed = False
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False

    def __enter__(self) -> "MemoryAccountant":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # -- span observer protocol --------------------------------------------
    def span_opened(self, span: Span) -> None:
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        # [span, bytes traced at open, absolute peak seen inside]
        stack.append([span, current, current])

    def span_closed(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return
        current, peak = tracemalloc.get_traced_memory()
        # pop through abandoned inner entries, mirroring the span stack
        entry = None
        while stack:
            candidate = stack.pop()
            if candidate[0] is span:
                entry = candidate
                break
        if entry is None:
            return
        peak_abs = max(entry[2], peak, current)
        span.set("mem_delta", int(current - entry[1]))
        span.set("mem_peak", int(max(peak_abs - entry[1], 0)))
        if stack:
            # the parent's window must cover the child's peak even though
            # reset_peak() below wipes the interpreter-level high-water
            stack[-1][2] = max(stack[-1][2], peak_abs)
        tracemalloc.reset_peak()


class ContinuousProfiler:
    """Rolling-window profiling for long-lived (serving) processes.

    Wraps a :class:`SamplingProfiler`; every ``window_s`` a background
    thread drains the aggregate (:meth:`SamplingProfiler.take_profile`),
    adds the window's sample counts to the ``profiler.samples`` /
    ``profiler.dropped`` counters of ``registry`` (so the Prometheus
    file/HTTP exposers publish them live) and emits a ``profile`` event
    on the active :class:`~repro.obs.telemetry.TelemetryBus` carrying
    the window digest.  The last drained window stays readable as
    :attr:`last_window`; :meth:`close` drains one final window.
    """

    def __init__(
        self,
        registry: Any,
        interval_s: float = DEFAULT_INTERVAL_S,
        window_s: float = 5.0,
        profile_memory: bool = False,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self._registry = registry
        self.window_s = float(window_s)
        self.sampler = SamplingProfiler(
            interval_s=interval_s, profile_memory=profile_memory
        )
        self.last_window: Profile | None = None
        self.windows_published = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "ContinuousProfiler":
        self.sampler.start()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler-window", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> Profile | None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.sampler.running:
            self.sampler.stop()
        self._publish(self.sampler.take_profile())
        return self.last_window

    def __enter__(self) -> "ContinuousProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.wait(self.window_s):
            self._publish(self.sampler.take_profile())

    def _publish(self, window: Profile) -> None:
        from repro.obs.telemetry import get_bus

        self.last_window = window
        self.windows_published += 1
        self._registry.counter("profiler.samples").add(window.samples)
        self._registry.counter("profiler.dropped").add(window.dropped)
        self._registry.gauge("profiler.window_samples").set(window.samples)
        bus = get_bus()
        if bus.enabled:
            bus.emit({
                "event": "profile",
                "samples": window.samples,
                "dropped": window.dropped,
                "duration_s": round(window.duration_s, 3),
                "distinct_stacks": len(window.stacks),
                "top": [
                    {"frame": f["frame"], "self": f["self"]}
                    for f in window.top_frames(5)
                ],
            })


def iter_profile_spans(profile: Profile) -> Iterator[tuple[str, str, int]]:
    """``(span_id, span_name, samples)`` triples, hottest span first."""
    for (span_id, span_name), count in profile.span_samples().items():
        yield span_id, span_name, count
