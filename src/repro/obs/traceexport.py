"""Chrome ``trace_event`` export: open any span tree in Perfetto.

Converts the recorded span trees (:mod:`repro.obs.spans`) into the
Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev — the paper's Figure-6 phase breakdown as an
interactive timeline.

Spans record *durations*, not absolute start times, so the exporter
reconstructs a timeline: root spans are laid end to end and each span's
children are packed sequentially from their parent's start.  When timer
jitter makes the children sum to slightly more than the parent, the
children are scaled down proportionally so the containment invariant the
viewers rely on (child interval inside parent interval) always holds.

Every span becomes one complete ("ph": "X") event whose ``dur`` is the
span's elapsed time in microseconds and whose ``args`` carry the span
attributes.  :func:`spans_from_trace` reconstructs the span trees from
an exported document (names, nesting, durations), which is how the CI
smoke job validates round-tripping.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import Span

__all__ = [
    "TRACE_DISPLAY_UNIT",
    "build_trace",
    "spans_to_trace_events",
    "spans_from_trace",
    "trace_from_record",
    "trace_from_report",
    "trace_total_duration",
    "write_trace",
]

TRACE_DISPLAY_UNIT = "ms"

# containment slack in microseconds when rebuilding trees: ts/dur are
# rounded to 3 decimals (nanosecond grain), so 10 ns absorbs the rounding
_EPSILON_US = 0.01


def _jsonify_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        out[key] = value.item() if hasattr(value, "item") else value
    return out


def spans_to_trace_events(
    roots: list[Span], pid: int = 1, tid: int = 1, process_name: str = "repro"
) -> list[dict[str, Any]]:
    """Flatten span trees into a ``traceEvents`` list (pre-order)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]

    def emit(span: Span, start: float) -> None:
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": round(start * 1e6, 3),
                "dur": round(span.elapsed * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": _jsonify_attrs(span.attrs),
            }
        )
        child_total = sum(c.elapsed for c in span.children)
        scale = 1.0
        if child_total > span.elapsed > 0.0:
            scale = span.elapsed / child_total
        cursor = start
        for child in span.children:
            emit_scaled(child, cursor, scale)
            cursor += child.elapsed * scale

    def emit_scaled(span: Span, start: float, scale: float) -> None:
        if scale == 1.0:
            emit(span, start)
            return
        clone = Span(span.name, span.attrs)
        clone.elapsed = span.elapsed * scale
        clone.children = span.children
        emit(clone, start)

    cursor = 0.0
    for root in roots:
        emit(root, cursor)
        cursor += root.elapsed
    return events


def build_trace(
    roots: list[Span], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """One JSON-object-format trace document for a list of root spans."""
    doc: dict[str, Any] = {
        "traceEvents": spans_to_trace_events(roots),
        "displayTimeUnit": TRACE_DISPLAY_UNIT,
    }
    if meta:
        doc["otherData"] = {k: str(v) for k, v in meta.items()}
    return doc


def trace_from_report(report: dict[str, Any]) -> dict[str, Any]:
    """Trace document for a parsed ``repro.obs.report`` artifact."""
    roots = [Span.from_dict(d) for d in report.get("spans", [])]
    return build_trace(roots, meta=report.get("meta"))


def trace_from_record(record: dict[str, Any]) -> dict[str, Any]:
    """Trace document for a ledger run record (see :mod:`repro.obs.ledger`)."""
    roots = [Span.from_dict(d) for d in record.get("spans", [])]
    meta = {
        "run_id": record.get("run_id"),
        "command": record.get("command"),
        "config_hash": record.get("config_hash"),
    }
    return build_trace(roots, meta=meta)


def spans_from_trace(trace: dict[str, Any]) -> list[Span]:
    """Rebuild span trees from an exported trace (the round-trip check).

    Only complete ("X") events are considered; nesting is recovered from
    interval containment per (pid, tid) lane, which is exactly the
    invariant the exporter guarantees.
    """
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    events.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0),
                               e["ts"], -e["dur"]))
    roots: list[Span] = []
    # stack of (span, lane, ts, end)
    stack: list[tuple[Span, tuple[int, int], float, float]] = []
    for event in events:
        span = Span(event["name"], event.get("args") or None)
        span.elapsed = event["dur"] / 1e6
        lane = (event.get("pid", 0), event.get("tid", 0))
        ts, end = event["ts"], event["ts"] + event["dur"]
        while stack and not (
            stack[-1][1] == lane
            and ts >= stack[-1][2] - _EPSILON_US
            and end <= stack[-1][3] + _EPSILON_US
        ):
            stack.pop()
        if stack:
            stack[-1][0].children.append(span)
        else:
            roots.append(span)
        stack.append((span, lane, ts, end))
    return roots


def trace_total_duration(trace: dict[str, Any]) -> float:
    """Total seconds covered by the trace's top-level spans."""
    return sum(root.elapsed for root in spans_from_trace(trace))


def write_trace(path: str, trace: dict[str, Any]) -> None:
    """Persist a trace document (loadable by Perfetto / chrome://tracing)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
