"""Chrome ``trace_event`` export: open any span tree in Perfetto.

Converts the recorded span trees (:mod:`repro.obs.spans`) into the
Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev — the paper's Figure-6 phase breakdown as an
interactive timeline.

Spans recorded live carry absolute :func:`repro.util.timer.clock`
start timestamps (including spans recorded *inside* procpool worker
processes, whose CLOCK_MONOTONIC readings are comparable with the
parent's), so the exporter lays them out on a real shared timeline:
``ts`` is the span's start offset from the earliest start in the
document, clamped into the parent's interval against rounding jitter.
Spans without a start (legacy reports, hand-built trees) fall back to
the synthesized layout: roots end to end, children packed sequentially
from their parent's start, scaled down proportionally when timer jitter
makes them overflow so the containment invariant (child interval inside
parent interval) always holds.

Every span becomes one complete ("ph": "X") event whose ``dur`` is the
span's elapsed time in microseconds and whose ``args`` carry the span
attributes.  Each event also carries the span's ``trace_id`` /
``span_id`` / ``parent_span_id`` (the structural parent), and spans
whose attrs record a worker ``pid`` are placed in that pid's lane —
which is how a ``--backend processes`` export shows true worker-side
nesting under ``phase1`` with distinct pids.  :func:`spans_from_trace`
reconstructs the span trees exactly from those ids (names, nesting,
durations, trace identity), falling back to interval containment for
traces exported before ids existed; the CI smoke job validates the
round trip.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import Span

__all__ = [
    "TRACE_DISPLAY_UNIT",
    "build_trace",
    "spans_to_trace_events",
    "spans_from_trace",
    "trace_from_record",
    "trace_from_report",
    "trace_total_duration",
    "write_trace",
]

TRACE_DISPLAY_UNIT = "ms"

# containment slack in microseconds when rebuilding trees: ts/dur are
# rounded to 3 decimals (nanosecond grain), so 10 ns absorbs the rounding
_EPSILON_US = 0.01


def _jsonify_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        out[key] = value.item() if hasattr(value, "item") else value
    return out


def spans_to_trace_events(
    roots: list[Span], pid: int = 1, tid: int = 1, process_name: str = "repro"
) -> list[dict[str, Any]]:
    """Flatten span trees into a ``traceEvents`` list (pre-order)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    named_pids = {pid}

    starts = [s.start for r in roots for s in r.iter_spans() if s.start > 0]
    origin = min(starts) if starts else 0.0

    def lane_for(span: Span, inherited: int) -> int:
        lane = span.attrs.get("pid")
        if isinstance(lane, int) and not isinstance(lane, bool) and lane > 0:
            if lane not in named_pids:
                named_pids.add(lane)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": lane,
                        "tid": tid,
                        "args": {"name": f"{process_name} worker (pid {lane})"},
                    }
                )
            return lane
        return inherited

    def emit(
        span: Span,
        start_us: float,
        dur_us: float,
        lane_pid: int,
        parent_sid: str | None,
        real_ok: bool,
    ) -> None:
        ev_pid = lane_for(span, lane_pid)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(dur_us, 3),
            "pid": ev_pid,
            "tid": tid,
            "args": _jsonify_attrs(span.attrs),
            "span_id": span.span_id,
        }
        if span.trace_id is not None:
            event["trace_id"] = span.trace_id
        if parent_sid is not None:
            event["parent_span_id"] = parent_sid
        events.append(event)
        if not span.children:
            return
        if real_ok and all(c.start > 0 for c in span.children):
            # real timeline: each child at its recorded offset, clamped
            # into the parent interval against cross-process jitter
            for child in span.children:
                cdur = min(child.elapsed * 1e6, dur_us)
                cts = (child.start - origin) * 1e6
                cts = max(cts, start_us)
                if cts + cdur > start_us + dur_us:
                    cts = max(start_us, start_us + dur_us - cdur)
                emit(child, cts, cdur, ev_pid, span.span_id, True)
            return
        # synthesized layout: pack sequentially, scale on jitter overflow
        child_total_us = sum(c.elapsed for c in span.children) * 1e6
        scale = 1.0
        if child_total_us > dur_us > 0.0:
            scale = dur_us / child_total_us
        cursor = start_us
        for child in span.children:
            cdur = child.elapsed * scale * 1e6
            emit(child, cursor, cdur, ev_pid, span.span_id, False)
            cursor += cdur

    real_root_ends = [
        (r.start - origin) * 1e6 + r.elapsed * 1e6 for r in roots if r.start > 0
    ]
    cursor = max(real_root_ends) if real_root_ends else 0.0
    for root in roots:
        if root.start > 0:
            emit(root, (root.start - origin) * 1e6, root.elapsed * 1e6,
                 pid, None, True)
        else:
            emit(root, cursor, root.elapsed * 1e6, pid, None, False)
            cursor += root.elapsed * 1e6
    return events


def build_trace(
    roots: list[Span], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """One JSON-object-format trace document for a list of root spans."""
    doc: dict[str, Any] = {
        "traceEvents": spans_to_trace_events(roots),
        "displayTimeUnit": TRACE_DISPLAY_UNIT,
    }
    if meta:
        doc["otherData"] = {k: str(v) for k, v in meta.items()}
    return doc


def trace_from_report(report: dict[str, Any]) -> dict[str, Any]:
    """Trace document for a parsed ``repro.obs.report`` artifact."""
    roots = [Span.from_dict(d) for d in report.get("spans", [])]
    return build_trace(roots, meta=report.get("meta"))


def trace_from_record(record: dict[str, Any]) -> dict[str, Any]:
    """Trace document for a ledger run record (see :mod:`repro.obs.ledger`)."""
    roots = [Span.from_dict(d) for d in record.get("spans", [])]
    meta = {
        "run_id": record.get("run_id"),
        "command": record.get("command"),
        "config_hash": record.get("config_hash"),
    }
    return build_trace(roots, meta=meta)


def spans_from_trace(trace: dict[str, Any]) -> list[Span]:
    """Rebuild span trees from an exported trace (the round-trip check).

    Only complete ("X") events are considered.  When every event carries
    a ``span_id`` (everything this exporter writes), nesting is
    recovered *exactly* from ``parent_span_id`` and each span's trace
    identity (``trace_id``/``span_id``/``parent_id``) round-trips;
    siblings order by ``ts``.  Traces from before span ids fall back to
    interval containment per (pid, tid) lane.
    """
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    if events and all("span_id" in e for e in events):
        return _spans_from_ids(events)
    return _spans_from_containment(events)


def _spans_from_ids(events: list[dict[str, Any]]) -> list[Span]:
    order = sorted(
        range(len(events)),
        key=lambda i: (events[i]["ts"], -events[i]["dur"], i),
    )
    by_id: dict[str, Span] = {}
    roots: list[Span] = []
    pending: list[tuple[str | None, Span]] = []
    for i in order:
        event = events[i]
        span = Span(event["name"], event.get("args") or None)
        span.elapsed = event["dur"] / 1e6
        span.start = event["ts"] / 1e6  # origin-relative
        span.span_id = str(event["span_id"])
        span.trace_id = event.get("trace_id")
        span.parent_id = event.get("parent_span_id")
        by_id[span.span_id] = span
        pending.append((span.parent_id, span))
    for parent_id, span in pending:
        parent = by_id.get(parent_id) if parent_id is not None else None
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots


def _spans_from_containment(events: list[dict[str, Any]]) -> list[Span]:
    events = sorted(
        events,
        key=lambda e: (e.get("pid", 0), e.get("tid", 0), e["ts"], -e["dur"]),
    )
    roots: list[Span] = []
    # stack of (span, lane, ts, end)
    stack: list[tuple[Span, tuple[int, int], float, float]] = []
    for event in events:
        span = Span(event["name"], event.get("args") or None)
        span.elapsed = event["dur"] / 1e6
        lane = (event.get("pid", 0), event.get("tid", 0))
        ts, end = event["ts"], event["ts"] + event["dur"]
        while stack and not (
            stack[-1][1] == lane
            and ts >= stack[-1][2] - _EPSILON_US
            and end <= stack[-1][3] + _EPSILON_US
        ):
            stack.pop()
        if stack:
            stack[-1][0].children.append(span)
        else:
            roots.append(span)
        stack.append((span, lane, ts, end))
    return roots


def trace_total_duration(trace: dict[str, Any]) -> float:
    """Total seconds covered by the trace's top-level spans."""
    return sum(root.elapsed for root in spans_from_trace(trace))


def write_trace(path: str, trace: dict[str, Any]) -> None:
    """Persist a trace document (loadable by Perfetto / chrome://tracing)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
