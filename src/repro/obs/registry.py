"""The metrics registry: counters, gauges, histograms, and span roots.

One :class:`MetricsRegistry` collects everything a pipeline run records:

* **counters** — monotonically increasing totals (pairs probed, bytes
  gathered, tiles executed);
* **gauges** — last-written values (cache hit rates, hub fraction);
* **histograms** — bucketed distributions (tile work, queue wait);
* **spans** — the nested phase trace (:mod:`repro.obs.spans`).

A module-level *active registry* mediates all instrumentation.  By
default it is :data:`NULL_REGISTRY`, whose operations are no-ops and
whose spans are a shared null object — the hooks threaded through the
hot paths then cost one attribute lookup and a no-op call, keeping the
NumPy kernels at full throughput.  Tests and the CLI switch a real
registry in with :func:`use_registry` / :func:`set_registry`.

All mutation is thread-safe: counters take a per-metric lock, the
registry takes a lock for structural changes, and the span stack is
thread-local (worker threads attach spans to an explicit parent handed
over by the dispatching thread).
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPAN_CONTEXT,
    NullSpanContext,
    Span,
    SpanContext,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "enabled",
]


class Counter:
    """Monotonic counter.  ``add`` is thread-safe."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: int | float = 0
        self._lock = threading.Lock()

    def add(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        with self._lock:
            self._value += amount

    def inc(self) -> None:
        self.add(1)

    @property
    def value(self) -> int | float:
        return self._value

    def snapshot(self) -> int | float:
        return self._value


class Gauge:
    """Last-value-wins metric (hit rates, sizes, fractions)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


# default buckets: powers of two up to 2^30 — op counts and byte volumes
# span many orders of magnitude, and exact quantiles are not needed
_DEFAULT_BUCKETS = tuple(float(1 << i) for i in range(0, 31, 2))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds of each bucket; observations above the
    last bound land in the overflow bucket.  ``observe`` is thread-safe.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        bounds = tuple(sorted(buckets)) if buckets is not None else _DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if idx < len(self.buckets):
                    return self.buckets[idx]
                return float(self.max if self.max is not None else self.buckets[-1])
        return float(self.max if self.max is not None else self.buckets[-1])

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold another histogram's snapshot into this one bucket-wise.

        Used when stitching worker-process metric deltas back into the
        parent registry (:func:`repro.obs.telemetry.stitch_worker_payloads`);
        requires identical bucket bounds.
        """
        bounds = tuple(snap.get("buckets") or ())
        if bounds != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        counts = snap.get("counts") or [0] * len(self.counts)
        with self._lock:
            for idx, c in enumerate(counts):
                self.counts[idx] += c
            self.count += snap.get("count", 0)
            self.sum += snap.get("sum", 0.0)
            smin, smax = snap.get("min"), snap.get("max")
            if smin is not None and (self.min is None or smin < self.min):
                self.min = smin
            if smax is not None and (self.max is None or smax > self.max):
                self.max = smax


class MetricsRegistry:
    """Holds every metric and span tree of one observed run."""

    enabled = True

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- metric factories (get-or-create) ---------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        with self._lock:
            self._check_name_free(name, skip=self._histograms)
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(name, buckets)
                self._histograms[name] = hist
            return hist

    def _get_or_create(self, table: dict[str, Any], name: str, cls: type) -> Any:
        metric = table.get(name)
        if metric is not None:
            return metric
        with self._lock:
            self._check_name_free(name, skip=table)
            metric = table.get(name)
            if metric is None:
                metric = cls(name)
                table[name] = metric
            return metric

    def _check_name_free(self, name: str, skip: dict[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not skip and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # -- spans -------------------------------------------------------------
    def span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> SpanContext:
        """Open a traced region; use as ``with registry.span("x") as sp:``.

        ``parent`` overrides thread-local nesting — pass the dispatching
        thread's span when the body runs on a worker thread.
        """
        return SpanContext(self, name, parent=parent, attrs=attrs or None)

    def current_span(self) -> Span | None:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _push_span(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop_span(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return
        if stack[-1] is span:
            stack.pop()
            return
        # the span is buried: contexts opened above it were abandoned
        # without exiting (e.g. a generator holding a span was dropped
        # mid-iteration).  Unwind through the orphans so they cannot
        # corrupt the parentage of later spans.
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx] is span:
                del stack[idx:]
                return

    def _attach_span(self, span: Span, parent: Span | None) -> None:
        if parent is not None and parent is not NULL_SPAN:
            with self._lock:
                parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    @property
    def roots(self) -> list[Span]:
        """Completed top-level spans, in completion order."""
        return list(self._roots)

    def find_span(self, name: str) -> Span | None:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter_spans()

    # -- lifecycle / export ------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._roots.clear()

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of all metrics (no spans; see report.build_report)."""
        with self._lock:
            return {
                "counters": {n: c.snapshot() for n, c in sorted(self._counters.items())},
                "gauges": {n: g.snapshot() for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.snapshot() for n, h in sorted(self._histograms.items())
                },
            }

    def family(self, prefix: str) -> dict[str, Any]:
        """Snapshot restricted to one metric family (``prefix`` + ``"."``).

        ``family("serve")`` returns only the ``serve.*`` counters, gauges
        and histograms — the shape the serve CLI emits as its metrics
        artifact.
        """
        dot = prefix if prefix.endswith(".") else prefix + "."
        snap = self.snapshot()
        return {
            kind: {n: v for n, v in table.items() if n.startswith(dot)}
            for kind, table in snap.items()
        }

    def histogram_quantile(self, name: str, q: float) -> float | None:
        """Quantile of a *registered* histogram, or ``None``.

        Unlike :meth:`Histogram.quantile` (which reports ``0.0`` on an
        empty histogram), this returns ``None`` when the histogram does
        not exist or has no observations — callers polling a live
        registry mid-session must be able to tell "no data yet" from a
        genuine zero latency.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        hist = self._histograms.get(name)
        if hist is None or hist.count == 0:
            return None
        return hist.quantile(q)

    def to_prometheus(self, labels: dict[str, str] | None = None) -> str:
        """The registry in Prometheus text exposition format
        (:func:`repro.obs.telemetry.prometheus_exposition`)."""
        from repro.obs.telemetry import prometheus_exposition

        return prometheus_exposition(self.snapshot(), labels=labels)


class _NullCounter(Counter):
    __slots__ = ()

    def add(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: int | float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: every operation is a cheap no-op.

    Metric factories hand back shared null instances and ``span`` returns
    a shared no-op context, so instrumented code needs no ``if enabled``
    guards for correctness — only for skipping *expensive attribute
    computation* (via ``span.enabled``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(name="null")
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._null_histogram

    def span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> NullSpanContext:  # type: ignore[override]
        return NULL_SPAN_CONTEXT

    def current_span(self) -> Span | None:
        return None


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The active registry (the shared null registry when disabled)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the active one (``None`` disables); returns it."""
    global _active
    _active = registry if registry is not None else NULL_REGISTRY
    return _active


def enabled() -> bool:
    return _active.enabled


@contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Temporarily activate ``registry`` (a fresh one when omitted).

    ``with use_registry() as reg: ... reg.snapshot()`` is the idiomatic
    way to observe one pipeline run.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
