"""Locality attribution reports: which structure causes which misses.

The paper's argument is not just *how many* LLC/DTLB misses each
algorithm takes but *where they come from* — Forward's random reads of
the oriented neighbour array versus LOTUS confining randomness to the
small H2H bit array (Sections 3-4).  This module turns the attributed
replay mode of :class:`~repro.memsim.hierarchy.MemoryHierarchy` into a
paper-style report: for one dataset × machine, every algorithm's misses
are broken down per region (``he``/``nhe``/``h2h``/``indices``) and per
phase, with per-region reuse-distance percentiles and LRU hit curves
computed in one pass (:func:`~repro.memsim.reuse.reuse_distance_by_region`).

Replays run under the active observability registry: each algorithm gets
a ``locality:<alg>`` span with one child span per phase, and the
per-region counters land as ``memsim.<alg>.region.<name>.<level>.*`` —
so a locality run inside ``use_registry()`` nests into the same artifact
as the counting spans.

This module deliberately lives outside ``repro.obs.__init__``'s eager
imports: it depends on :mod:`repro.memsim`, which itself imports the
registry, and keeping it import-on-demand avoids the cycle.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core import build_lotus_graph
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    AttributedStats,
    MachineSpec,
    MemoryHierarchy,
    forward_layout,
    forward_trace,
    lotus_phase1_trace,
    lotus_phase2_trace,
    lotus_phase3_trace,
    reuse_distance_by_region,
)
from repro.memsim.trace import lotus_layout
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "LOCALITY_SCHEMA_VERSION",
    "DEFAULT_REUSE_LIMIT",
    "DEFAULT_HIT_CAPACITIES",
    "build_locality_report",
    "render_locality_table",
]

LOCALITY_SCHEMA_VERSION = 1

# Reuse-distance profiling is O(N log N) pure Python; the report uses the
# first DEFAULT_REUSE_LIMIT accesses of each algorithm's trace (plenty to
# pin the percentiles) unless the caller asks for more.
DEFAULT_REUSE_LIMIT = 200_000

# LRU capacities (in cache lines) reported on each region's hit curve.
DEFAULT_HIT_CAPACITIES = (64, 256, 1024, 4096)

_SHARE_LEVELS = ("l1", "l2", "llc", "dtlb")

# LOTUS phase spans reuse the counting pipeline's names (Figure 6).
_LOTUS_PHASES = ("hhh+hhn", "hnn", "nnn")


def _percentile_value(profile, q: float) -> float | None:
    """JSON-safe reuse-distance percentile (``None`` = cold / first touch)."""
    value = profile.distance_percentile(q)
    return None if math.isinf(value) else value


def _algorithm_traces(graph, algorithm: str):
    """(layout, ordered (phase, trace) pairs) for one algorithm."""
    if algorithm == "forward":
        oriented = apply_degree_ordering(graph)[0].orient_lower()
        layout = forward_layout(oriented)
        return layout, (("count", forward_trace(oriented, layout)),)
    if algorithm == "lotus":
        lotus = build_lotus_graph(graph)
        layout = lotus_layout(lotus)
        phases = (
            lotus_phase1_trace(lotus, layout),
            lotus_phase2_trace(lotus, layout),
            lotus_phase3_trace(lotus, layout),
        )
        return layout, tuple(zip(_LOTUS_PHASES, phases))
    raise ValueError(f"unknown algorithm {algorithm!r}; one of ('forward', 'lotus')")


def build_locality_report(
    graph,
    machine: MachineSpec,
    *,
    dataset: str | None = None,
    algorithms: tuple[str, ...] = ("forward", "lotus"),
    reuse_limit: int = DEFAULT_REUSE_LIMIT,
    reuse_max_distance: int = 4096,
    hit_capacities: tuple[int, ...] = DEFAULT_HIT_CAPACITIES,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Per-region attribution report for one dataset × machine.

    For every algorithm: replays the per-phase traces through one warm
    hierarchy in attributed mode, then profiles reuse distances per
    region over the first ``reuse_limit`` accesses.  The per-region
    counts of each algorithm sum exactly to its unattributed
    :class:`~repro.memsim.hierarchy.HierarchyStats` totals.
    """
    registry = registry if registry is not None else get_registry()
    report_algorithms: dict[str, Any] = {}
    for algorithm in algorithms:
        layout, phases = _algorithm_traces(graph, algorithm)
        classifier = layout.classifier(machine.line_bytes, machine.page_bytes)
        hierarchy = MemoryHierarchy(machine)
        per_phase: dict[str, AttributedStats] = {}
        combined = AttributedStats({})
        with registry.span(f"locality:{algorithm}", machine=machine.name):
            for phase_name, trace in phases:
                with registry.span(phase_name):
                    attributed = hierarchy.access_lines_attributed(trace, classifier)
                    attributed.export_metrics(registry, prefix=f"memsim.{algorithm}")
                per_phase[phase_name] = attributed
                combined = combined + attributed
        full_trace = (
            np.concatenate([trace for _, trace in phases])
            if len(phases) > 1
            else phases[0][1]
        )
        reuse_trace = full_trace[: max(int(reuse_limit), 0)]
        profiles = reuse_distance_by_region(
            reuse_trace,
            classifier.classify_lines(reuse_trace),
            classifier.names,
            max_distance=reuse_max_distance,
        )
        shares = {level: combined.miss_shares(level) for level in _SHARE_LEVELS}
        regions: dict[str, Any] = {}
        for name, stats in combined.regions.items():
            profile = profiles.per_region[name]
            regions[name] = {
                "counts": stats.to_dict(),
                "shares": {level: shares[level][name] for level in _SHARE_LEVELS},
                "reuse": {
                    "total": profile.total,
                    "cold": profile.cold,
                    "p50": _percentile_value(profile, 0.50),
                    "p90": _percentile_value(profile, 0.90),
                    "p99": _percentile_value(profile, 0.99),
                    "lru_hit_rates": {
                        str(c): profile.hit_rate(int(c)) for c in hit_capacities
                    },
                },
            }
        report_algorithms[algorithm] = {
            "totals": combined.totals().to_dict(),
            "regions": regions,
            "phases": {
                phase: {
                    name: {
                        "llc_misses": stats.llc_misses,
                        "dtlb_misses": stats.dtlb_misses,
                    }
                    for name, stats in attributed.regions.items()
                }
                for phase, attributed in per_phase.items()
            },
        }
    return {
        "schema": LOCALITY_SCHEMA_VERSION,
        "meta": {
            "dataset": dataset,
            "machine": machine.name,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "reuse_limit": int(reuse_limit),
            "reuse_max_distance": int(reuse_max_distance),
        },
        "algorithms": report_algorithms,
    }


def _fmt_pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def _fmt_distance(value: float | None) -> str:
    return "cold" if value is None else f"{value:.0f}"


def render_locality_table(report: dict[str, Any]) -> str:
    """Aligned-text projection: dataset × algorithm × region rows."""
    meta = report["meta"]
    header = (
        f"== locality attribution: {meta.get('dataset') or '<graph>'} "
        f"[{meta['machine']}] =="
    )
    columns = (
        "algorithm", "region", "accesses",
        "L1 miss", "L2 miss", "LLC miss", "DTLB miss",
        "reuse p50", "p90", "p99",
    )
    rows: list[tuple[str, ...]] = []
    for algorithm, data in report["algorithms"].items():
        for name, region in data["regions"].items():
            counts, shares, reuse = region["counts"], region["shares"], region["reuse"]
            if counts["accesses"] == 0 and counts["dtlb_accesses"] == 0:
                continue
            rows.append((
                algorithm,
                name,
                f"{counts['accesses']:,}",
                _fmt_pct(shares["l1"]),
                _fmt_pct(shares["l2"]),
                _fmt_pct(shares["llc"]),
                _fmt_pct(shares["dtlb"]),
                _fmt_distance(reuse["p50"]),
                _fmt_distance(reuse["p90"]),
                _fmt_distance(reuse["p99"]),
            ))
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rows)) if rows else len(columns[i])
        for i in range(len(columns))
    ]
    def fmt(cells: tuple[str, ...]) -> str:
        # left-align the two label columns, right-align the numbers
        parts = [
            cells[i].ljust(widths[i]) if i < 2 else cells[i].rjust(widths[i])
            for i in range(len(cells))
        ]
        return "  ".join(parts).rstrip()
    lines = [header, fmt(columns), fmt(tuple("-" * w for w in widths))]
    lines += [fmt(r) for r in rows]
    lines.append(
        "miss columns are each region's share of that level's total misses; "
        "reuse percentiles are LRU stack distances in cache lines"
    )
    return "\n".join(lines)
