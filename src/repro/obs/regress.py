"""Benchmark-trajectory regression gate.

Compares two artifacts produced by :mod:`repro.obs.trajectory`
(``scripts/bench_trajectory.py``) metric by metric and exits non-zero
when any tracked metric *regresses* beyond its tolerance:

* ``*.triangles`` — exact: any change is a correctness regression;
* miss / access totals — relative: the candidate may not exceed the
  baseline by more than ``--rel-tol`` (improvements always pass);
* ``*_share`` attribution shares — absolute drift beyond
  ``--share-tol`` in either direction (the locality *attribution* is a
  claim of its own: misses silently migrating between regions is a
  regression even when totals hold);
* ``*.overhead_ratio`` — ceiling: the telemetry self-measurement
  (:func:`repro.obs.trajectory.build_telemetry_overhead_measurements`)
  must stay under an *absolute* ceiling (``--overhead-ceiling``,
  default 1.25 to absorb shared-CI noise; the design target is <= 1.05
  on EU15).  ``profiler.*`` ratios (the sampling profiler measuring
  itself) get a tighter ceiling (``--profiler-ceiling``, default
  1.10).  Unlike every other kind, a ceiling metric is gated even
  when it only appears in the candidate — instrumentation that slows
  the pipeline down must not pass just because the baseline predates
  the measurement;
* a tracked metric missing from the candidate is a regression (the
  suite silently shrank); candidate-only metrics are informational
  (except ceiling metrics, see above).

The baseline may come from a committed ``BENCH_*.json`` file or — with
``--against-run`` — from any entry of the run ledger
(:mod:`repro.obs.ledger`), so the perf gate can compare a candidate
against any recorded run, not just the single committed baseline.

Usage::

    python -m repro.obs.regress BASELINE [CANDIDATE] [--latest DIR]
    python -m repro.obs.regress --against-run latest~1 [CANDIDATE] [--latest DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_SHARE_TOL",
    "DEFAULT_OVERHEAD_CEILING",
    "DEFAULT_PROFILER_CEILING",
    "MetricDelta",
    "artifact_from_record",
    "load_artifact",
    "compare_artifacts",
    "regressions",
    "format_deltas",
    "main",
]

DEFAULT_REL_TOL = 0.02
DEFAULT_SHARE_TOL = 0.02
# Absolute gate for telemetry.*.overhead_ratio: candidate telemetry may
# slow a count down by at most this factor.  The design target is 1.05
# (<= 5% with every exporter live, docs/observability.md); the gate adds
# headroom for noisy shared CI runners.
DEFAULT_OVERHEAD_CEILING = 1.25
# Absolute gate for profiler.*.overhead_ratio: the sampling profiler's
# whole point is negligible cost, so its ceiling is deliberately tighter
# than the telemetry one — <= 10% at the default 10 ms interval.
DEFAULT_PROFILER_CEILING = 1.10


@dataclass(frozen=True)
class MetricDelta:
    """Outcome of comparing one metric across the two artifacts."""

    key: str
    baseline: float | None
    candidate: float | None
    kind: str  # "exact" | "count" | "share" | "floor" | "ceiling" | "timing"
    #           | "missing" | "new"
    regressed: bool
    reason: str = ""


def load_artifact(path: str | pathlib.Path) -> dict[str, Any]:
    artifact = json.loads(pathlib.Path(path).read_text())
    if artifact.get("kind") != "bench-trajectory":
        raise ValueError(f"{path}: not a bench-trajectory artifact")
    if artifact.get("schema") != 1:
        raise ValueError(f"{path}: unsupported schema {artifact.get('schema')!r}")
    if not isinstance(artifact.get("metrics"), dict):
        raise ValueError(f"{path}: missing metrics map")
    return artifact


def _metric_kind(key: str) -> str:
    if key.endswith(".triangles"):
        return "exact"
    if key.endswith(".overhead_ratio"):
        return "ceiling"
    if key.startswith("serve."):
        # serving latencies / hit rates vary with machine load; they are
        # tracked for trend lines, never gated
        return "timing"
    if key.endswith("_share"):
        return "share"
    if key.endswith("_speedup"):
        return "floor"
    return "count"


def artifact_from_record(record: dict[str, Any]) -> dict[str, Any]:
    """Baseline view of a ledger run record.

    A record written by ``scripts/bench_trajectory.py`` embeds the full
    bench-trajectory artifact — use it verbatim.  Any other record is
    projected onto the flat metric space via
    :func:`repro.obs.ledger.flatten_record_metrics` (comparable against
    another record's projection, not against a trajectory artifact).
    """
    artifact = record.get("artifact")
    if isinstance(artifact, dict) and isinstance(artifact.get("metrics"), dict):
        return artifact
    from repro.obs.ledger import flatten_record_metrics

    return {
        "kind": "run-record-projection",
        "generated": record.get("created"),
        "metrics": flatten_record_metrics(record),
    }


def compare_artifacts(
    baseline: dict[str, Any],
    candidate: dict[str, Any],
    rel_tol: float = DEFAULT_REL_TOL,
    share_tol: float = DEFAULT_SHARE_TOL,
    kind_fn: Callable[[str], str] = _metric_kind,
    overhead_ceiling: float = DEFAULT_OVERHEAD_CEILING,
    profiler_ceiling: float = DEFAULT_PROFILER_CEILING,
) -> list[MetricDelta]:
    """Per-metric comparison; see the module docstring for the rules.

    ``kind_fn`` maps a metric key to its tolerance class (``exact`` /
    ``share`` / ``count`` / ``ceiling`` / ``timing``); the default is
    the trajectory map, and the run ledger passes its own
    (:func:`repro.obs.ledger.ledger_metric_kind`).  ``timing`` metrics
    are reported but never regress — wall-clock is not gated.
    ``ceiling`` metrics gate against an absolute ceiling even when they
    are candidate-only: ``overhead_ceiling`` for telemetry ratios,
    ``profiler_ceiling`` (tighter) for ``profiler.*`` keys.
    """

    def ceiling_for(key: str) -> float:
        return profiler_ceiling if key.startswith("profiler.") else overhead_ceiling

    base_metrics: dict[str, float] = baseline["metrics"]
    cand_metrics: dict[str, float] = candidate["metrics"]
    deltas: list[MetricDelta] = []
    for key, base_value in base_metrics.items():
        if key not in cand_metrics:
            deltas.append(
                MetricDelta(key, base_value, None, "missing", True,
                            "tracked metric missing from candidate")
            )
            continue
        cand_value = cand_metrics[key]
        kind = kind_fn(key)
        if kind == "exact":
            regressed = cand_value != base_value
            reason = "exact-match metric changed" if regressed else ""
        elif kind == "share":
            drift = abs(cand_value - base_value)
            regressed = drift > share_tol
            reason = f"attribution drift {drift:.4f} > {share_tol}" if regressed else ""
        elif kind == "timing":
            regressed = False
            reason = ""
        elif kind == "ceiling":
            ceiling = ceiling_for(key)
            regressed = cand_value > ceiling
            reason = (
                f"{cand_value:.4f} > absolute ceiling {ceiling}"
                if regressed
                else ""
            )
        elif kind == "floor":
            # bigger-is-better (speedups): regress when the candidate drops
            limit = base_value * (1.0 - rel_tol)
            regressed = cand_value < limit
            reason = (
                f"{cand_value:,.3f} < {base_value:,.3f} (-{rel_tol:.0%} tolerance)"
                if regressed
                else ""
            )
        else:
            limit = base_value * (1.0 + rel_tol)
            regressed = cand_value > limit
            reason = (
                f"{cand_value:,.0f} > {base_value:,.0f} (+{rel_tol:.0%} tolerance)"
                if regressed
                else ""
            )
        deltas.append(MetricDelta(key, base_value, cand_value, kind, regressed, reason))
    for key, cand_value in cand_metrics.items():
        if key not in base_metrics:
            if kind_fn(key) == "ceiling":
                # absolute gates apply even without a baseline value:
                # new instrumentation must prove its own overhead
                ceiling = ceiling_for(key)
                regressed = cand_value > ceiling
                reason = (
                    f"{cand_value:.4f} > absolute ceiling {ceiling}"
                    if regressed
                    else ""
                )
                deltas.append(
                    MetricDelta(key, None, cand_value, "ceiling", regressed, reason)
                )
                continue
            deltas.append(MetricDelta(key, None, cand_value, "new", False,
                                      "not in baseline (informational)"))
    return deltas


def regressions(deltas: list[MetricDelta]) -> list[MetricDelta]:
    return [d for d in deltas if d.regressed]


def format_deltas(deltas: list[MetricDelta], verbose: bool = False) -> str:
    """Human-readable summary; regressions always listed, rest behind -v."""
    bad = regressions(deltas)
    lines = [
        f"compared {sum(d.kind != 'new' for d in deltas)} tracked metrics: "
        f"{len(bad)} regression(s)"
    ]
    for d in bad:
        lines.append(
            f"  REGRESSION {d.key}: {d.baseline} -> {d.candidate} ({d.reason})"
        )
    if verbose:
        for d in deltas:
            if not d.regressed and d.kind != "new":
                lines.append(f"  ok {d.key}: {d.baseline} -> {d.candidate}")
        for d in deltas:
            if d.kind == "new":
                lines.append(f"  new {d.key}: {d.candidate}")
    return "\n".join(lines)


def _latest_artifact(directory: pathlib.Path, exclude: pathlib.Path) -> pathlib.Path:
    candidates = sorted(
        p for p in directory.glob("BENCH_*.json")
        if p.resolve() != exclude.resolve() and p.name != "BENCH_baseline.json"
    )
    if not candidates:
        raise SystemExit(f"no BENCH_*.json candidates under {directory}")
    return candidates[-1]


def _load_artifact_or_record(path: pathlib.Path) -> dict[str, Any]:
    """Load a comparison side: a BENCH artifact or a saved run record."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("kind") == "run-record":
        return artifact_from_record(data)
    return load_artifact(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.regress",
        description="compare two bench-trajectory artifacts and gate regressions",
    )
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline BENCH_*.json "
                             "(or use --against-run)")
    parser.add_argument("candidate", nargs="?",
                        help="candidate artifact (or use --latest)")
    parser.add_argument("--against-run", metavar="REF",
                        help="use ledger run REF (run id / prefix / latest~N) "
                             "as the baseline instead of a BENCH file")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="ledger directory for --against-run "
                             "(default: runs/)")
    parser.add_argument("--latest", metavar="DIR",
                        help="pick the newest BENCH_<date>.json in DIR as candidate")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help="relative tolerance for miss/access totals")
    parser.add_argument("--share-tol", type=float, default=DEFAULT_SHARE_TOL,
                        help="absolute tolerance for attribution shares")
    parser.add_argument("--overhead-ceiling", type=float,
                        default=DEFAULT_OVERHEAD_CEILING,
                        help="absolute ceiling for telemetry overhead "
                             "ratios (default: %(default)s)")
    parser.add_argument("--profiler-ceiling", type=float,
                        default=DEFAULT_PROFILER_CEILING,
                        help="absolute ceiling for profiler.* overhead "
                             "ratios (default: %(default)s)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also list non-regressed metrics")
    args = parser.parse_args(argv)
    if args.against_run:
        from repro.obs.ledger import DEFAULT_LEDGER_DIR, Ledger, LedgerError

        try:
            record = Ledger(args.ledger or DEFAULT_LEDGER_DIR).get(args.against_run)
        except LedgerError as exc:
            parser.error(str(exc))
        baseline = artifact_from_record(record)
        baseline_desc = f"ledger run {record['run_id']}"
        baseline_path = pathlib.Path(args.baseline) if args.baseline else None
        if args.baseline and not args.candidate:
            # `regress --against-run REF CANDIDATE` binds the lone
            # positional to the candidate slot
            args.candidate, args.baseline = args.baseline, None
            baseline_path = None
    elif args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        baseline = _load_artifact_or_record(baseline_path)
        baseline_desc = str(baseline_path)
    else:
        parser.error("provide BASELINE or --against-run REF")
    if args.candidate:
        candidate_path = pathlib.Path(args.candidate)
    elif args.latest:
        candidate_path = _latest_artifact(
            pathlib.Path(args.latest), baseline_path or pathlib.Path(os.devnull)
        )
    else:
        parser.error("provide CANDIDATE or --latest DIR")
    candidate = _load_artifact_or_record(candidate_path)
    kind_fn = _metric_kind
    if "run-record-projection" in (baseline.get("kind"), candidate.get("kind")):
        from repro.obs.ledger import ledger_metric_kind

        kind_fn = ledger_metric_kind
    deltas = compare_artifacts(baseline, candidate, rel_tol=args.rel_tol,
                               share_tol=args.share_tol, kind_fn=kind_fn,
                               overhead_ceiling=args.overhead_ceiling,
                               profiler_ceiling=args.profiler_ceiling)
    print(f"baseline:  {baseline_desc} (generated {baseline.get('generated')})")
    print(f"candidate: {candidate_path} (generated {candidate.get('generated')})")
    print(format_deltas(deltas, verbose=args.verbose))
    return 1 if regressions(deltas) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
