"""Phase/span tracing: a nested tree of timed code regions.

A :class:`Span` is one timed region (``preprocess``, ``hhh+hhn``, one
parallel tile, ...) carrying wall time plus arbitrary numeric/text
attributes (op counts, bytes touched, triangle totals).  Spans nest:
entering a span while another is open on the same thread attaches it as
a child, which is how the end-to-end LOTUS run produces the
``lotus -> preprocess / hhh+hhn / hnn / nnn`` tree that mirrors the
paper's Figure 6 breakdown.

Every span carries a stable identity for cross-process trace
propagation (:mod:`repro.obs.telemetry`):

- ``span_id``   -- 16-hex random id, assigned at construction;
- ``trace_id``  -- inherited from the parent at enter time (a root span
  starts a fresh trace);
- ``parent_id`` -- the parent's ``span_id`` (``None`` for roots);
- ``start``     -- absolute :func:`clock` timestamp at enter.  Because
  :func:`repro.util.timer.clock` is CLOCK_MONOTONIC on Linux, starts
  recorded in forked/spawned worker processes are directly comparable
  with the parent's, which is what lets the Chrome-trace exporter lay
  worker spans out on a real shared timeline.

Spans are created through :meth:`repro.obs.registry.MetricsRegistry.span`;
this module only defines the data model and the context manager.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

__all__ = [
    "Span",
    "SpanContext",
    "NULL_SPAN",
    "clock",
    "thread_spans",
    "add_span_observer",
    "remove_span_observer",
]

# The single wall-clock source of the repository lives in
# repro.util.timer; spans delegate to it so span durations and
# PhaseTimer phases are always directly comparable (docs/api.md).
from repro.util.timer import clock

# telemetry imports only the standard library at module level, so this
# does not create an import cycle even though telemetry lazily imports
# Span inside its stitching helpers.
from repro.obs.telemetry import get_bus, new_id


class Span:
    """One timed region of the pipeline with attributes and children.

    ``attrs`` holds op counts / bytes / labels; ``elapsed`` is wall
    seconds (filled when the owning context exits).  ``enabled`` lets
    instrumentation skip computing expensive attributes when tracing is
    off (the null span reports ``False``).
    """

    __slots__ = (
        "name", "elapsed", "attrs", "children",
        "trace_id", "span_id", "parent_id", "start",
    )

    enabled = True

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list["Span"] = []
        self.trace_id: str | None = None
        self.span_id: str = new_id()
        self.parent_id: str | None = None
        self.start: float = 0.0

    # -- attribute recording ----------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add(self, key: str, amount: int | float = 1) -> None:
        """Accumulate a numeric attribute (creates it at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # -- tree queries ------------------------------------------------------
    def iter_spans(self) -> Iterator["Span"]:
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in pre-order, or ``None``."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.iter_spans() if s.name == name]

    def total_attr(self, key: str) -> int | float:
        """Sum of a numeric attribute over this span and all descendants."""
        return sum(
            s.attrs[key]
            for s in self.iter_spans()
            if isinstance(s.attrs.get(key), (int, float))
        )

    def self_time(self) -> float:
        """Elapsed time not covered by direct children, clamped at 0.

        Children can legitimately sum past the parent's elapsed: stitched
        worker spans (:func:`repro.obs.telemetry.stitch_worker_payloads`)
        ran *concurrently* on their own processes' monotonic clocks, so a
        ``phase1-processes`` span with 4 workers carries ~4x its own wall
        time in children.  A negative "self time" is meaningless — clamp.
        """
        return max(0.0, self.elapsed - sum(c.elapsed for c in self.children))

    # -- (de)serialisation -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "elapsed": self.elapsed}
        out["span_id"] = self.span_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.start:
            out["start"] = self.start
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("attrs"))
        span.elapsed = float(data.get("elapsed", 0.0))
        if "span_id" in data:
            span.span_id = str(data["span_id"])
        span.trace_id = data.get("trace_id")
        span.parent_id = data.get("parent_id")
        span.start = float(data.get("start", 0.0))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, elapsed={self.elapsed:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan(Span):
    """Shared do-nothing span returned while observability is disabled.

    Mutators are overridden to no-ops so a single instance can be handed
    to every ``with ... as span`` site without accumulating state.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, amount: int | float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# cross-thread span registry + span observers
# ---------------------------------------------------------------------------
#
# The per-registry span stack is thread-local, which is exactly what makes
# it invisible to *other* threads — and the sampling profiler
# (:mod:`repro.obs.profiler`) runs on its own thread and must answer
# "which span is open on thread T right now?" for every T returned by
# ``sys._current_frames()``.  This module therefore keeps a process-wide
# map of thread ident -> stack of open spans, maintained by
# :class:`SpanContext` on enter/exit.  Reads happen lock-free on a
# snapshot (CPython dict/list ops are atomic enough for a sampler that
# tolerates one-interval staleness); the two writes per span are a dict
# lookup and a list append/pop, far below span-open cost.

_thread_spans: dict[int, list["Span"]] = {}

# Observers are notified on every real span open/close (memory
# accounting hooks its tracemalloc snapshots in here).  The common case
# is "no observers", paying one falsy check per span boundary.
_span_observers: list[Any] = []


def thread_spans() -> dict[int, "Span"]:
    """Snapshot of the *innermost* open span per thread ident.

    Taken by the sampling profiler to attribute stack samples; safe to
    call from any thread.  Threads with no open span are absent.
    """
    out: dict[int, Span] = {}
    for ident, stack in list(_thread_spans.items()):
        if stack:
            out[ident] = stack[-1]
    return out


def add_span_observer(observer: Any) -> Any:
    """Register an object with ``span_opened(span)`` / ``span_closed(span)``
    callbacks invoked on every enabled span boundary; returns it."""
    _span_observers.append(observer)
    return observer


def remove_span_observer(observer: Any) -> None:
    if observer in _span_observers:
        _span_observers.remove(observer)


def _note_span_opened(span: "Span") -> None:
    ident = threading.get_ident()
    stack = _thread_spans.get(ident)
    if stack is None:
        stack = _thread_spans[ident] = []
    stack.append(span)
    for observer in list(_span_observers):
        try:
            observer.span_opened(span)
        except Exception:
            pass  # observers must never break the pipeline they observe


def _note_span_closed(span: "Span") -> None:
    ident = threading.get_ident()
    stack = _thread_spans.get(ident)
    if stack:
        # normally the top of the stack; scan defensively in case inner
        # contexts were abandoned (mirrors MetricsRegistry._pop_span)
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx] is span:
                del stack[idx:]
                break
        if not stack:
            _thread_spans.pop(ident, None)
    for observer in list(_span_observers):
        try:
            observer.span_closed(span)
        except Exception:
            pass


class SpanContext:
    """Context manager that opens a :class:`Span` inside a registry.

    The parent is the span currently open on this thread (or an explicit
    ``parent`` handed across threads, as the parallel executor does); on
    exit the finished span is attached to the parent's children, or to
    the registry's roots when there is no parent.

    Enter/exit also publish ``span_open`` / ``span_close`` events to the
    active :class:`~repro.obs.telemetry.TelemetryBus` (a no-op unless an
    exporter session is running).
    """

    __slots__ = ("_registry", "_span", "_parent", "_start")

    def __init__(
        self,
        registry: "Any",
        name: str,
        parent: Span | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self._registry = registry
        self._span = Span(name, attrs)
        self._parent = parent
        self._start = 0.0

    def __enter__(self) -> Span:
        if self._parent is None:
            self._parent = self._registry.current_span()
        span = self._span
        parent = self._parent
        if parent is not None and parent.enabled:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        if span.trace_id is None:
            span.trace_id = new_id()
        self._registry._push_span(span)
        _note_span_opened(span)
        self._start = span.start = clock()
        bus = get_bus()
        if bus.enabled:
            bus.emit({
                "event": "span_open",
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "ts": span.start,
            })
        return span

    def __exit__(self, *exc: object) -> None:
        # runs on exceptions too (the `with` protocol), so the span stack
        # always unwinds and no open span leaks into the next run's tree
        span = self._span
        span.elapsed = clock() - self._start
        _note_span_closed(span)
        self._registry._pop_span(span)
        self._registry._attach_span(span, self._parent)
        bus = get_bus()
        if bus.enabled:
            bus.emit({
                "event": "span_close",
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "elapsed": span.elapsed,
                "attrs": dict(span.attrs),
            })


class NullSpanContext:
    """No-op stand-in for :class:`SpanContext` (disabled mode)."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN_CONTEXT = NullSpanContext()
