"""Export :class:`~repro.obs.profiler.Profile` aggregates for humans.

Three renderers over the same data:

* :func:`to_collapsed` — collapsed-stack ("folded") text, one
  ``frame;frame;frame COUNT`` line per distinct stack, directly
  consumable by Brendan Gregg's ``flamegraph.pl`` and most flamegraph
  viewers;
* :func:`to_speedscope` — a speedscope JSON document
  (https://www.speedscope.app) with one sampled profile, weights in
  seconds (``count * interval``);
* :func:`render_top_table` — the ``repro.cli profile --top N`` terminal
  table: hottest frames by self weight with span attribution.

Span attribution is woven into the stack exports as synthetic
``span:<name>`` frames prepended to each sample.  Pass a
:func:`span_path_index` built from the post-run span tree and the
prefix becomes the span's full ancestor path — which is what makes a
``--backend processes`` flamegraph nest worker frames under
``span:lotus;span:hhh+hhn;span:phase1-processes;span:worker``: the
worker-side span ids survive stitching
(:func:`repro.obs.telemetry.stitch_worker_payloads` re-parents but does
not re-identify), so the parent tree resolves them.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.profiler import Profile

__all__ = [
    "span_path_index",
    "to_collapsed",
    "write_collapsed",
    "to_speedscope",
    "write_speedscope",
    "render_top_table",
]


def span_path_index(roots: Iterable[Any]) -> dict[str, tuple[str, ...]]:
    """``span_id -> (root name, ..., span name)`` over whole span trees.

    Feed it ``registry.roots`` after a profiled run; the profiler's
    per-sample ``span_id`` then resolves to the span's full ancestry,
    including worker-side spans stitched under ``phase1``.
    """
    index: dict[str, tuple[str, ...]] = {}

    def walk(span: Any, prefix: tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        index[span.span_id] = path
        for child in span.children:
            walk(child, path)

    for root in roots:
        walk(root, ())
    return index


def _span_prefix(
    span_id: str,
    span_name: str,
    span_index: dict[str, tuple[str, ...]] | None,
) -> tuple[str, ...]:
    if span_index is not None and span_id in span_index:
        return tuple(f"span:{name}" for name in span_index[span_id])
    if span_name and span_name != "(no span)":
        return (f"span:{span_name}",)
    return ()


def to_collapsed(
    profile: Profile,
    span_index: dict[str, tuple[str, ...]] | None = None,
) -> str:
    """Collapsed-stack text (``flamegraph.pl`` input), heaviest first.

    Identical (span path, stack) pairs are merged — distinct spans with
    the same name collapse together once resolved through the index.
    """
    merged: dict[tuple[str, ...], int] = {}
    for (span_id, span_name, frames), count in profile.stacks.items():
        line = _span_prefix(span_id, span_name, span_index) + frames
        if not line:
            line = ("(idle)",)
        merged[line] = merged.get(line, 0) + count
    rows = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
    return "".join(f"{';'.join(frames)} {count}\n" for frames, count in rows)


def write_collapsed(
    profile: Profile,
    path: str,
    span_index: dict[str, tuple[str, ...]] | None = None,
) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_collapsed(profile, span_index))
    return path


def to_speedscope(
    profile: Profile,
    name: str = "repro profile",
    span_index: dict[str, tuple[str, ...]] | None = None,
) -> dict[str, Any]:
    """A speedscope JSON document (``"type": "sampled"``).

    One sample per distinct (span path, stack); the weight is the stack's
    sampled wall time in seconds (``count * interval_s``), so the
    flamegraph's time axis matches the span tree's wall clock to within
    sampling error.
    """
    frame_ids: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def fid(label: str) -> int:
        idx = frame_ids.get(label)
        if idx is None:
            idx = frame_ids[label] = len(frames)
            frames.append({"name": label})
        return idx

    samples: list[list[int]] = []
    weights: list[float] = []
    rows = sorted(profile.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    for (span_id, span_name, stack), count in rows:
        line = _span_prefix(span_id, span_name, span_index) + stack
        if not line:
            line = ("(idle)",)
        samples.append([fid(label) for label in line])
        weights.append(count * profile.interval_s)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.profexport",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": round(sum(weights), 6),
                "samples": samples,
                "weights": [round(w, 6) for w in weights],
            }
        ],
    }


def write_speedscope(
    profile: Profile,
    path: str,
    name: str = "repro profile",
    span_index: dict[str, tuple[str, ...]] | None = None,
) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_speedscope(profile, name=name, span_index=span_index), fh)
        fh.write("\n")
    return path


def render_top_table(profile: Profile, n: int = 10) -> str:
    """The ``repro.cli profile --top N`` table.

    Columns: self samples, self share, cumulative samples, the frame,
    and the span names its self samples were attributed to (heaviest
    first, ``xN`` counts when split across spans).
    """
    rows = profile.top_frames(n)
    header = (
        f"profile: {profile.samples} samples @ {profile.interval_s * 1000:g} ms"
        f" ({profile.duration_s:.2f}s window, {profile.dropped} dropped,"
        f" {len(profile.stacks)} stacks)"
    )
    if not rows:
        return header + "\n  (no samples)\n"
    lines = [header, f"{'SELF':>6} {'SELF%':>6} {'CUM':>6}  FRAME  [SPANS]"]
    for row in rows:
        spans = ", ".join(
            f"{sname or '(no span)'} x{cnt}" for sname, cnt in row["spans"].items()
        )
        lines.append(
            f"{row['self']:>6} {row['self_share'] * 100:>5.1f}% {row['cum']:>6}"
            f"  {row['frame']}  [{spans}]"
        )
    return "\n".join(lines) + "\n"
