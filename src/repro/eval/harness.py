"""Experiment plumbing: result records, table rendering, persistence."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ExperimentResult",
    "format_table",
    "record_experiment_run",
    "save_results",
]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` is a list of dicts (one per table row / figure series point);
    ``paper_reference`` records the headline numbers the paper reports so
    EXPERIMENTS.md can juxtapose them.
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    paper_reference: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "paper_reference": self.paper_reference,
            "notes": self.notes,
        }

    def render(self) -> str:
        """Human-readable rendering: header, table, paper reference."""
        out = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            out.append(format_table(self.rows))
        if self.paper_reference:
            out.append("paper reference: " + json.dumps(self.paper_reference))
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render a list of dicts as an aligned ASCII table (union of keys)."""
    if not rows:
        return "(empty)"
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    cells = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for c in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(c, widths)))
    return "\n".join(lines)


def save_results(results: list[ExperimentResult], path: str | os.PathLike) -> None:
    """Dump experiment results as JSON for EXPERIMENTS.md regeneration."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump([r.to_dict() for r in results], fh, indent=2)


def record_experiment_run(
    result: ExperimentResult,
    registry: Any = None,
    ledger_dir: str | os.PathLike | None = None,
    extra_config: dict[str, Any] | None = None,
) -> str:
    """Append one experiment run to the run ledger; returns the run id.

    The provenance-stamped record carries the experiment id/title as
    config (so identical reruns share a ``config_hash``) plus the full
    metric snapshot and span trees of ``registry`` — the benchmark
    harness calls this for every regenerated table/figure so any two
    historical runs can be diffed with ``repro.cli runs diff``.
    """
    from repro.obs.ledger import DEFAULT_LEDGER_DIR, Ledger, build_run_record

    config: dict[str, Any] = {
        "command": "experiment",
        "experiment_id": result.experiment_id,
    }
    if extra_config:
        config.update(extra_config)
    record = build_run_record(
        registry,
        command=f"experiment {result.experiment_id}",
        config=config,
        meta={
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": len(result.rows),
        },
    )
    return Ledger(ledger_dir or DEFAULT_LEDGER_DIR).append(record)
