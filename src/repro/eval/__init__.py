"""Evaluation harness: one entry point per paper table/figure.

``repro.eval.experiments`` regenerates every table and figure of the
paper's evaluation section on the synthetic dataset suite;
``repro.eval.tables`` renders the results next to the paper's reported
numbers.  The benchmark scripts under ``benchmarks/`` are thin wrappers
around these functions.
"""

from repro.eval.harness import ExperimentResult, format_table, save_results
from repro.eval import experiments

__all__ = ["ExperimentResult", "format_table", "save_results", "experiments"]
