"""Property-based differential fuzzing of every triangle counter.

The property is singular and total: **every algorithm, kernel and
execution backend returns exactly the dense-oracle count on every
graph**.  The harness generates seeded random cases across structurally
diverse families (skewed Chung-Lu and RMAT graphs next to adversarial
shapes — stars, cliques, paths, empty and single-vertex graphs), runs
the full counter matrix against ``trace(A^3) / 6``, and on any mismatch
minimises the case to a small witness by greedy edge deletion before
reporting it.

Everything is dependency-free (NumPy only — no hypothesis) and fully
deterministic per seed: ``python -m repro.eval.fuzz --cases 200 --seed 7``
re-runs the exact CI corpus.  See ``docs/testing.md`` for the taxonomy
and reproduction workflow.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "FuzzCase",
    "CASE_KINDS",
    "random_case",
    "dense_oracle",
    "fuzz_counters",
    "check_case",
    "minimize_case",
    "format_case",
    "run_fuzz",
]

CASE_KINDS = (
    "empty",
    "single-vertex",
    "path",
    "star",
    "clique",
    "chung-lu",
    "rmat",
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: an edge list plus its provenance."""

    seed: int
    kind: str
    num_vertices: int
    edges: np.ndarray  # (m, 2) int64, possibly with duplicates/self-loops

    def graph(self) -> CSRGraph:
        return from_edges(self.edges, num_vertices=self.num_vertices)


def random_case(seed: int) -> FuzzCase:
    """Deterministically generate one case from ``seed``.

    Random families dominate (they find counting bugs); degenerate
    shapes keep a fixed share of the corpus (they find edge-case bugs:
    empty intersections, single-element rows, vertex-count-0 paths).
    """
    rng = np.random.default_rng(seed)
    kind = CASE_KINDS[int(rng.integers(len(CASE_KINDS)))]
    if kind == "empty":
        n = int(rng.integers(0, 4))
        return FuzzCase(seed, kind, n, np.zeros((0, 2), dtype=np.int64))
    if kind == "single-vertex":
        return FuzzCase(seed, kind, 1, np.zeros((0, 2), dtype=np.int64))
    if kind == "path":
        n = int(rng.integers(2, 24))
        v = np.arange(n, dtype=np.int64)
        edges = np.column_stack([v[:-1], v[1:]])
        return FuzzCase(seed, kind, n, edges)
    if kind == "star":
        n = int(rng.integers(2, 40))
        edges = np.column_stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
        )
        return FuzzCase(seed, kind, n, edges)
    if kind == "clique":
        n = int(rng.integers(2, 14))
        u, v = np.triu_indices(n, k=1)
        return FuzzCase(seed, kind, n, np.column_stack([u, v]).astype(np.int64))
    if kind == "chung-lu":
        n = int(rng.integers(4, 64))
        # skewed expected-degree sequence: a few heavy vertices
        w = rng.pareto(1.5, size=n) + 1.0
        w = w / w.sum()
        m = int(rng.integers(n, 4 * n))
        u = rng.choice(n, size=m, p=w)
        v = rng.choice(n, size=m, p=w)
        return FuzzCase(seed, kind, n, np.column_stack([u, v]).astype(np.int64))
    # rmat: recursive quadrant sampling — power-law with locality skew
    scale = int(rng.integers(3, 7))
    n = 1 << scale
    m = int(rng.integers(n, 3 * n))
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        quad = np.searchsorted(np.cumsum([0.57, 0.19, 0.19]), r)
        src = src * 2 + (quad >= 2)
        dst = dst * 2 + (quad % 2)
    return FuzzCase(seed, "rmat", n, np.column_stack([src, dst]))


def dense_oracle(graph: CSRGraph) -> int:
    """Reference count: ``trace(A^3) / 6`` on the dense adjacency."""
    n = graph.num_vertices
    if n == 0:
        return 0
    a = np.zeros((n, n), dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    a[src, graph.indices.astype(np.int64, copy=False)] = 1
    return int(np.einsum("ij,jk,ki->", a, a, a)) // 6


def _triangles(result) -> int:
    return int(result if isinstance(result, (int, np.integer)) else result.triangles)


def _forward_with_kernel(graph: CSRGraph, kernel_name: str) -> int:
    """Forward counting driven through one registered intersect kernel.

    The kernel is looked up in ``INTERSECT_KERNELS`` *per call*, so a
    monkeypatched (deliberately broken) kernel is exercised — the harness
    self-test relies on this.
    """
    from repro.tc.intersect import INTERSECT_KERNELS

    kernel = INTERSECT_KERNELS[kernel_name]
    oriented = graph.orient_lower()
    n = graph.num_vertices
    total = 0
    for v in range(n):
        row = oriented.neighbors(v).astype(np.int64, copy=False)
        for u in row:
            other = oriented.neighbors(int(u)).astype(np.int64, copy=False)
            if kernel_name == "bitmap":
                total += kernel(other, row, max(n, 1))
            else:
                total += kernel(other, row)
    return total


def fuzz_counters() -> dict[str, Callable[[CSRGraph], int]]:
    """The full counter matrix: algorithms × kernels × backends."""
    from repro.core import count_triangles_lotus
    from repro.core.adaptive import count_triangles_adaptive
    from repro.tc import (
        INTERSECT_KERNELS,
        count_triangles_block,
        count_triangles_edge_iterator,
        count_triangles_forward,
        count_triangles_forward_hashed,
        count_triangles_matrix,
        count_triangles_node_iterator,
        count_triangles_spgemm,
    )

    counters: dict[str, Callable[[CSRGraph], int]] = {
        "node-iterator": lambda g: _triangles(count_triangles_node_iterator(g)),
        "edge-iterator": lambda g: _triangles(count_triangles_edge_iterator(g)),
        "forward": lambda g: _triangles(count_triangles_forward(g)),
        "forward-hashed": lambda g: _triangles(count_triangles_forward_hashed(g)),
        "block": lambda g: _triangles(count_triangles_block(g)),
        "matrix": lambda g: _triangles(count_triangles_matrix(g)),
        "spgemm": lambda g: _triangles(count_triangles_spgemm(g)),
        "adaptive": lambda g: _triangles(count_triangles_adaptive(g)),
        "lotus": lambda g: _triangles(count_triangles_lotus(g)),
    }
    for name in INTERSECT_KERNELS:
        counters[f"forward-kernel:{name}"] = (
            lambda g, k=name: _forward_with_kernel(g, k)
        )
    # a quarter of the vertices as hubs gives the fuzz-sized graphs real
    # phase-1 work (the default hub heuristic rounds them down to 1 hub)
    from repro.core import LotusConfig

    def _lotus_backend(g: CSRGraph, backend: str) -> int:
        config = LotusConfig(hub_count=max(1, g.num_vertices // 4))
        return _triangles(
            count_triangles_lotus(g, config, backend=backend, workers=2)
        )

    for backend in ("threads", "processes"):
        counters[f"lotus-{backend}"] = lambda g, b=backend: _lotus_backend(g, b)
    return counters


def check_case(
    case: FuzzCase,
    counters: dict[str, Callable[[CSRGraph], int]] | None = None,
) -> list[str]:
    """Run the counter matrix on one case; returns mismatch descriptions."""
    counters = counters if counters is not None else fuzz_counters()
    graph = case.graph()
    expected = dense_oracle(graph)
    mismatches = []
    for name, fn in counters.items():
        try:
            got = fn(graph)
        except Exception as exc:
            mismatches.append(f"{name}: raised {type(exc).__name__}: {exc}")
            continue
        if got != expected:
            mismatches.append(f"{name}: counted {got}, oracle says {expected}")
    return mismatches


def minimize_case(
    case: FuzzCase,
    is_failing: Callable[[FuzzCase], bool],
    max_checks: int = 400,
) -> FuzzCase:
    """Shrink a failing case by deleting edges (ddmin-style).

    Tries dropping contiguous edge blocks, halving the block size down
    to single edges; every kept deletion must preserve the failure.
    Bounded by ``max_checks`` predicate evaluations so shrinking a slow
    failure cannot hang the harness.
    """
    edges = case.edges
    checks = 0
    block = max(len(edges) // 2, 1)
    while len(edges) and checks < max_checks:
        i = 0
        while i < len(edges) and checks < max_checks:
            candidate = replace(
                case, edges=np.concatenate([edges[:i], edges[i + block:]])
            )
            checks += 1
            if is_failing(candidate):
                edges = candidate.edges
            else:
                i += block
        if block == 1:
            break
        block = max(block // 2, 1)
    return replace(case, edges=edges)


def format_case(case: FuzzCase) -> str:
    """A copy-pasteable snippet that rebuilds the case."""
    pairs = ", ".join(f"({int(u)}, {int(v)})" for u, v in case.edges)
    return (
        f"# fuzz case: seed={case.seed} kind={case.kind} "
        f"|V|={case.num_vertices} |edges|={len(case.edges)}\n"
        "import numpy as np\n"
        "from repro.graph.build import from_edges\n"
        f"edges = np.array([{pairs}], dtype=np.int64).reshape(-1, 2)\n"
        f"graph = from_edges(edges, num_vertices={case.num_vertices})"
    )


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    counters: dict[str, Callable[[CSRGraph], int]] | None = None,
    on_progress: Callable[[int, FuzzCase], None] | None = None,
) -> dict:
    """Run ``cases`` seeded cases; minimise and report the first failure.

    Returns ``{"cases": n, "failure": None}`` on success, or a failure
    dict with the shrunk case, its mismatches and the repro snippet.
    Case ``i`` uses seed ``seed + i`` — any failure reproduces alone.
    """
    counters = counters if counters is not None else fuzz_counters()
    kind_counts: dict[str, int] = {}
    for i in range(cases):
        case = random_case(seed + i)
        kind_counts[case.kind] = kind_counts.get(case.kind, 0) + 1
        if on_progress is not None:
            on_progress(i, case)
        mismatches = check_case(case, counters)
        if mismatches:
            shrunk = minimize_case(
                case, lambda c: bool(check_case(c, counters))
            )
            return {
                "cases": i + 1,
                "kinds": kind_counts,
                "failure": {
                    "seed": case.seed,
                    "kind": case.kind,
                    "mismatches": check_case(shrunk, counters),
                    "original_edges": int(len(case.edges)),
                    "shrunk_edges": int(len(shrunk.edges)),
                    "repro": format_case(shrunk),
                },
            }
    return {"cases": cases, "kinds": kind_counts, "failure": None}


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.fuzz",
        description="differential fuzzing of all triangle counters",
    )
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--progress-every", type=int, default=50)
    args = parser.parse_args(list(argv) if argv is not None else None)

    def progress(i: int, case: FuzzCase) -> None:
        if args.progress_every and i % args.progress_every == 0:
            print(f"case {i}/{args.cases} (seed {case.seed}, {case.kind})")

    report = run_fuzz(args.cases, args.seed, on_progress=progress)
    if report["failure"] is None:
        print(
            f"ok: {report['cases']} cases, no mismatches "
            f"(kinds: {report['kinds']})"
        )
        return 0
    failure = report["failure"]
    print(f"FAILURE at seed {failure['seed']} ({failure['kind']}): ")
    for m in failure["mismatches"]:
        print(f"  {m}")
    print(
        f"shrunk {failure['original_edges']} -> {failure['shrunk_edges']} edges:"
    )
    print(failure["repro"])
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
